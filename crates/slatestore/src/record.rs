//! Shared on-disk cell record encoding, used by both the WAL and SSTable
//! blocks so there is exactly one (well-tested) serialization of a cell.
//!
//! ```text
//! record := [len-prefixed row][len-prefixed column][u8 flags]
//!           [varint write_ts][varint ttl_secs+1 (0 = none)]
//!           [len-prefixed value]
//! ```

use bytes::Bytes;
use muppet_core::codec::{get_len_prefixed, get_varint, put_len_prefixed, put_varint};
use muppet_core::Codec;

use crate::types::{Cell, CellKey, StoreError, StoreResult};

const FLAG_TOMBSTONE: u8 = 0b0000_0001;
/// Cell-level payload-format tag: set when the (uncompressed) value is
/// MBF. Absent on every record written before the binary codec existed, so
/// old JSON tables and WALs decode unchanged as `Codec::Json`.
const FLAG_MBF: u8 = 0b0000_0010;

/// Append the record encoding of `(key, cell)` to `out`.
pub(crate) fn encode_cell(out: &mut Vec<u8>, key: &CellKey, cell: &Cell) {
    put_len_prefixed(out, &key.row);
    put_len_prefixed(out, &key.column);
    let mut flags = 0u8;
    if cell.tombstone {
        flags |= FLAG_TOMBSTONE;
    }
    if cell.codec == Codec::Mbf {
        flags |= FLAG_MBF;
    }
    out.push(flags);
    put_varint(out, cell.write_ts);
    put_varint(out, cell.ttl_secs.map_or(0, |t| t + 1));
    put_len_prefixed(out, &cell.value);
}

/// Decode one record from the front of `buf`; returns the record and the
/// number of bytes consumed.
pub(crate) fn decode_cell(buf: &[u8]) -> StoreResult<((CellKey, Cell), usize)> {
    let corrupt = |what: &str| StoreError::Corrupt(format!("cell record: {what}"));
    let (row, n1) = get_len_prefixed(buf).ok_or_else(|| corrupt("row"))?;
    let rest = &buf[n1..];
    let (column, n2) = get_len_prefixed(rest).ok_or_else(|| corrupt("column"))?;
    let rest = &rest[n2..];
    let (&flags, rest2) = rest.split_first().ok_or_else(|| corrupt("flags"))?;
    let (write_ts, n3) = get_varint(rest2).ok_or_else(|| corrupt("write_ts"))?;
    let rest3 = &rest2[n3..];
    let (ttl_raw, n4) = get_varint(rest3).ok_or_else(|| corrupt("ttl"))?;
    let rest4 = &rest3[n4..];
    let (value, n5) = get_len_prefixed(rest4).ok_or_else(|| corrupt("value"))?;
    let consumed = n1 + n2 + 1 + n3 + n4 + n5;
    let cell = Cell {
        value: Bytes::copy_from_slice(value),
        write_ts,
        ttl_secs: if ttl_raw == 0 { None } else { Some(ttl_raw - 1) },
        tombstone: flags & FLAG_TOMBSTONE != 0,
        codec: if flags & FLAG_MBF != 0 { Codec::Mbf } else { Codec::Json },
    };
    Ok(((CellKey::new(row, column), cell), consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_all_fields() {
        let key = CellKey::new("row", "col");
        let cell = Cell {
            value: Bytes::from_static(b"data"),
            write_ts: 99,
            ttl_secs: Some(5),
            tombstone: false,
            codec: Codec::Json,
        };
        let mut buf = Vec::new();
        encode_cell(&mut buf, &key, &cell);
        let ((k2, c2), n) = decode_cell(&buf).unwrap();
        assert_eq!(k2, key);
        assert_eq!(c2, cell);
        assert_eq!(n, buf.len());
    }

    #[test]
    fn concatenated_records_decode_sequentially() {
        let mut buf = Vec::new();
        let recs: Vec<_> = (0..5u64)
            .map(|i| (CellKey::new(format!("r{i}"), "U"), Cell::live(format!("v{i}"), i, None)))
            .collect();
        for (k, c) in &recs {
            encode_cell(&mut buf, k, c);
        }
        let mut rest: &[u8] = &buf;
        let mut out = Vec::new();
        while !rest.is_empty() {
            let (rec, n) = decode_cell(rest).unwrap();
            out.push(rec);
            rest = &rest[n..];
        }
        assert_eq!(out, recs);
    }

    #[test]
    fn ttl_zero_is_preserved_distinct_from_none() {
        let key = CellKey::new("r", "c");
        let mut buf = Vec::new();
        encode_cell(&mut buf, &key, &Cell::live("v", 1, Some(0)));
        encode_cell(&mut buf, &key, &Cell::live("v", 1, None));
        let ((_, a), n) = decode_cell(&buf).unwrap();
        let ((_, b), _) = decode_cell(&buf[n..]).unwrap();
        assert_eq!(a.ttl_secs, Some(0));
        assert_eq!(b.ttl_secs, None);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let key = CellKey::new("row", "col");
        let mut buf = Vec::new();
        encode_cell(&mut buf, &key, &Cell::live("some value", 1, None));
        for cut in 0..buf.len() {
            assert!(decode_cell(&buf[..cut]).is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn tombstone_flag_roundtrips() {
        let key = CellKey::new("r", "c");
        let mut buf = Vec::new();
        encode_cell(&mut buf, &key, &Cell::tombstone(42));
        let ((_, c), _) = decode_cell(&buf).unwrap();
        assert!(c.tombstone);
        assert_eq!(c.write_ts, 42);
    }

    #[test]
    fn mbf_codec_tag_roundtrips() {
        let key = CellKey::new("r", "c");
        let mut buf = Vec::new();
        encode_cell(&mut buf, &key, &Cell::live_in("binary", Codec::Mbf, 7, Some(3)));
        encode_cell(&mut buf, &key, &Cell::live("text", 8, None));
        let ((_, a), n) = decode_cell(&buf).unwrap();
        assert_eq!(a.codec, Codec::Mbf);
        assert!(!a.tombstone);
        let ((_, b), _) = decode_cell(&buf[n..]).unwrap();
        assert_eq!(b.codec, Codec::Json);
    }

    #[test]
    fn pre_mbf_records_decode_as_json() {
        // A record whose flags byte predates FLAG_MBF (only the tombstone
        // bit exists) must read back as a JSON-codec cell.
        let key = CellKey::new("row", "col");
        let mut buf = Vec::new();
        encode_cell(&mut buf, &key, &Cell::live("legacy", 1, None));
        let ((_, c), _) = decode_cell(&buf).unwrap();
        assert_eq!(c.codec, Codec::Json);
    }
}
