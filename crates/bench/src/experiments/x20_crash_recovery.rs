//! X20 — crash recovery: what the ingest WAL costs, and what it buys.
//!
//! §4.3 frames failures as routine ("machines fail quite often") and the
//! recovery story as restart-and-rejoin. This repo's ingest WAL (PR 7)
//! makes that restart exact: every accepted event is appended to a
//! per-machine log before any worker sees it, so a crashed node replays
//! its uncommitted suffix and converges to bit-identical slates.
//! Durability is not free — this experiment measures *how* not-free,
//! across the same fsync spectrum X18 walked for the store WAL:
//!
//! * `no-wal`           — the PR-6 baseline: accepted events live only in
//!   worker queues; a crash loses them;
//! * `wal-sync-each`    — one fsync per accepted event (the naive
//!   durable-ingest strawman);
//! * `wal-group-commit` — each ingest frame stages as one batch and
//!   shares one fsync (`IngestLog` group commit), so the fsync tax is
//!   per-frame, not per-event.
//!
//! Sources feed the engine in coalesced frames via `submit_many` — the
//! ingest twin of the PR-2 transport outbox, and the batching boundary
//! the WAL piggybacks on. All three arms push the identical hot_topics
//! tweet stream (the X17 workload: JSON slates, realistic per-event
//! compute) through the identical 3-machine in-process engine.
//!
//! The payoff half reruns the story on the retailer counter app, whose
//! ground truth the `ReferenceExecutor` computes exactly: ingest through
//! a group-commit WAL, drop the engine as a crash would, reopen — every
//! record replays and every count equals the reference bit-for-bit.
//! Results land in `BENCH_x20.json`; the headline figure is the
//! group-commit ingest tax in events/s versus `no-wal` (acceptance:
//! under 10% at full scale).

use std::sync::Arc;
use std::time::{Duration, Instant};

use muppet_apps::hot_topics::{self, HotDetector, MinuteCounter, TopicMapper};
use muppet_apps::retailer::{self, Counter, RetailerMapper};
use muppet_core::event::Event;
use muppet_core::json::Json;
use muppet_core::Key;
use muppet_runtime::engine::{Engine, EngineConfig, EngineStats, OperatorSet};
use muppet_runtime::overflow::OverflowPolicy;
use muppet_workloads::checkins::CheckinGenerator;
use muppet_workloads::tweets::TweetGenerator;

use crate::table::{rate, Table};
use crate::Scale;

const MACHINES: usize = 3;
const WORKERS: usize = 2;
/// Concurrent source connections feeding the engine.
const SUBMITTERS: usize = 4;
/// Events per coalesced ingest frame — the `submit_many` batching
/// boundary the WAL's group commit piggybacks on (PR 2's outbox frames
/// batch at the same grain).
const FRAME: usize = 256;
/// Interleaved repetitions of the ⟨no-wal, group-commit⟩ pair; the
/// headline tax is the median of the pairwise ratios, and each arm's
/// fastest rep is tabulated.
const REPS: usize = 5;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("muppet-x20-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    dir
}

struct Outcome {
    stats: EngineStats,
    elapsed: Duration,
    /// ⟨records appended, fsyncs issued⟩; `None` for the `no-wal` arm.
    wal: Option<(u64, u64)>,
}

fn engine_config(wal: Option<&std::path::Path>, sync_each: bool) -> EngineConfig {
    EngineConfig {
        machines: MACHINES,
        workers_per_machine: WORKERS,
        queue_capacity: 1 << 14,
        // Loss-free: every arm processes the identical event set, so
        // events/s ratios compare equal work.
        overflow: OverflowPolicy::SourceThrottle,
        ingest_wal: wal.map(std::path::Path::to_path_buf),
        ingest_sync_each: sync_each,
        ..EngineConfig::default()
    }
}

fn hot_topics_ops() -> OperatorSet {
    OperatorSet::new()
        .mapper(TopicMapper::new())
        .updater(MinuteCounter::new())
        .updater(HotDetector::new(3.0))
}

/// Feed `events` to a fresh engine as coalesced frames from
/// [`SUBMITTERS`] threads and drain. Frames go round-robin across the
/// submitters, modeling parallel source connections each delivering
/// batched reads off its socket.
fn run_arm(events: &[Event], wal: Option<&std::path::Path>, sync_each: bool) -> Outcome {
    let engine = Engine::start(
        hot_topics::workflow(),
        hot_topics_ops(),
        engine_config(wal, sync_each),
        None,
    )
    .expect("engine start");
    let engine = Arc::new(engine);
    let frames: Vec<&[Event]> = events.chunks(FRAME).collect();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for part in 0..SUBMITTERS {
            let engine = Arc::clone(&engine);
            let frames = &frames;
            s.spawn(move || {
                for frame in frames.iter().skip(part).step_by(SUBMITTERS) {
                    engine.submit_many(frame.to_vec()).expect("submit_many");
                }
            });
        }
    });
    assert!(engine.drain(Duration::from_secs(300)), "arm did not drain");
    let elapsed = t0.elapsed();
    let wal_stats = engine.ingest_wal_stats();
    let stats = Arc::into_inner(engine).expect("sole engine owner").shutdown();
    Outcome { stats, elapsed, wal: wal_stats }
}

fn arm_json(name: &str, n: usize, o: &Outcome) -> Json {
    let secs = o.elapsed.as_secs_f64().max(1e-9);
    Json::obj([
        ("arm", Json::str(name)),
        ("events", Json::num(n as f64)),
        ("processed", Json::num(o.stats.processed as f64)),
        ("wall_ms", Json::num(o.elapsed.as_secs_f64() * 1e3)),
        ("events_per_sec", Json::num(n as f64 / secs)),
        ("p99_e2e_us", Json::num(o.stats.latency.p99_us as f64)),
        ("wal_records", o.wal.map(|(r, _)| Json::num(r as f64)).unwrap_or(Json::Null)),
        ("wal_fsyncs", o.wal.map(|(_, s)| Json::num(s as f64)).unwrap_or(Json::Null)),
    ])
}

/// The payoff half: ingest retailer checkins through a group-commit
/// WAL, "crash" (drop the engine without checkpointing), reopen on the
/// same log, and prove the replay is complete and bit-exact against the
/// reference executor. Returns ⟨replayed, replay wall, retailers checked⟩.
fn run_replay_check(scale: Scale) -> (u64, Duration, usize) {
    let n = scale.events(60_000);
    let mut gen = CheckinGenerator::new(42, 3_000, 5_000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, n);
    let truth = CheckinGenerator::expected_retailer_counts(&events);
    let dir = temp_dir("replay");
    let wal = dir.join("ingest.wal");

    let ops = || OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new());
    let engine = Engine::start(retailer::workflow(), ops(), engine_config(Some(&wal), false), None)
        .expect("ingest engine start");
    for frame in events.chunks(FRAME) {
        engine.submit_many(frame.to_vec()).expect("submit_many");
    }
    assert!(engine.drain(Duration::from_secs(180)), "ingest did not drain");
    let (records, _) = engine.ingest_wal_stats().expect("wal stats");
    assert_eq!(records, n as u64, "every accepted event must hit the WAL");
    // No store backend ⇒ no replay cursor was ever checkpointed, so this
    // shutdown leaves the log looking exactly like a crash: the reopened
    // engine must replay the entire ingest history.
    engine.shutdown();

    let t0 = Instant::now();
    let recovery =
        Engine::start(retailer::workflow(), ops(), engine_config(Some(&wal), false), None)
            .expect("recovery engine start");
    assert!(recovery.drain(Duration::from_secs(180)), "recovery replay did not drain");
    let replay_elapsed = t0.elapsed();
    let replayed = recovery.recovered_replayed();
    assert_eq!(replayed, n as u64, "recovery must replay every logged event");
    let mut matched = 0usize;
    for (retailer_name, expected) in &truth {
        let bytes = recovery
            .read_slate(retailer::COUNTER, &Key::from(retailer_name.as_str()))
            .unwrap_or_else(|| panic!("no slate for {retailer_name} after replay"));
        let got: u64 = std::str::from_utf8(&bytes).ok().and_then(|s| s.parse().ok()).unwrap_or(0);
        assert_eq!(
            got, *expected,
            "replayed count for {retailer_name} diverged from the reference executor"
        );
        matched += 1;
    }
    assert_eq!(matched, truth.len(), "every reference retailer must be re-counted");
    recovery.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    (replayed, replay_elapsed, matched)
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X20",
        "crash recovery: ingest WAL tax (fsync spectrum) and bit-exact replay",
        "§4.3 failure handling; §3.1 exactly-once update semantics",
    );
    let n = scale.events(60_000);
    let events: Vec<Event> = TweetGenerator::new(42, 2_000, 40.0).take(hot_topics::TWEET_STREAM, n);

    // Untimed warm-up: populate the page cache, allocator arenas, and
    // thread stacks so the first timed rep isn't structurally cold.
    let _ = run_arm(&events, None, false);
    // The headline comparison interleaves the two timed arms rep by rep
    // and takes the MEDIAN of the pairwise throughput ratios. On a
    // shared 1-core box a background burst lasts seconds — long enough
    // to poison a whole back-to-back block of one arm and make
    // independent min-of-N swing wildly — but adjacent runs see the
    // same weather, so their ratio is stable. The sync-each strawman
    // runs once: at ~15× the wall time its verdict is not in doubt, and
    // its fsync ledger (the CI gate) is deterministic.
    let sync_dir = temp_dir("sync-each");
    let group_dir = temp_dir("group");
    let mut no_wal_reps = Vec::new();
    let mut group_reps = Vec::new();
    for rep in 0..REPS {
        no_wal_reps.push(run_arm(&events, None, false));
        group_reps.push(run_arm(
            &events,
            Some(&group_dir.join(format!("ingest-{rep}.wal"))),
            false,
        ));
    }
    let mut pair_tax: Vec<f64> = no_wal_reps
        .iter()
        .zip(&group_reps)
        .map(|(nw, g)| (1.0 - nw.elapsed.as_secs_f64() / g.elapsed.as_secs_f64().max(1e-9)) * 100.0)
        .collect();
    pair_tax.sort_by(|a, b| a.partial_cmp(b).expect("finite tax"));
    let group_tax_pct = pair_tax[REPS / 2];
    let fastest = |reps: Vec<Outcome>| reps.into_iter().min_by_key(|o| o.elapsed).expect("reps");
    let arms: Vec<(&str, Outcome)> = vec![
        ("no-wal", fastest(no_wal_reps)),
        ("wal-sync-each", run_arm(&events, Some(&sync_dir.join("ingest.wal")), true)),
        ("wal-group-commit", fastest(group_reps)),
    ];
    let (replayed, replay_elapsed, retailers_checked) = run_replay_check(scale);

    let mut table = Table::new([
        "arm",
        "events",
        "wall time",
        "events/s",
        "wal records",
        "wal fsyncs",
        "events/fsync",
    ]);
    for (name, o) in &arms {
        let (records, syncs) = o.wal.unwrap_or((0, 0));
        table.row([
            name.to_string(),
            n.to_string(),
            format!("{:.2?}", o.elapsed),
            rate(n, o.elapsed),
            if o.wal.is_some() { records.to_string() } else { "-".to_string() },
            if o.wal.is_some() { syncs.to_string() } else { "-".to_string() },
            if o.wal.is_some() {
                format!("{:.1}", records as f64 / (syncs as f64).max(1.0))
            } else {
                "-".to_string()
            },
        ]);
    }
    table.print();

    let no_wal = &arms[0].1;
    let sync_each = &arms[1].1;
    let group = &arms[2].1;
    let eps = |o: &Outcome| n as f64 / o.elapsed.as_secs_f64().max(1e-9);
    let sync_each_tax_pct = (1.0 - eps(sync_each) / eps(no_wal)) * 100.0;
    println!(
        "\nshape check: group commit amortized {} appends into {} fsyncs \
         ({:.0} events/fsync) for a median ingest tax of {group_tax_pct:.1}% events/s vs \
         no-wal over {REPS} interleaved reps (the sync-each strawman pays \
         {sync_each_tax_pct:.1}%); crash-replaying a {}-event retailer WAL recovered every \
         record in {replay_elapsed:.2?} and reproduced all {retailers_checked} reference \
         counts bit-exactly",
        group.wal.unwrap().0,
        group.wal.unwrap().1,
        group.wal.unwrap().0 as f64 / (group.wal.unwrap().1 as f64).max(1.0),
        replayed,
    );

    // Gate CI on the deterministic durability ledger, not wall time
    // (shared runners make timing unreliable; the committed full-scale
    // numbers live in BENCH_x20.json).
    let processed: Vec<u64> = arms.iter().map(|(_, o)| o.stats.processed).collect();
    assert!(
        processed.iter().all(|&p| p == processed[0] && p > 0),
        "all arms must process the identical event set: {processed:?}"
    );
    assert_eq!(no_wal.wal, None, "the baseline arm must not open an ingest WAL");
    let (se_records, se_syncs) = sync_each.wal.unwrap();
    assert_eq!(se_records, n as u64, "sync-each must append one record per accepted event");
    assert_eq!(se_syncs, n as u64, "sync-each must fsync every single append");
    let (g_records, g_syncs) = group.wal.unwrap();
    assert_eq!(g_records, n as u64, "group commit must lose no appends");
    let frames = n.div_ceil(FRAME) as u64;
    assert!(
        g_syncs <= frames,
        "group commit must pay at most one fsync per ingest frame ({g_syncs} > {frames})"
    );

    let doc = Json::obj([
        ("experiment", Json::str("x20")),
        ("workload", Json::str("hot_topics tweets (tax arms); retailer checkins (replay)")),
        ("machines", Json::num(MACHINES as f64)),
        ("workers_per_machine", Json::num(WORKERS as f64)),
        ("submitter_threads", Json::num(SUBMITTERS as f64)),
        ("ingest_frame_events", Json::num(FRAME as f64)),
        ("reps_per_timed_arm", Json::num(REPS as f64)),
        ("events", Json::num(n as f64)),
        ("ingest_tax_group_commit_pct", Json::num((group_tax_pct * 10.0).round() / 10.0)),
        ("ingest_tax_sync_each_pct", Json::num((sync_each_tax_pct * 10.0).round() / 10.0)),
        ("replayed_events", Json::num(replayed as f64)),
        ("replay_ms", Json::num(replay_elapsed.as_secs_f64() * 1e3)),
        (
            "replay_events_per_sec",
            Json::num(replayed as f64 / replay_elapsed.as_secs_f64().max(1e-9)),
        ),
        ("replayed_counts_match_reference", Json::Bool(true)),
        ("arms", Json::arr(arms.iter().map(|(name, o)| arm_json(name, n, o)))),
    ]);
    std::fs::write("BENCH_x20.json", doc.to_pretty())
        .unwrap_or_else(|e| eprintln!("could not write BENCH_x20.json: {e}"));
    println!("\nwrote BENCH_x20.json");

    let _ = std::fs::remove_dir_all(&sync_dir);
    let _ = std::fs::remove_dir_all(&group_dir);
}
