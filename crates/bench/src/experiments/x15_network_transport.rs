//! X15 — the cost of the wire: in-process vs TCP-loopback transport for
//! the hot_topics pipeline, and what batching buys back.
//!
//! The paper runs Muppet over a real network; the seed simulated it with
//! queue hand-offs. This experiment quantifies what the `muppet-net` TCP
//! transport costs relative to the in-process wire on identical hardware
//! and workload — and how much of that cost the per-peer batching senders
//! amortize away: same 3-machine cluster, same tweet stream, same
//! two-choice dispatch; only the wire differs. Three arms:
//!
//! * `in-process` — direct call hand-off (the seed's simulated cluster);
//! * `tcp-unbatched` — one `Event` frame per event (`batch_max = 1`,
//!   `flush_us = 0`): a syscall and a CRC per tweet;
//! * `tcp-batched` — the default size/age policy coalescing events into
//!   `EventBatch` frames.
//!
//! Results are also written to `BENCH_x15.json` in the working directory
//! so CI can record the perf trajectory over time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use muppet_apps::hot_topics::{self, HotDetector, MinuteCounter, TopicMapper};
use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use muppet_net::topology::Topology;
use muppet_net::transport::{ClusterHandler, MachineId, NetError, Transport};
use muppet_net::{BatchConfig, TcpTransport, WireEvent};
use muppet_runtime::engine::{Engine, EngineConfig, OperatorSet, TransportKind};
use muppet_workloads::tweets::TweetGenerator;

use crate::table::{rate, us, Table};
use crate::Scale;

const MACHINES: usize = 3;

fn ops() -> OperatorSet {
    OperatorSet::new()
        .mapper(TopicMapper::new())
        .updater(MinuteCounter::new())
        .updater(HotDetector::new(3.0))
}

fn base_config() -> EngineConfig {
    EngineConfig {
        machines: MACHINES,
        workers_per_machine: 2,
        queue_capacity: 1 << 16,
        ..EngineConfig::default()
    }
}

struct Outcome {
    elapsed: Duration,
    processed: u64,
    p50_us: u64,
    p99_us: u64,
    frames_sent: u64,
    batches_sent: u64,
    drained: bool,
}

/// Submit `events` into `intake`, then wait for the whole cluster to
/// quiesce (summed processed-count stable) and aggregate stats.
fn drive(intake: &Engine, cluster: &[&Engine], events: &[muppet_core::event::Event]) -> Outcome {
    let t0 = Instant::now();
    for ev in events {
        intake.submit(ev.clone()).expect("submit");
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    let total = |cluster: &[&Engine]| -> u64 { cluster.iter().map(|e| e.stats().processed).sum() };
    let mut last = total(cluster);
    let mut stable_since = Instant::now();
    let drained = loop {
        std::thread::sleep(Duration::from_millis(20));
        let now = total(cluster);
        if now != last {
            last = now;
            stable_since = Instant::now();
        } else if stable_since.elapsed() > Duration::from_millis(300) && now > 0 {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
    };
    // Elapsed runs to the last observed progress, not through the
    // stability window that *detects* quiescence (a constant ~300 ms that
    // would otherwise swamp small runs).
    let elapsed = stable_since.saturating_duration_since(t0);
    let mut processed = 0;
    let mut frames_sent = 0;
    let mut batches_sent = 0;
    let mut latency = muppet_runtime::metrics::LatencySummary::default();
    for engine in cluster {
        let stats = engine.stats();
        processed += stats.processed;
        frames_sent += stats.net.frames_sent;
        batches_sent += stats.net.batches_sent;
        // Keep the worst-node percentiles: the cluster is as slow as its
        // slowest member.
        if stats.latency.p99_us > latency.p99_us {
            latency = stats.latency;
        }
    }
    Outcome {
        elapsed,
        processed,
        p50_us: latency.p50_us,
        p99_us: latency.p99_us,
        frames_sent,
        batches_sent,
        drained,
    }
}

/// Run one TCP-loopback arm with the given batching knobs.
fn run_tcp_arm(events: &[muppet_core::event::Event], batch_max: usize, flush_us: u64) -> Outcome {
    let topology = Topology::loopback_ephemeral(MACHINES, false).expect("reserve ports");
    let nodes: Vec<Engine> = (0..MACHINES)
        .map(|local| {
            let cfg = EngineConfig {
                transport: TransportKind::Tcp { topology: topology.clone(), local },
                net_batch_max: batch_max,
                net_flush_us: flush_us,
                ..base_config()
            };
            Engine::start(hot_topics::workflow(), ops(), cfg, None).unwrap()
        })
        .collect();
    let refs: Vec<&Engine> = nodes.iter().collect();
    let outcome = drive(&nodes[0], &refs, events);
    for node in nodes {
        node.shutdown();
    }
    outcome
}

/// Counts deliveries; the wire microbenchmark's sink.
struct SinkHandler(AtomicU64);

impl ClusterHandler for SinkHandler {
    fn deliver_event(&self, _dest: MachineId, _ev: WireEvent) -> Result<(), NetError> {
        self.0.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
    fn handle_failure_report(&self, _failed: MachineId, _epoch: u64) {}
    fn handle_failure_broadcast(&self, _failed: MachineId, _epoch: u64) {}
    fn read_local_slate(&self, _d: MachineId, _u: &str, _k: &[u8]) -> Option<Vec<u8>> {
        None
    }
}

/// Raw wire throughput: push `n` default-sized events through one
/// `TcpTransport` sender to a counting sink, no engine in the way — the
/// wire itself is the bottleneck, so this isolates exactly what batching
/// amortizes (syscalls, CRCs, frame headers).
fn wire_throughput(n: usize, batch: BatchConfig) -> (Duration, u64) {
    let topology = Topology::loopback_ephemeral(2, false).expect("reserve ports");
    let source = TcpTransport::new_with_batching(topology.clone(), 0, batch).unwrap();
    let sink = TcpTransport::new(topology, 1).unwrap();
    let src_handler = Arc::new(SinkHandler(AtomicU64::new(0)));
    let sink_handler = Arc::new(SinkHandler(AtomicU64::new(0)));
    source.register(Arc::downgrade(&src_handler) as Weak<dyn ClusterHandler>);
    sink.register(Arc::downgrade(&sink_handler) as Weak<dyn ClusterHandler>);
    let _listener = sink.start_listener().expect("bind sink");

    // ~100-byte tweet-sized payload, a few dozen distinct keys. Built
    // before the timer starts: the measurement is the wire, not the
    // generator.
    let value = vec![b'x'; 100];
    let events: Vec<WireEvent> = (0..n)
        .map(|i| WireEvent {
            op: 0,
            event: Event::new("S1", i as u64, Key::from(format!("k-{}", i % 64)), value.clone()),
            injected_us: 0,
            redirected: false,
            external: true,
            thread_hint: None,
            forwards: 0,
        })
        .collect();
    let t0 = Instant::now();
    for ev in events {
        source.send_event(1, ev).expect("wire send");
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while sink_handler.0.load(Ordering::Relaxed) < n as u64 {
        assert!(Instant::now() < deadline, "wire microbench never drained");
        std::thread::sleep(Duration::from_micros(200));
    }
    let elapsed = t0.elapsed();
    let frames = source.stats().frames_sent.load(Ordering::Relaxed);
    (elapsed, frames)
}

fn wire_json(name: &str, n: usize, elapsed: Duration, frames: u64) -> Json {
    Json::obj([
        ("mode", Json::str(name)),
        ("events", Json::num(n as f64)),
        ("wall_ms", Json::num(elapsed.as_secs_f64() * 1e3)),
        ("events_per_sec", Json::num(n as f64 / elapsed.as_secs_f64().max(1e-9))),
        ("frames_sent", Json::num(frames as f64)),
    ])
}

fn arm_json(name: &str, n: usize, o: &Outcome) -> Json {
    let secs = o.elapsed.as_secs_f64().max(1e-9);
    Json::obj([
        ("transport", Json::str(name)),
        ("processed", Json::num(o.processed as f64)),
        ("wall_ms", Json::num(o.elapsed.as_secs_f64() * 1e3)),
        ("events_per_sec", Json::num(n as f64 / secs)),
        ("p50_e2e_us", Json::num(o.p50_us as f64)),
        ("p99_e2e_us", Json::num(o.p99_us as f64)),
        ("frames_sent", Json::num(o.frames_sent as f64)),
        ("batches_sent", Json::num(o.batches_sent as f64)),
    ])
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X15",
        "in-process vs TCP loopback, unbatched vs batched (hot_topics)",
        "§4.1 wire; muppet-net batching (DESIGN.md §5)",
    );
    let n = scale.events(30_000);
    let events: Vec<_> = TweetGenerator::new(42, 2_000, 40.0).take(hot_topics::TWEET_STREAM, n);

    let mut table = Table::new([
        "transport",
        "events",
        "wall time",
        "events/s (submit→quiesce)",
        "frames",
        "p50 e2e",
        "p99 e2e",
    ]);
    let mut row = |name: &str, o: &Outcome| {
        table.row([
            name.to_string(),
            o.processed.to_string(),
            format!("{:.2?}", o.elapsed),
            rate(n, o.elapsed),
            o.frames_sent.to_string(),
            us(o.p50_us),
            us(o.p99_us),
        ]);
    };

    // --- in-process wire (the regression baseline: numbers must not move
    // with batching changes, which never touch this path) ---
    let engine = Engine::start(hot_topics::workflow(), ops(), base_config(), None).unwrap();
    let inproc = drive(&engine, &[&engine], &events);
    assert!(inproc.drained, "in-process run did not quiesce");
    row("in-process", &inproc);
    engine.shutdown();

    // --- TCP loopback, one frame per event ---
    let unbatched = run_tcp_arm(&events, 1, 0);
    assert!(unbatched.drained, "unbatched TCP run did not quiesce");
    row("tcp-unbatched", &unbatched);

    // --- TCP loopback, default size/age batching ---
    let defaults = EngineConfig::default();
    let batched = run_tcp_arm(&events, defaults.net_batch_max, defaults.net_flush_us);
    assert!(batched.drained, "batched TCP run did not quiesce");
    row("tcp-batched", &batched);

    table.print();

    // --- raw wire microbenchmark: events/s through one sender, no engine
    // — the batching claim proper ---
    let n_wire = scale.events(200_000);
    let defaults_cfg = BatchConfig::default();
    let unbatched_cfg = BatchConfig { batch_max: 1, flush_us: 0, ..defaults_cfg };
    let (wire_unbatched, wire_unbatched_frames) = wire_throughput(n_wire, unbatched_cfg);
    let (wire_batched, wire_batched_frames) = wire_throughput(n_wire, defaults_cfg);
    let wire_speedup = wire_unbatched.as_secs_f64() / wire_batched.as_secs_f64().max(1e-9);
    let mut wire_table =
        Table::new(["wire (1 sender, 100B events)", "events", "wall time", "events/s", "frames"]);
    wire_table.row([
        "tcp-unbatched".to_string(),
        n_wire.to_string(),
        format!("{:.2?}", wire_unbatched),
        rate(n_wire, wire_unbatched),
        wire_unbatched_frames.to_string(),
    ]);
    wire_table.row([
        "tcp-batched".to_string(),
        n_wire.to_string(),
        format!("{:.2?}", wire_batched),
        rate(n_wire, wire_batched),
        wire_batched_frames.to_string(),
    ]);
    println!();
    wire_table.print();
    println!(
        "\nwire: batching delivers {wire_speedup:.1}× the unbatched event throughput \
         ({} frames vs {} for {n_wire} events)",
        wire_batched_frames, wire_unbatched_frames
    );
    // Gate CI on the deterministic coalescing ratio, not wall time (the
    // speedup is timing-dependent on loaded shared runners; the full-run
    // numbers live in the committed BENCH_x15.json).
    assert_eq!(wire_unbatched_frames, n_wire as u64, "unbatched = one frame per event");
    assert!(
        wire_batched_frames <= (n_wire as u64) / 8,
        "batching must coalesce substantially ({wire_batched_frames} frames for {n_wire} events)"
    );

    let speedup = unbatched.elapsed.as_secs_f64() / batched.elapsed.as_secs_f64().max(1e-9);
    let tcp_cost = batched.elapsed.as_secs_f64() / inproc.elapsed.as_secs_f64().max(1e-9);
    println!(
        "\nshape check: all transports process every delivered event; batching \
         coalesced {n} events into {} frames ({:.1}× fewer than unbatched) and \
         delivers {speedup:.1}× the unbatched TCP throughput; batched TCP pays \
         {tcp_cost:.1}× the in-process wall time (framing + syscalls + \
         cross-process hops; latency percentiles include remote queueing)",
        batched.frames_sent,
        unbatched.frames_sent as f64 / batched.frames_sent.max(1) as f64,
    );
    assert!(batched.processed > 0, "TCP cluster must process events");
    assert!(
        batched.batches_sent > 0,
        "the batched arm must actually coalesce (saw only single-event frames)"
    );

    // Record the trajectory point for CI (BENCH_x15.json in the working
    // directory — the Actions workflow runs from the repo root).
    let doc = Json::obj([
        ("experiment", Json::str("x15")),
        ("workload", Json::str("hot_topics tweets")),
        ("machines", Json::num(MACHINES as f64)),
        ("events", Json::num(n as f64)),
        (
            "arms",
            Json::arr([
                arm_json("in-process", n, &inproc),
                arm_json("tcp-unbatched", n, &unbatched),
                arm_json("tcp-batched", n, &batched),
            ]),
        ),
        (
            "wire",
            Json::arr([
                wire_json("tcp-unbatched", n_wire, wire_unbatched, wire_unbatched_frames),
                wire_json("tcp-batched", n_wire, wire_batched, wire_batched_frames),
            ]),
        ),
        ("wire_batched_vs_unbatched_speedup", Json::num(wire_speedup)),
        ("pipeline_batched_vs_unbatched_speedup", Json::num(speedup)),
        ("batched_tcp_vs_inprocess_cost", Json::num(tcp_cost)),
    ]);
    match std::fs::write("BENCH_x15.json", doc.to_pretty() + "\n") {
        Ok(()) => println!("wrote BENCH_x15.json"),
        Err(e) => eprintln!("could not write BENCH_x15.json: {e}"),
    }
}
