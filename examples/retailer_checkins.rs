//! The paper's flagship example (Example 1 / Figure 1(b) / Figures 3–4):
//! count Foursquare checkins per retailer, live, on a Muppet cluster with
//! a durable slate store, and read the results over HTTP exactly as §4.4
//! describes.
//!
//! ```sh
//! cargo run --example retailer_checkins
//! ```

use std::sync::Arc;
use std::time::Duration;

use muppet::apps::retailer::{self, Counter, RetailerMapper};
use muppet::prelude::*;
use muppet::runtime::http::http_get;
use muppet::slatestore::util::TempDir;
use muppet::workloads::checkins::CheckinGenerator;

const EVENTS: usize = 20_000;

fn main() {
    // A 3-node replicated slate store (the "Cassandra cluster" of §4.2).
    let store_dir = TempDir::new("retailer-example").expect("temp dir");
    let store = Arc::new(
        StoreCluster::open(
            store_dir.path(),
            StoreConfig {
                nodes: 3,
                replication: 3,
                consistency: Consistency::Quorum,
                ..Default::default()
            },
        )
        .expect("store opens"),
    );

    // A 3-machine Muppet 2.0 cluster running Figure 1(b)'s workflow.
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 3,
        workers_per_machine: 4,
        flush: FlushPolicy::IntervalMs(50),
        ..EngineConfig::default()
    };
    let engine = Arc::new(
        Engine::start(
            retailer::workflow(),
            OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new()),
            cfg,
            Some(Arc::clone(&store)),
        )
        .expect("engine starts"),
    );

    // The §4.4 slate-read HTTP service.
    let http = HttpSlateServer::serve(Arc::clone(&engine) as _).expect("http server");
    println!("slate reads live at {}/slate/{}/<retailer>", http.base_url(), retailer::COUNTER);

    // Feed the synthetic checkin stream (stand-in for Foursquare).
    let mut gen = CheckinGenerator::new(2024, 5_000, 1_500.0);
    let events = gen.take(retailer::CHECKIN_STREAM, EVENTS);
    let expected = CheckinGenerator::expected_retailer_counts(&events);
    let t0 = std::time::Instant::now();
    for ev in events {
        engine.submit(ev).expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(30)), "cluster drains");
    let elapsed = t0.elapsed();

    println!(
        "\nprocessed {EVENTS} checkins in {:.2?} ({:.0} events/s)",
        elapsed,
        EVENTS as f64 / elapsed.as_secs_f64()
    );
    println!("\n{:<12} {:>10} {:>10} {:>6}", "retailer", "expected", "live", "ok");
    let mut all_ok = true;
    for (retailer_name, expect) in &expected {
        // Read over HTTP, like a downstream dashboard would.
        let url = format!(
            "{}/slate/{}/{}",
            http.base_url(),
            retailer::COUNTER,
            muppet::runtime::http::percent_encode(retailer_name.as_bytes())
        );
        let (code, body) = http_get(&url).expect("http fetch");
        let live: u64 =
            if code == 200 { String::from_utf8(body).unwrap().parse().unwrap_or(0) } else { 0 };
        let ok = live == *expect;
        all_ok &= ok;
        println!("{retailer_name:<12} {expect:>10} {live:>10} {:>6}", if ok { "✓" } else { "✗" });
    }

    let stats = engine_stats(&engine);
    println!(
        "\nlatency: p50={}µs p99={}µs max={}µs (paper: \"latency of under 2 seconds\")",
        stats.latency.p50_us, stats.latency.p99_us, stats.latency.max_us
    );
    println!(
        "slate cache: {} hits / {} misses; {} store writes",
        stats.cache.hits, stats.cache.misses, stats.cache.flush_writes
    );
    drop(http);
    // `engine` is inside an Arc because the HTTP server holds it; unwrap
    // for a graceful shutdown now that the server is gone.
    let engine = Arc::into_inner(engine).expect("http server released the engine");
    engine.shutdown();
    let store_stats = store.stats();
    println!(
        "store: {} quorum writes, {} raw bytes → {} stored bytes (compression)",
        store_stats.writes_ok, store_stats.raw_bytes, store_stats.stored_bytes
    );
    assert!(all_ok, "live counts must match ground truth");
    println!("\n✓ all live counts match the ground truth");
}

fn engine_stats(engine: &Arc<Engine>) -> EngineStats {
    engine.stats()
}
