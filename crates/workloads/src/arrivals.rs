//! Arrival processes: when events happen.
//!
//! §2 motivates the need to "handle drastic spikes in the tweet volumes"
//! (the earthquake example); §5 quotes steady production rates (100M+
//! tweets/day ≈ 1.2k/s). The generators support:
//!
//! * constant rate;
//! * Poisson arrivals (exponential gaps);
//! * bursts: a baseline rate with windows of `burst_factor`× load.
//!
//! All timing is virtual (microsecond timestamps); harnesses decide whether
//! to replay in real time or as fast as possible.

use rand::Rng;

/// An inter-arrival time model producing event timestamps.
#[derive(Clone, Debug)]
pub enum ArrivalProcess {
    /// Exactly `events_per_sec` evenly-spaced events.
    Constant {
        /// Event rate per (virtual) second.
        events_per_sec: f64,
    },
    /// Poisson process at `events_per_sec`.
    Poisson {
        /// Mean event rate per second.
        events_per_sec: f64,
    },
    /// Baseline Poisson rate with periodic bursts: every `period_us`, a
    /// window of `burst_us` runs at `burst_factor`× the base rate.
    Bursty {
        /// Baseline rate per second.
        events_per_sec: f64,
        /// Burst window length (µs).
        burst_us: u64,
        /// Distance between burst starts (µs).
        period_us: u64,
        /// Rate multiplier inside bursts.
        burst_factor: f64,
    },
}

impl ArrivalProcess {
    /// Next inter-arrival gap (µs) after an event at `now_us`.
    pub fn next_gap_us(&self, now_us: u64, rng: &mut impl Rng) -> u64 {
        match self {
            ArrivalProcess::Constant { events_per_sec } => gap_for_rate(*events_per_sec),
            ArrivalProcess::Poisson { events_per_sec } => exponential_gap(*events_per_sec, rng),
            ArrivalProcess::Bursty { events_per_sec, burst_us, period_us, burst_factor } => {
                let in_burst = now_us % period_us < *burst_us;
                let rate = if in_burst { events_per_sec * burst_factor } else { *events_per_sec };
                exponential_gap(rate, rng)
            }
        }
    }

    /// Generate `n` event timestamps starting at `start_us`.
    pub fn timestamps(&self, start_us: u64, n: usize, rng: &mut impl Rng) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        let mut now = start_us;
        for _ in 0..n {
            out.push(now);
            now += self.next_gap_us(now, rng).max(1);
        }
        out
    }
}

fn gap_for_rate(events_per_sec: f64) -> u64 {
    assert!(events_per_sec > 0.0, "rate must be positive");
    (1_000_000.0 / events_per_sec).max(1.0) as u64
}

fn exponential_gap(events_per_sec: f64, rng: &mut impl Rng) -> u64 {
    assert!(events_per_sec > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let gap_secs = -u.ln() / events_per_sec;
    (gap_secs * 1_000_000.0).clamp(1.0, 60.0 * 1_000_000.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_rate_is_evenly_spaced() {
        let p = ArrivalProcess::Constant { events_per_sec: 1000.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let ts = p.timestamps(0, 100, &mut rng);
        for w in ts.windows(2) {
            assert_eq!(w[1] - w[0], 1000, "1k/s → 1000µs gaps");
        }
    }

    #[test]
    fn poisson_mean_rate_approximates_target() {
        let p = ArrivalProcess::Poisson { events_per_sec: 500.0 };
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let ts = p.timestamps(0, n, &mut rng);
        let span_secs = (*ts.last().unwrap() - ts[0]) as f64 / 1e6;
        let observed = (n - 1) as f64 / span_secs;
        assert!((observed - 500.0).abs() / 500.0 < 0.05, "observed {observed}/s");
    }

    #[test]
    fn timestamps_strictly_increase() {
        for p in [
            ArrivalProcess::Constant { events_per_sec: 1e6 },
            ArrivalProcess::Poisson { events_per_sec: 1e6 },
            ArrivalProcess::Bursty {
                events_per_sec: 1e5,
                burst_us: 1000,
                period_us: 10_000,
                burst_factor: 10.0,
            },
        ] {
            let mut rng = StdRng::seed_from_u64(3);
            let ts = p.timestamps(100, 1000, &mut rng);
            for w in ts.windows(2) {
                assert!(w[1] > w[0], "{p:?}");
            }
        }
    }

    #[test]
    fn bursts_pack_more_events_into_burst_windows() {
        let p = ArrivalProcess::Bursty {
            events_per_sec: 1000.0,
            burst_us: 100_000,    // 0.1s burst
            period_us: 1_000_000, // every second
            burst_factor: 20.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let ts = p.timestamps(0, 50_000, &mut rng);
        let in_burst = ts.iter().filter(|&&t| t % 1_000_000 < 100_000).count();
        let frac = in_burst as f64 / ts.len() as f64;
        // Burst windows are 10% of time but ~67% of events at 20×.
        assert!(frac > 0.5, "burst fraction {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = ArrivalProcess::Poisson { events_per_sec: 100.0 };
        let a = p.timestamps(0, 50, &mut StdRng::seed_from_u64(9));
        let b = p.timestamps(0, 50, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
