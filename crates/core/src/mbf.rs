//! MBF — the Muppet Binary Format for slate and event payloads.
//!
//! "Our applications often use JSON to encode slates" (§4.2) — and every
//! byte boundary (EventBatch frames, SSTable blocks, WAL records, flush
//! materialization) used to pay JSON's text bloat and parse cost. MBF is a
//! compact self-describing tagged binary encoding of exactly the [`Json`]
//! value model: one magic byte, then a recursive tagged value.
//!
//! ```text
//! payload := MAGIC value
//! value   := 0x00                                  -- null
//!          | 0x01 | 0x02                           -- false | true
//!          | 0x03 varint                           -- non-negative integer
//!          | 0x04 varint                           -- negative integer (magnitude)
//!          | 0x05 f64-le (8 bytes)                 -- non-integral / large float
//!          | 0x06 varint-len utf8-bytes            -- string (length-capped)
//!          | 0x07 varint-count value*              -- array
//!          | 0x08 varint-count (varint-len key value)*  -- object
//!          | 0x10..=0x7F                           -- fixint: the integer tag−0x10 (0..=111)
//!          | 0xA0..=0xBF utf8-bytes                -- fixstr: tag&0x1F bytes (len 0..=31)
//! ```
//!
//! The fix ranges are the msgpack trick: the common case — small counters,
//! short labels — costs one tag byte total instead of tag + varint. The
//! encoder always uses the fix form when a value qualifies (so encoding
//! stays canonical); the decoder accepts both forms.
//!
//! Design points:
//!
//! * **Sniffable.** `MAGIC` has the high bit set, so an MBF payload can
//!   never be confused with JSON text, a decimal counter, or any other
//!   ASCII payload — [`is_mbf`] is a single byte test.
//! * **Canonical-equivalent to JSON.** The integer/float split mirrors the
//!   JSON serializer's exact rule (`fract() == 0.0 && |n| < 2⁵³` prints as
//!   an integer), and non-finite floats encode as null exactly as
//!   [`Json::write_into`] serializes them — so
//!   `from_mbf(to_mbf(v)) == parse(serialize(v))` for every value.
//! * **Hardened decode.** Bounds-checked everywhere, depth-capped at
//!   [`json::MAX_DEPTH`], string lengths capped at [`MAX_STR_LEN`],
//!   container preallocation capped by the remaining buffer — truncated or
//!   corrupt input returns an error, never panics, never over-allocates.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{get_varint, put_varint};
use crate::error::{Error, Result};
use crate::json::{self, Json};

/// First byte of every MBF payload. High bit set: no JSON text, counter
/// text, or other UTF-8/ASCII payload in this codebase begins with it.
pub const MAGIC: u8 = 0xB1;

/// Maximum length of an encoded string or object key (32 MiB). Slates and
/// event values are orders of magnitude smaller; the cap bounds what a
/// corrupt or adversarial length prefix can make the decoder do.
pub const MAX_STR_LEN: usize = 32 << 20;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT_POS: u8 = 0x03;
const TAG_INT_NEG: u8 = 0x04;
const TAG_F64: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_ARR: u8 = 0x07;
const TAG_OBJ: u8 = 0x08;
/// Fixint range: `TAG_FIXINT_MIN + v` encodes the integer `v` in one byte.
const TAG_FIXINT_MIN: u8 = 0x10;
const TAG_FIXINT_MAX: u8 = 0x7F;
/// Largest integer with a one-byte fixint encoding.
const FIXINT_MAX: u64 = (TAG_FIXINT_MAX - TAG_FIXINT_MIN) as u64;
/// Fixstr range: `TAG_FIXSTR_MIN | len` prefixes a string of `len ≤ 31`.
const TAG_FIXSTR_MIN: u8 = 0xA0;
const TAG_FIXSTR_MAX: u8 = 0xBF;
/// Longest string with a one-byte fixstr prefix.
const FIXSTR_MAX: usize = (TAG_FIXSTR_MAX - TAG_FIXSTR_MIN) as usize;

/// Global count of MBF encodes (documents → bytes), the binary-codec
/// counterpart of `slate::repr_counters`'s serialization counter.
static ENCODES: AtomicU64 = AtomicU64::new(0);
/// Global count of MBF decodes (bytes → documents).
static DECODES: AtomicU64 = AtomicU64::new(0);

/// Process-wide `(decodes, encodes)` for the MBF codec.
pub fn mbf_counters() -> (u64, u64) {
    (DECODES.load(Ordering::Relaxed), ENCODES.load(Ordering::Relaxed))
}

/// True if `bytes` starts with the MBF magic byte — a payload-codec sniff
/// that is exact against every text payload (JSON, counters) the system
/// produces.
#[inline]
pub fn is_mbf(bytes: &[u8]) -> bool {
    bytes.first() == Some(&MAGIC)
}

/// The concrete byte encoding of a payload at a byte boundary (wire frame,
/// WAL record, SSTable cell). `Json` doubles as "raw/legacy bytes": counter
/// text and pre-MBF payloads are tagged `Json`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Codec {
    /// JSON text (or raw/opaque legacy bytes — counters, pre-v5 payloads).
    #[default]
    Json,
    /// MBF tagged binary.
    Mbf,
}

impl Codec {
    pub fn name(self) -> &'static str {
        match self {
            Codec::Json => "json",
            Codec::Mbf => "mbf",
        }
    }

    /// Sniff the codec of a payload by its first byte.
    #[inline]
    pub fn sniff(bytes: &[u8]) -> Codec {
        if is_mbf(bytes) {
            Codec::Mbf
        } else {
            Codec::Json
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Operator-facing codec knob: `auto` negotiates MBF where both peers
/// support it (PROTOCOL_VERSION ≥ 5) and keeps JSON elsewhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CodecChoice {
    /// Negotiate: MBF with v5 peers and at rest, JSON with older peers and
    /// at the HTTP boundary.
    #[default]
    Auto,
    /// Force JSON everywhere (pre-v5 behaviour).
    Json,
    /// Prefer MBF; still downgrades per connection when a peer cannot
    /// decode it.
    Mbf,
}

impl CodecChoice {
    /// The codec used for local byte boundaries (store, WAL, flush) where
    /// no peer negotiation applies.
    pub fn store_codec(self) -> Codec {
        match self {
            CodecChoice::Json => Codec::Json,
            CodecChoice::Auto | CodecChoice::Mbf => Codec::Mbf,
        }
    }

    /// Whether connections should advertise (and use, when the peer also
    /// supports it) the binary codec.
    pub fn offers_mbf(self) -> bool {
        !matches!(self, CodecChoice::Json)
    }
}

impl std::str::FromStr for CodecChoice {
    type Err = Error;

    fn from_str(s: &str) -> Result<CodecChoice> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(CodecChoice::Auto),
            "json" => Ok(CodecChoice::Json),
            "mbf" => Ok(CodecChoice::Mbf),
            other => {
                Err(Error::Config(format!("unknown codec {other:?} (expected json|mbf|auto)")))
            }
        }
    }
}

impl std::fmt::Display for CodecChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CodecChoice::Auto => "auto",
            CodecChoice::Json => "json",
            CodecChoice::Mbf => "mbf",
        })
    }
}

fn encode_err(message: impl Into<String>) -> Error {
    Error::Mbf { offset: 0, message: message.into() }
}

fn decode_err(offset: usize, message: impl Into<String>) -> Error {
    Error::Mbf { offset, message: message.into() }
}

/// Append the MBF encoding of `value` to `out` (without re-emitting the
/// magic byte — used by [`Json::to_mbf`] and by tests that need raw
/// values). Fails on strings longer than [`MAX_STR_LEN`] and nesting
/// deeper than [`json::MAX_DEPTH`].
pub fn encode_value(out: &mut Vec<u8>, value: &Json) -> Result<()> {
    encode_at(out, value, 0)
}

fn encode_at(out: &mut Vec<u8>, value: &Json, depth: usize) -> Result<()> {
    if depth > json::MAX_DEPTH {
        return Err(encode_err(format!("nesting deeper than {}", json::MAX_DEPTH)));
    }
    match value {
        Json::Null => out.push(TAG_NULL),
        Json::Bool(false) => out.push(TAG_FALSE),
        Json::Bool(true) => out.push(TAG_TRUE),
        Json::Num(n) => encode_number(out, *n),
        Json::Str(s) => {
            encode_str(out, s)?;
        }
        Json::Arr(items) => {
            out.push(TAG_ARR);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_at(out, item, depth + 1)?;
            }
        }
        Json::Obj(pairs) => {
            out.push(TAG_OBJ);
            put_varint(out, pairs.len() as u64);
            for (key, item) in pairs {
                if key.len() > MAX_STR_LEN {
                    return Err(encode_err(format!(
                        "object key of {} bytes exceeds the {MAX_STR_LEN}-byte cap",
                        key.len()
                    )));
                }
                put_varint(out, key.len() as u64);
                out.extend_from_slice(key.as_bytes());
                encode_at(out, item, depth + 1)?;
            }
        }
    }
    Ok(())
}

fn encode_str(out: &mut Vec<u8>, s: &str) -> Result<()> {
    if s.len() > MAX_STR_LEN {
        return Err(encode_err(format!(
            "string of {} bytes exceeds the {MAX_STR_LEN}-byte cap",
            s.len()
        )));
    }
    if s.len() <= FIXSTR_MAX {
        out.push(TAG_FIXSTR_MIN | s.len() as u8);
    } else {
        out.push(TAG_STR);
        put_varint(out, s.len() as u64);
    }
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Mirror of the JSON serializer's number rule: integral values with
/// `|n| < 2⁵³` become varint integers (the exact set `write_number` prints
/// without a decimal point), every other finite value is a raw f64, and
/// non-finite values become null (JSON has no Inf/NaN). Keeping the split
/// identical is what makes the cross-codec equivalence property
/// `from_mbf(to_mbf(v)) == parse(serialize(v))` hold exactly.
fn encode_number(out: &mut Vec<u8>, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
            let i = n as i64;
            if (0..=FIXINT_MAX as i64).contains(&i) {
                out.push(TAG_FIXINT_MIN + i as u8);
            } else if i >= 0 {
                out.push(TAG_INT_POS);
                put_varint(out, i as u64);
            } else {
                out.push(TAG_INT_NEG);
                put_varint(out, i.unsigned_abs());
            }
        } else {
            out.push(TAG_F64);
            out.extend_from_slice(&n.to_le_bytes());
        }
    } else {
        out.push(TAG_NULL);
    }
}

/// Decode one MBF value from the front of `buf` (no magic byte). Returns
/// `(value, bytes_consumed)`.
pub fn decode_value(buf: &[u8]) -> Result<(Json, usize)> {
    decode_at(buf, 0, 0)
}

fn decode_at(buf: &[u8], base: usize, depth: usize) -> Result<(Json, usize)> {
    if depth > json::MAX_DEPTH {
        return Err(decode_err(base, format!("nesting deeper than {}", json::MAX_DEPTH)));
    }
    let (&tag, rest) =
        buf.split_first().ok_or_else(|| decode_err(base, "truncated: missing tag"))?;
    let mut at = 1;
    let value = match tag {
        TAG_NULL => Json::Null,
        TAG_FALSE => Json::Bool(false),
        TAG_TRUE => Json::Bool(true),
        TAG_INT_POS => {
            let (v, n) = get_varint(rest).ok_or_else(|| decode_err(base + at, "bad integer"))?;
            at += n;
            Json::Num(v as f64)
        }
        TAG_INT_NEG => {
            let (v, n) = get_varint(rest).ok_or_else(|| decode_err(base + at, "bad integer"))?;
            at += n;
            Json::Num(-(v as f64))
        }
        TAG_F64 => {
            let bytes: [u8; 8] = rest
                .get(..8)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| decode_err(base + at, "truncated f64"))?;
            at += 8;
            Json::Num(f64::from_le_bytes(bytes))
        }
        TAG_STR => {
            let (s, n) = decode_str(rest, base + at)?;
            at += n;
            Json::Str(s)
        }
        TAG_ARR => {
            let (count, n) =
                get_varint(rest).ok_or_else(|| decode_err(base + at, "bad array count"))?;
            at += n;
            // Each element is at least one tag byte: a count beyond the
            // remaining buffer is corrupt, and capping the preallocation
            // by it keeps a forged count from allocating gigabytes.
            let remaining = buf.len() - at;
            if count as usize > remaining {
                return Err(decode_err(base + at, "array count exceeds buffer"));
            }
            let mut items = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let (item, n) = decode_at(&buf[at..], base + at, depth + 1)?;
                at += n;
                items.push(item);
            }
            Json::Arr(items)
        }
        TAG_OBJ => {
            let (count, n) =
                get_varint(rest).ok_or_else(|| decode_err(base + at, "bad object count"))?;
            at += n;
            let remaining = buf.len() - at;
            if count as usize > remaining {
                return Err(decode_err(base + at, "object count exceeds buffer"));
            }
            let mut pairs = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let (key, n) = decode_str(&buf[at..], base + at)?;
                at += n;
                let (item, n) = decode_at(&buf[at..], base + at, depth + 1)?;
                at += n;
                pairs.push((key, item));
            }
            Json::Obj(pairs)
        }
        TAG_FIXINT_MIN..=TAG_FIXINT_MAX => Json::Num((tag - TAG_FIXINT_MIN) as f64),
        TAG_FIXSTR_MIN..=TAG_FIXSTR_MAX => {
            let len = (tag & 0x1F) as usize;
            let bytes = rest.get(..len).ok_or_else(|| decode_err(base + at, "truncated string"))?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| decode_err(base + at, "string is not UTF-8"))?;
            at += len;
            Json::Str(s.to_owned())
        }
        other => return Err(decode_err(base, format!("unknown tag 0x{other:02x}"))),
    };
    Ok((value, at))
}

/// Decode a varint-length-prefixed UTF-8 string (shared by string values
/// and object keys). The tag byte, if any, has already been consumed.
fn decode_str(buf: &[u8], base: usize) -> Result<(String, usize)> {
    let (len, n) = get_varint(buf).ok_or_else(|| decode_err(base, "bad string length"))?;
    if len > MAX_STR_LEN as u64 {
        return Err(decode_err(
            base,
            format!("string length {len} exceeds the {MAX_STR_LEN}-byte cap"),
        ));
    }
    let len = len as usize;
    let end = n.checked_add(len).ok_or_else(|| decode_err(base, "string length overflow"))?;
    let bytes = buf.get(n..end).ok_or_else(|| decode_err(base, "truncated string"))?;
    let s = std::str::from_utf8(bytes)
        .map_err(|_| decode_err(base + n, "string is not UTF-8"))?
        .to_owned();
    Ok((s, end))
}

impl Json {
    /// Encode this document as an MBF payload (magic byte + tagged value).
    /// Fails on strings over [`MAX_STR_LEN`] or nesting over
    /// [`json::MAX_DEPTH`] — callers fall back to JSON text then.
    pub fn to_mbf(&self) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(16);
        out.push(MAGIC);
        encode_value(&mut out, self)?;
        ENCODES.fetch_add(1, Ordering::Relaxed);
        Ok(out)
    }

    /// Decode an MBF payload (magic byte + tagged value). Rejects missing
    /// magic, trailing bytes, truncation, unknown tags, over-cap strings,
    /// and over-deep nesting — always an error, never a panic.
    pub fn from_mbf(bytes: &[u8]) -> Result<Json> {
        let (&first, rest) = bytes.split_first().ok_or_else(|| decode_err(0, "empty payload"))?;
        if first != MAGIC {
            return Err(decode_err(0, format!("bad magic byte 0x{first:02x}")));
        }
        let (value, consumed) = decode_at(rest, 1, 0)?;
        if consumed != rest.len() {
            return Err(decode_err(1 + consumed, "trailing bytes after value"));
        }
        DECODES.fetch_add(1, Ordering::Relaxed);
        Ok(value)
    }

    /// Codec-agnostic payload decode: MBF payloads (sniffed by magic byte)
    /// decode as MBF, anything else parses as JSON text. This is what
    /// applications use on event values, so a workflow computes identical
    /// results whether its values ride JSON or MBF.
    pub fn from_payload(bytes: &[u8]) -> Result<Json> {
        if is_mbf(bytes) {
            Json::from_mbf(bytes)
        } else {
            Json::parse_bytes(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::from_mbf(&v.to_mbf().unwrap()).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::num(0),
            Json::num(1),
            Json::num(-1),
            Json::num(127),
            Json::num(128),
            Json::Num(2f64.powi(53) - 1.0),
            Json::Num(-(2f64.powi(53) - 1.0)),
            Json::Num(2f64.powi(53)),
            Json::Num(0.5),
            Json::Num(-3.25),
            Json::Num(f64::MIN_POSITIVE),
            Json::str(""),
            Json::str("hello"),
            Json::str("héllo ∞ 🚀"),
            Json::arr([]),
            Json::obj([("a", Json::num(1)), ("a", Json::num(2))]),
        ] {
            assert_eq!(roundtrip(&v), v, "value {v:?}");
        }
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v = Json::obj([
            ("counts", Json::arr([Json::num(1), Json::num(2), Json::num(3)])),
            ("meta", Json::obj([("name", Json::str("hot_topics")), ("on", Json::Bool(true))])),
            ("empty", Json::arr([])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn non_finite_floats_encode_as_null_like_json() {
        for n in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(roundtrip(&Json::Num(n)), Json::Null);
            // Same canonicalization as the JSON text serializer.
            assert_eq!(Json::parse(&Json::Num(n).to_compact()).unwrap(), Json::Null);
        }
    }

    #[test]
    fn integral_floats_use_integer_tags() {
        let enc = Json::num(300).to_mbf().unwrap();
        assert_eq!(enc[1], TAG_INT_POS);
        let enc = Json::num(-300).to_mbf().unwrap();
        assert_eq!(enc[1], TAG_INT_NEG);
        // 2^53 falls outside the integer-print range: stored as raw f64.
        let enc = Json::Num(2f64.powi(53)).to_mbf().unwrap();
        assert_eq!(enc[1], TAG_F64);
    }

    #[test]
    fn fix_range_boundaries_encode_one_byte_and_roundtrip() {
        // 0..=111 are single-byte fixints; 112 falls back to tag+varint.
        let enc = Json::num(FIXINT_MAX as f64).to_mbf().unwrap();
        assert_eq!(enc.len(), 2, "magic + one fixint byte");
        assert_eq!(enc[1], TAG_FIXINT_MAX);
        let enc = Json::num(FIXINT_MAX as f64 + 1.0).to_mbf().unwrap();
        assert_eq!(enc[1], TAG_INT_POS);
        // Strings of ≤31 bytes carry their length in the tag byte.
        let s = "x".repeat(FIXSTR_MAX);
        let enc = Json::str(&s).to_mbf().unwrap();
        assert_eq!(enc.len(), 2 + FIXSTR_MAX, "magic + fixstr tag + bytes");
        assert_eq!(enc[1], TAG_FIXSTR_MAX);
        let enc = Json::str("x".repeat(FIXSTR_MAX + 1)).to_mbf().unwrap();
        assert_eq!(enc[1], TAG_STR);
        for v in [Json::num(0), Json::num(111), Json::num(112), Json::str(""), Json::str(&s)] {
            assert_eq!(roundtrip(&v), v, "value {v:?}");
        }
        // The decoder accepts the long forms the encoder no longer emits.
        let mut long = vec![MAGIC, TAG_INT_POS];
        put_varint(&mut long, 7);
        assert_eq!(Json::from_mbf(&long).unwrap(), Json::num(7));
        let mut long = vec![MAGIC, TAG_STR];
        put_varint(&mut long, 2);
        long.extend_from_slice(b"hi");
        assert_eq!(Json::from_mbf(&long).unwrap(), Json::str("hi"));
    }

    #[test]
    fn mbf_is_smaller_than_json_on_a_typical_slate() {
        // Shaped like the hot_topics/retailer bench slates: short string
        // labels, large counters, and epoch-scale timestamps.
        let v = Json::obj([
            ("count", Json::num(1_234_567)),
            ("updated_ts", Json::num(1_700_000_000_000_f64)),
            (
                "topics",
                Json::arr(
                    (0..20)
                        .map(|i| {
                            Json::obj([
                                ("name", Json::str(format!("topic-{i}"))),
                                ("hits", Json::num((10_000 + i * 37) as f64)),
                                ("last_ts", Json::num((1_700_000_000_000i64 + i) as f64)),
                            ])
                        })
                        .collect::<Vec<_>>(),
                ),
            ),
        ]);
        let mbf = v.to_mbf().unwrap();
        let json = v.to_compact();
        assert!(
            mbf.len() * 4 <= json.len() * 3,
            "expected ≥25% shrink: mbf {} vs json {}",
            mbf.len(),
            json.len()
        );
    }

    #[test]
    fn truncation_never_panics() {
        let v = Json::obj([
            ("s", Json::str("some string value")),
            ("a", Json::arr([Json::num(1), Json::Num(1.5), Json::Null])),
        ]);
        let enc = v.to_mbf().unwrap();
        for cut in 0..enc.len() {
            assert!(Json::from_mbf(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corruption_is_an_error_not_a_panic() {
        let enc = Json::obj([("k", Json::str("v"))]).to_mbf().unwrap();
        for i in 0..enc.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut bad = enc.clone();
                bad[i] ^= flip;
                let _ = Json::from_mbf(&bad); // must not panic
            }
        }
    }

    #[test]
    fn forged_container_count_is_rejected_without_allocating() {
        // Array claiming u32::MAX elements in a 10-byte buffer.
        let mut bad = vec![MAGIC, TAG_ARR];
        put_varint(&mut bad, u32::MAX as u64);
        assert!(Json::from_mbf(&bad).is_err());
    }

    #[test]
    fn over_cap_string_is_rejected_on_decode() {
        let mut bad = vec![MAGIC, TAG_STR];
        put_varint(&mut bad, (MAX_STR_LEN as u64) + 1);
        assert!(Json::from_mbf(&bad).is_err());
    }

    #[test]
    fn over_deep_nesting_is_rejected_both_ways() {
        let mut v = Json::num(1);
        for _ in 0..json::MAX_DEPTH + 2 {
            v = Json::arr([v]);
        }
        assert!(v.to_mbf().is_err());
        // Hand-built over-deep payload: nested single-element arrays.
        let mut bad = vec![MAGIC];
        for _ in 0..json::MAX_DEPTH + 2 {
            bad.push(TAG_ARR);
            bad.push(1);
        }
        bad.push(TAG_NULL);
        assert!(Json::from_mbf(&bad).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = Json::num(1).to_mbf().unwrap();
        enc.push(TAG_NULL);
        assert!(Json::from_mbf(&enc).is_err());
    }

    #[test]
    fn bad_magic_and_empty_are_rejected() {
        assert!(Json::from_mbf(b"").is_err());
        assert!(Json::from_mbf(b"{\"a\":1}").is_err());
        assert!(Json::from_mbf(&[0xff, TAG_NULL]).is_err());
    }

    #[test]
    fn sniffing_separates_mbf_from_every_text_payload() {
        assert!(is_mbf(&Json::num(7).to_mbf().unwrap()));
        for text in ["{\"a\":1}", "[1,2]", "42", "  {}", "\"s\"", "null", ""] {
            assert!(!is_mbf(text.as_bytes()), "{text:?}");
            assert_eq!(Codec::sniff(text.as_bytes()), Codec::Json);
        }
        assert_eq!(Codec::sniff(&[MAGIC, TAG_NULL]), Codec::Mbf);
    }

    #[test]
    fn from_payload_decodes_both_codecs_identically() {
        let v = Json::obj([("n", Json::num(3)), ("s", Json::str("x"))]);
        let from_json = Json::from_payload(v.to_compact().as_bytes()).unwrap();
        let from_mbf = Json::from_payload(&v.to_mbf().unwrap()).unwrap();
        assert_eq!(from_json, from_mbf);
        assert_eq!(from_json, v);
    }

    #[test]
    fn codec_choice_parses_and_resolves() {
        use std::str::FromStr;
        assert_eq!(CodecChoice::from_str("auto").unwrap(), CodecChoice::Auto);
        assert_eq!(CodecChoice::from_str(" MBF ").unwrap(), CodecChoice::Mbf);
        assert_eq!(CodecChoice::from_str("json").unwrap(), CodecChoice::Json);
        assert!(CodecChoice::from_str("bson").is_err());
        assert_eq!(CodecChoice::Json.store_codec(), Codec::Json);
        assert_eq!(CodecChoice::Auto.store_codec(), Codec::Mbf);
        assert_eq!(CodecChoice::Mbf.store_codec(), Codec::Mbf);
        assert!(!CodecChoice::Json.offers_mbf());
        assert!(CodecChoice::Auto.offers_mbf());
    }

    #[test]
    fn counters_advance() {
        let (d0, e0) = mbf_counters();
        let enc = Json::num(1).to_mbf().unwrap();
        Json::from_mbf(&enc).unwrap();
        let (d1, e1) = mbf_counters();
        assert!(d1 > d0 && e1 > e0);
    }
}
