//! End-to-end tests of the Muppet 1.0 and 2.0 engines against the
//! behaviours §4 of the paper specifies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use muppet_core::event::{Event, Key};
use muppet_core::operator::{Emitter, FnMapper, FnUpdater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use muppet_runtime::cache::FlushPolicy;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind, OperatorSet};
use muppet_runtime::http::{http_get, percent_encode, HttpSlateServer};
use muppet_runtime::overflow::OverflowPolicy;
use muppet_slatestore::cluster::{StoreCluster, StoreConfig};
use muppet_slatestore::types::CellKey;
use muppet_slatestore::util::TempDir;

/// Figure 1(b)'s counting workflow: S1 → M1 → S2 → U1.
fn count_workflow() -> Workflow {
    let mut b = Workflow::builder("count");
    b.external_stream("S1");
    b.mapper_publishing("M1", &["S1"], &["S2"]);
    b.updater("U1", &["S2"]);
    b.build().unwrap()
}

fn count_ops() -> OperatorSet {
    OperatorSet::new()
        .mapper(FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        }))
        .updater(FnUpdater::new("U1", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        }))
}

fn small_config(kind: EngineKind) -> EngineConfig {
    EngineConfig {
        kind,
        machines: 2,
        workers_per_machine: 2,
        workers_per_op: 2,
        queue_capacity: 10_000,
        slate_cache_capacity: 10_000,
        flush: FlushPolicy::OnEvict,
        overflow: OverflowPolicy::DropAndLog,
        record_latency: true,
        ..EngineConfig::default()
    }
}

fn submit_keys(engine: &Engine, keys: &[&str]) {
    for (i, k) in keys.iter().enumerate() {
        engine.submit(Event::new("S1", i as u64, Key::from(*k), "e")).unwrap();
    }
}

#[test]
fn hot_path_stats_surface_shards_and_drain_batches() {
    // The observability satellites: the sharded central cache and the
    // batch-drained queues report through EngineStats.
    let cfg =
        EngineConfig { cache_shards: 4, drain_batch_max: 8, ..small_config(EngineKind::Muppet2) };
    let engine = Engine::start(count_workflow(), count_ops(), cfg, None).unwrap();
    submit_keys(&engine, &["a", "b", "a", "c", "a", "b"]);
    assert!(engine.drain(Duration::from_secs(10)));
    let stats = engine.stats();
    assert_eq!(stats.cache.shards, 8, "4 shards × 2 machines");
    assert!(stats.drain.drains > 0, "workers record their queue drains");
    assert!(stats.drain.max >= 1 && stats.drain.max <= 8, "batches bounded by drain_batch_max");
    let per_shard = engine.cache_shard_stats();
    assert_eq!(per_shard.len(), 4, "shard-wise aggregation across machines");
    assert_eq!(per_shard.iter().map(|s| s.entries).sum::<u64>(), stats.cache.entries);
    // Batch draining must not change results: same counts as ever.
    assert_eq!(engine.read_slate("U1", &Key::from("a")), Some(b"3".to_vec()));
    engine.shutdown();
}

#[test]
fn drain_batch_of_one_reproduces_pop_per_event() {
    // drain_batch_max = 1 is the pre-batching engine; exactness holds at
    // both extremes.
    for batch in [1usize, 64] {
        let cfg = EngineConfig { drain_batch_max: batch, ..small_config(EngineKind::Muppet2) };
        let engine = Engine::start(count_workflow(), count_ops(), cfg, None).unwrap();
        submit_keys(&engine, &["x", "y", "x", "x", "y"]);
        assert!(engine.drain(Duration::from_secs(10)));
        assert_eq!(engine.read_slate("U1", &Key::from("x")), Some(b"3".to_vec()), "batch={batch}");
        assert_eq!(engine.read_slate("U1", &Key::from("y")), Some(b"2".to_vec()), "batch={batch}");
        engine.shutdown();
    }
}

#[test]
fn muppet2_counts_correctly() {
    let engine =
        Engine::start(count_workflow(), count_ops(), small_config(EngineKind::Muppet2), None)
            .unwrap();
    let keys: Vec<String> = (0..500).map(|i| format!("k{}", i % 7)).collect();
    let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
    submit_keys(&engine, &refs);
    assert!(engine.drain(Duration::from_secs(10)), "must drain");
    for i in 0..7 {
        let bytes = engine.read_slate("U1", &Key::from(format!("k{i}"))).unwrap();
        let count: u64 = String::from_utf8(bytes).unwrap().parse().unwrap();
        let expected = (0..500).filter(|j| j % 7 == i).count() as u64;
        assert_eq!(count, expected, "key k{i}");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.submitted, 500);
    assert_eq!(stats.processed, 1000, "500 map + 500 update");
    assert_eq!(stats.emitted, 500);
    assert_eq!(stats.dropped_overflow, 0);
    assert_eq!(stats.lost_machine_failure, 0);
    assert!(stats.latency.count >= 500);
}

#[test]
fn muppet1_counts_correctly() {
    let engine =
        Engine::start(count_workflow(), count_ops(), small_config(EngineKind::Muppet1), None)
            .unwrap();
    let keys: Vec<String> = (0..300).map(|i| format!("k{}", i % 5)).collect();
    let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
    submit_keys(&engine, &refs);
    assert!(engine.drain(Duration::from_secs(10)));
    for i in 0..5 {
        let bytes = engine.read_slate("U1", &Key::from(format!("k{i}"))).unwrap();
        let count: u64 = String::from_utf8(bytes).unwrap().parse().unwrap();
        assert_eq!(count, 60, "key k{i}");
    }
    engine.shutdown();
}

#[test]
fn unknown_operator_registration_fails() {
    match Engine::start(
        count_workflow(),
        OperatorSet::new(),
        small_config(EngineKind::Muppet2),
        None,
    ) {
        Err(err) => assert!(matches!(err, muppet_core::Error::UnknownOperator(_))),
        Ok(_) => panic!("starting without registered operators must fail"),
    }
}

#[test]
fn submit_to_internal_stream_is_rejected() {
    let engine =
        Engine::start(count_workflow(), count_ops(), small_config(EngineKind::Muppet2), None)
            .unwrap();
    let err = engine.submit(Event::new("S2", 1, Key::from("k"), "x")).unwrap_err();
    assert!(matches!(err, muppet_core::Error::ExternalStreamViolation(_)));
    engine.shutdown();
}

#[test]
fn slates_persist_to_store_and_reload() {
    let dir = TempDir::new("engine-store").unwrap();
    let store = Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).unwrap());
    let mut cfg = small_config(EngineKind::Muppet2);
    cfg.flush = FlushPolicy::WriteThrough;
    let engine =
        Engine::start(count_workflow(), count_ops(), cfg, Some(Arc::clone(&store))).unwrap();
    submit_keys(&engine, &["walmart", "walmart", "bestbuy"]);
    assert!(engine.drain(Duration::from_secs(10)));
    let final_now = engine.now_us();
    engine.shutdown();
    // The store has the final counters (write-through flushed them).
    let walmart = store.get(&CellKey::new("walmart", "U1"), final_now).unwrap().unwrap();
    assert_eq!(walmart.as_ref(), b"2");
    let bestbuy = store.get(&CellKey::new("bestbuy", "U1"), final_now).unwrap().unwrap();
    assert_eq!(bestbuy.as_ref(), b"1");

    // A fresh engine resumes the counters from the store (§4.2: persistent
    // slates help resuming/restarting).
    let mut cfg = small_config(EngineKind::Muppet2);
    cfg.flush = FlushPolicy::WriteThrough;
    let engine2 =
        Engine::start(count_workflow(), count_ops(), cfg, Some(Arc::clone(&store))).unwrap();
    submit_keys(&engine2, &["walmart"]);
    assert!(engine2.drain(Duration::from_secs(10)));
    let bytes = engine2.read_slate("U1", &Key::from("walmart")).unwrap();
    assert_eq!(bytes, b"3", "2 from the store + 1 new");
    engine2.shutdown();
}

#[test]
fn graceful_shutdown_flushes_interval_policy_dirty_slates() {
    let dir = TempDir::new("engine-flush").unwrap();
    let store = Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).unwrap());
    let mut cfg = small_config(EngineKind::Muppet2);
    cfg.flush = FlushPolicy::IntervalMs(60_000); // flusher won't fire during the test
    let engine =
        Engine::start(count_workflow(), count_ops(), cfg, Some(Arc::clone(&store))).unwrap();
    submit_keys(&engine, &["k", "k", "k"]);
    assert!(engine.drain(Duration::from_secs(10)));
    let now = engine.now_us();
    let stats = engine.shutdown();
    assert_eq!(stats.dirty_slates, 0, "graceful shutdown flushes everything");
    let stored = store.get(&CellKey::new("k", "U1"), now + 1).unwrap().unwrap();
    assert_eq!(stored.as_ref(), b"3");
}

#[test]
fn machine_crash_loses_bounded_events_and_reroutes() {
    let mut cfg = small_config(EngineKind::Muppet2);
    cfg.machines = 3;
    let engine = Engine::start(count_workflow(), count_ops(), cfg, None).unwrap();
    // Warm up.
    let warm: Vec<String> = (0..200).map(|i| format!("k{}", i % 20)).collect();
    submit_keys(&engine, &warm.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(engine.drain(Duration::from_secs(10)));
    assert!(!engine.failure_detected(1), "no failure reported yet");

    engine.kill_machine(1);
    // Keep submitting: sends to machine 1 fail, get reported, reroute.
    let after: Vec<String> = (0..200).map(|i| format!("k{}", i % 20)).collect();
    submit_keys(&engine, &after.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(engine.drain(Duration::from_secs(10)));
    assert!(engine.failure_detected(1), "first failed send reports the machine (§4.3)");

    let stats = engine.stats();
    // Loss is real but bounded: at most the events that targeted machine 1
    // before the report, plus anything queued there at crash time.
    assert!(stats.lost_machine_failure > 0, "the undeliverable event is lost, not retried");
    assert!(
        stats.lost_machine_failure + stats.lost_in_queues <= 200,
        "loss must be bounded: {stats:?}"
    );
    // The system keeps processing after the failure.
    let total: u64 = (0..20)
        .filter_map(|i| engine.read_slate("U1", &Key::from(format!("k{i}"))))
        .map(|b| String::from_utf8(b).unwrap().parse::<u64>().unwrap())
        .sum();
    assert!(total >= 200, "post-failure events still counted: {total}");
    engine.shutdown();
}

#[test]
fn overflow_drop_policy_sheds_load() {
    let mut cfg = small_config(EngineKind::Muppet2);
    cfg.machines = 1;
    cfg.workers_per_machine = 1;
    cfg.queue_capacity = 8; // tiny queues
    cfg.overflow = OverflowPolicy::DropAndLog;
    // Slow updater: force queue buildup.
    let ops = OperatorSet::new()
        .mapper(FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        }))
        .updater(FnUpdater::new("U1", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            std::thread::sleep(Duration::from_micros(500));
            slate.incr_counter(1);
        }));
    let engine = Engine::start(count_workflow(), ops, cfg, None).unwrap();
    for i in 0..2000 {
        engine.submit(Event::new("S1", i, Key::from("hot"), "x")).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(30)));
    let stats = engine.shutdown();
    assert!(stats.dropped_overflow > 0, "tiny queues must overflow: {stats:?}");
    // Dropped events are logged (§4.3).
    assert!(stats.dropped_overflow >= 1);
}

#[test]
fn overflow_stream_provides_degraded_service() {
    // Main path U1 is slow; overflow events go to S_ovf → U_cheap.
    let mut b = Workflow::builder("degraded");
    b.external_stream("S1");
    b.mapper_publishing("M1", &["S1"], &["S2"]);
    b.updater("U1", &["S2"]);
    b.stream("S_ovf");
    b.updater("U_cheap", &["S_ovf"]);
    let wf = b.build().unwrap();

    let ops = OperatorSet::new()
        .mapper(FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        }))
        .updater(FnUpdater::new("U1", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            std::thread::sleep(Duration::from_micros(800));
            slate.incr_counter(1);
        }))
        .updater(FnUpdater::new("U_cheap", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        }));
    let mut cfg = small_config(EngineKind::Muppet2);
    cfg.machines = 1;
    cfg.workers_per_machine = 2;
    cfg.queue_capacity = 8;
    cfg.overflow = OverflowPolicy::OverflowStream("S_ovf".into());
    let engine = Engine::start(wf, ops, cfg, None).unwrap();
    for i in 0..1500 {
        engine.submit(Event::new("S1", i, Key::from("hot"), "x")).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(30)));
    let expensive = engine
        .read_slate("U1", &Key::from("hot"))
        .map(|b| String::from_utf8(b).unwrap().parse::<u64>().unwrap())
        .unwrap_or(0);
    let cheap = engine
        .read_slate("U_cheap", &Key::from("hot"))
        .map(|b| String::from_utf8(b).unwrap().parse::<u64>().unwrap())
        .unwrap_or(0);
    let stats = engine.shutdown();
    assert!(stats.redirected_overflow > 0, "overflow redirects: {stats:?}");
    assert!(cheap > 0, "degraded path processed redirected events");
    // Every submitted event is accounted for: it reached the expensive
    // path, the degraded path, or was dropped when the overflow stream
    // itself overflowed (the policy's one-redirect bound) — never lost
    // silently.
    assert_eq!(expensive + cheap + stats.dropped_overflow, 1500, "full accounting: {stats:?}");
}

#[test]
fn source_throttle_loses_nothing() {
    let mut cfg = small_config(EngineKind::Muppet2);
    cfg.machines = 1;
    cfg.workers_per_machine = 1;
    cfg.queue_capacity = 16;
    cfg.overflow = OverflowPolicy::SourceThrottle;
    let ops = OperatorSet::new()
        .mapper(FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        }))
        .updater(FnUpdater::new("U1", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            std::thread::sleep(Duration::from_micros(200));
            slate.incr_counter(1);
        }));
    let engine = Engine::start(count_workflow(), ops, cfg, None).unwrap();
    for i in 0..1000 {
        engine.submit(Event::new("S1", i, Key::from("k"), "x")).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(60)));
    let count: u64 = String::from_utf8(engine.read_slate("U1", &Key::from("k")).unwrap())
        .unwrap()
        .parse()
        .unwrap();
    let stats = engine.shutdown();
    assert_eq!(count, 1000, "throttling trades latency for zero loss");
    assert_eq!(stats.dropped_overflow, 0);
    assert!(stats.throttle_waits > 0, "the producer must actually have been throttled");
}

#[test]
fn cyclic_workflow_countdown_terminates() {
    // §5's self-feeding updater, with a countdown so it quiesces.
    let mut b = Workflow::builder("cycle");
    b.external_stream("S1");
    b.mapper_publishing("M", &["S1"], &["S2"]);
    b.updater_publishing("U", &["S2"], &["S2"]);
    let wf = b.build().unwrap();
    let ops = OperatorSet::new()
        .mapper(FnMapper::new("M", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        }))
        .updater(FnUpdater::new("U", |ctx: &mut dyn Emitter, ev: &Event, slate: &mut Slate| {
            let n: u32 = ev.value_str().unwrap_or("0").parse().unwrap_or(0);
            slate.incr_counter(1);
            if n > 0 {
                ctx.publish("S2", ev.key.clone(), (n - 1).to_string().into_bytes());
            }
        }));
    let engine = Engine::start(wf, ops, small_config(EngineKind::Muppet2), None).unwrap();
    engine.submit(Event::new("S1", 1, Key::from("k"), "9")).unwrap();
    assert!(engine.drain(Duration::from_secs(10)));
    let count: u64 = String::from_utf8(engine.read_slate("U", &Key::from("k")).unwrap())
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(count, 10, "9,8,...,0 → ten updates");
    engine.shutdown();
}

#[test]
fn publishing_to_unknown_or_external_streams_is_counted_not_fatal() {
    let mut b = Workflow::builder("badpub");
    b.external_stream("S1");
    b.mapper("M", &["S1"]);
    let wf = b.build().unwrap();
    let ops = OperatorSet::new().mapper(FnMapper::new("M", |ctx: &mut dyn Emitter, ev: &Event| {
        ctx.publish("S1", ev.key.clone(), vec![]); // external: illegal
        ctx.publish("S_nope", ev.key.clone(), vec![]); // unknown
    }));
    let engine = Engine::start(wf, ops, small_config(EngineKind::Muppet2), None).unwrap();
    engine.submit(Event::new("S1", 1, Key::from("k"), "x")).unwrap();
    assert!(engine.drain(Duration::from_secs(10)));
    let stats = engine.shutdown();
    assert_eq!(stats.publish_errors, 2);
    assert_eq!(stats.processed, 1);
}

#[test]
fn two_updaters_keep_separate_slates_for_same_key() {
    let mut b = Workflow::builder("two");
    b.external_stream("S1");
    b.updater("U1", &["S1"]);
    b.updater("U2", &["S1"]);
    let wf = b.build().unwrap();
    let ops = OperatorSet::new()
        .updater(FnUpdater::new("U1", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        }))
        .updater(FnUpdater::new("U2", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(10);
        }));
    let engine = Engine::start(wf, ops, small_config(EngineKind::Muppet2), None).unwrap();
    for i in 0..5 {
        engine.submit(Event::new("S1", i, Key::from("shared"), "x")).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(10)));
    assert_eq!(engine.read_slate("U1", &Key::from("shared")).unwrap(), b"5");
    assert_eq!(engine.read_slate("U2", &Key::from("shared")).unwrap(), b"50");
    engine.shutdown();
}

#[test]
fn slate_contention_is_bounded_to_two_workers() {
    // Instrumented updater: track the max number of threads concurrently
    // inside update() for the same key. The slot lock serializes actual
    // updates, so we track *distinct worker threads* that ever process one
    // key instead.
    let seen_threads: Arc<
        muppet_core::sync::Mutex<std::collections::HashSet<std::thread::ThreadId>>,
    > = Arc::new(muppet_core::sync::Mutex::new(std::collections::HashSet::new()));
    let seen2 = Arc::clone(&seen_threads);
    let mut b = Workflow::builder("contention");
    b.external_stream("S1");
    b.updater("U", &["S1"]);
    let wf = b.build().unwrap();
    let ops = OperatorSet::new().updater(FnUpdater::new(
        "U",
        move |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            seen2.lock().insert(std::thread::current().id());
            slate.incr_counter(1);
        },
    ));
    let mut cfg = small_config(EngineKind::Muppet2);
    cfg.machines = 1;
    cfg.workers_per_machine = 8;
    let engine = Engine::start(wf, ops, cfg, None).unwrap();
    for i in 0..5000 {
        engine.submit(Event::new("S1", i, Key::from("single-hot-key"), "x")).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(20)));
    assert_eq!(engine.read_slate("U", &Key::from("single-hot-key")).unwrap(), b"5000");
    engine.shutdown();
    let n = seen_threads.lock().len();
    assert!(n <= 2, "events of one key must reach at most two workers (§4.5), saw {n}");
}

#[test]
fn muppet1_single_owner_per_key() {
    // 1.0: exactly one worker processes a given ⟨key, updater⟩.
    let seen_threads: Arc<
        muppet_core::sync::Mutex<std::collections::HashSet<std::thread::ThreadId>>,
    > = Arc::new(muppet_core::sync::Mutex::new(std::collections::HashSet::new()));
    let seen2 = Arc::clone(&seen_threads);
    let mut b = Workflow::builder("owner");
    b.external_stream("S1");
    b.updater("U", &["S1"]);
    let wf = b.build().unwrap();
    let ops = OperatorSet::new().updater(FnUpdater::new(
        "U",
        move |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            seen2.lock().insert(std::thread::current().id());
            slate.incr_counter(1);
        },
    ));
    let mut cfg = small_config(EngineKind::Muppet1);
    cfg.machines = 2;
    cfg.workers_per_op = 4;
    let engine = Engine::start(wf, ops, cfg, None).unwrap();
    for i in 0..1000 {
        engine.submit(Event::new("S1", i, Key::from("one-key"), "x")).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(10)));
    engine.shutdown();
    assert_eq!(seen_threads.lock().len(), 1, "1.0: one worker owns each key");
}

#[test]
fn http_server_serves_live_slates_and_status() {
    let engine = Arc::new(
        Engine::start(count_workflow(), count_ops(), small_config(EngineKind::Muppet2), None)
            .unwrap(),
    );
    submit_keys(&engine, &["walmart", "walmart", "sam's club"]);
    assert!(engine.drain(Duration::from_secs(10)));

    let server = HttpSlateServer::serve(Arc::clone(&engine) as _).unwrap();
    let (code, body) = http_get(&format!("{}/slate/U1/walmart", server.base_url())).unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, b"2");
    // Key with a space needs encoding.
    let enc = percent_encode("sam's club".as_bytes());
    let (code, body) = http_get(&format!("{}/slate/U1/{enc}", server.base_url())).unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, b"1");
    let (code, _) = http_get(&format!("{}/slate/U1/nobody", server.base_url())).unwrap();
    assert_eq!(code, 404);
    let (code, body) = http_get(&format!("{}/status", server.base_url())).unwrap();
    assert_eq!(code, 200);
    let status = muppet_core::json::Json::parse_bytes(&body).unwrap();
    assert_eq!(status.get("submitted").unwrap().as_u64(), Some(3));
    drop(server);
}

#[test]
fn latency_is_recorded_per_updater_delivery() {
    let engine =
        Engine::start(count_workflow(), count_ops(), small_config(EngineKind::Muppet2), None)
            .unwrap();
    submit_keys(&engine, &["a", "b", "c"]);
    assert!(engine.drain(Duration::from_secs(10)));
    let stats = engine.shutdown();
    assert_eq!(stats.latency.count, 3);
    assert!(stats.latency.p99_us > 0);
}

#[test]
fn concurrent_submitters_are_safe() {
    let engine = Arc::new(
        Engine::start(count_workflow(), count_ops(), small_config(EngineKind::Muppet2), None)
            .unwrap(),
    );
    let total = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                for i in 0..250u64 {
                    engine
                        .submit(Event::new(
                            "S1",
                            i,
                            Key::from(format!("k{}", (t * 250 + i) % 10)),
                            "x",
                        ))
                        .unwrap();
                    total.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(engine.drain(Duration::from_secs(10)));
    let sum: u64 = (0..10)
        .map(|i| {
            engine
                .read_slate("U1", &Key::from(format!("k{i}")))
                .map(|b| String::from_utf8(b).unwrap().parse::<u64>().unwrap())
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(sum, 1000);
    assert_eq!(total.load(Ordering::Relaxed), 1000);
}
