//! Static cluster topology: which machines exist and where they listen.
//!
//! A `muppetd` cluster is configured up front — the paper's deployment has
//! no membership protocol beyond the §4.3 failure broadcast, so the
//! topology is a fixed list of nodes, and the master role (failure
//! handling only, never the data path) is pinned to one of them.
//!
//! Two input formats:
//!
//! * a TOML subset (`[[node]]` tables with `id`, `host`, `port`,
//!   `http_port`, plus an optional top-level `master = <id>`);
//! * a compact peer list for flags:
//!   `host:port:http_port,host:port:http_port,...` (ids assigned in order).

use std::net::{SocketAddr, ToSocketAddrs};

use crate::transport::MachineId;

/// One machine of the cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSpec {
    /// Ring member id (machine index).
    pub id: MachineId,
    /// Hostname or IP of the event listener.
    pub host: String,
    /// Event (transport frame) port.
    pub port: u16,
    /// HTTP slate-read / ingest port (0 = no HTTP server).
    pub http_port: u16,
}

impl NodeSpec {
    /// The transport listen/connect address.
    pub fn addr(&self) -> Result<SocketAddr, String> {
        (self.host.as_str(), self.port)
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve {}:{}: {e}", self.host, self.port))?
            .next()
            .ok_or_else(|| format!("no address for {}:{}", self.host, self.port))
    }
}

/// The full static cluster layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    /// All nodes; `nodes[i].id == i`.
    pub nodes: Vec<NodeSpec>,
    /// Which node runs the failure master (§4.3; off the data path).
    pub master: MachineId,
}

impl Topology {
    /// Number of machines.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A loopback cluster of `n` nodes on consecutive ports starting at
    /// `base_port` (HTTP on `base_port + 1000 + i`, or 0 to disable).
    pub fn loopback(n: usize, base_port: u16, with_http: bool) -> Topology {
        let nodes = (0..n)
            .map(|i| NodeSpec {
                id: i,
                host: "127.0.0.1".to_string(),
                port: base_port + i as u16,
                http_port: if with_http { base_port + 1000 + i as u16 } else { 0 },
            })
            .collect();
        Topology { nodes, master: 0 }
    }

    /// A loopback cluster of `n` nodes on OS-assigned free ports,
    /// reserved by briefly binding ephemeral listeners and releasing
    /// them. Inherently racy (the port is free again before the node
    /// binds it) — meant for tests, examples, and experiments, where it
    /// replaces hand-rolled port pickers; not for production topologies.
    pub fn loopback_ephemeral(n: usize, with_http: bool) -> std::io::Result<Topology> {
        use std::net::TcpListener;
        let count = if with_http { 2 * n } else { n };
        let holds: Vec<TcpListener> =
            (0..count).map(|_| TcpListener::bind("127.0.0.1:0")).collect::<std::io::Result<_>>()?;
        let mut ports = Vec::with_capacity(count);
        for hold in &holds {
            ports.push(hold.local_addr()?.port());
        }
        let nodes = (0..n)
            .map(|i| NodeSpec {
                id: i,
                host: "127.0.0.1".to_string(),
                port: ports[i],
                http_port: if with_http { ports[n + i] } else { 0 },
            })
            .collect();
        Ok(Topology { nodes, master: 0 })
    }

    /// Parse the compact peer-list form:
    /// `host:port[:http_port],host:port[:http_port],...`
    pub fn from_peer_list(list: &str) -> Result<Topology, String> {
        let mut nodes = Vec::new();
        for (id, part) in list.split(',').filter(|p| !p.trim().is_empty()).enumerate() {
            let fields: Vec<&str> = part.trim().split(':').collect();
            if fields.len() < 2 || fields.len() > 3 {
                return Err(format!("peer '{part}' must be host:port[:http_port]"));
            }
            let port: u16 = fields[1].parse().map_err(|_| format!("bad port in peer '{part}'"))?;
            let http_port: u16 = match fields.get(2) {
                Some(p) => p.parse().map_err(|_| format!("bad http_port in peer '{part}'"))?,
                None => 0,
            };
            nodes.push(NodeSpec { id, host: fields[0].to_string(), port, http_port });
        }
        let topology = Topology { nodes, master: 0 };
        topology.validate()?;
        Ok(topology)
    }

    /// Parse the TOML-subset config format. Supported grammar: comments
    /// (`#`), a top-level `master = <id>`, and repeated `[[node]]` tables
    /// with `id`, `host` (quoted string), `port`, `http_port` keys.
    pub fn from_toml_str(text: &str) -> Result<Topology, String> {
        let mut nodes: Vec<NodeSpec> = Vec::new();
        let mut master: Option<MachineId> = None;
        let mut current: Option<NodeSpec> = None;

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[node]]" {
                if let Some(node) = current.take() {
                    nodes.push(node);
                }
                current = Some(NodeSpec {
                    id: usize::MAX,
                    host: "127.0.0.1".to_string(),
                    port: 0,
                    http_port: 0,
                });
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let parse_num = |v: &str| -> Result<u64, String> {
                v.parse().map_err(|_| format!("line {}: bad number '{v}'", lineno + 1))
            };
            match (&mut current, key) {
                (None, "master") => master = Some(parse_num(value)? as MachineId),
                (None, other) => {
                    return Err(format!("line {}: unknown top-level key '{other}'", lineno + 1))
                }
                (Some(node), "id") => node.id = parse_num(value)? as MachineId,
                (Some(node), "host") => {
                    node.host = value.trim_matches('"').to_string();
                }
                (Some(node), "port") => node.port = parse_num(value)? as u16,
                (Some(node), "http_port") => node.http_port = parse_num(value)? as u16,
                (Some(_), other) => {
                    return Err(format!("line {}: unknown node key '{other}'", lineno + 1))
                }
            }
        }
        if let Some(node) = current.take() {
            nodes.push(node);
        }
        // Nodes may appear in any order; place by id.
        nodes.sort_by_key(|n| n.id);
        let topology = Topology { nodes, master: master.unwrap_or(0) };
        topology.validate()?;
        Ok(topology)
    }

    /// Check invariant: ids are exactly `0..n` and the master exists.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("topology has no nodes".to_string());
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.id != i {
                return Err(format!(
                    "node ids must be 0..{} (got {} at position {i})",
                    self.nodes.len(),
                    node.id
                ));
            }
            if node.port == 0 {
                return Err(format!("node {} has no port", node.id));
            }
        }
        if self.master >= self.nodes.len() {
            return Err(format!("master {} is not a node", self.master));
        }
        Ok(())
    }

    /// Render as the TOML subset accepted by [`Topology::from_toml_str`].
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("master = {}\n", self.master));
        for node in &self.nodes {
            out.push_str(&format!(
                "\n[[node]]\nid = {}\nhost = \"{}\"\nport = {}\nhttp_port = {}\n",
                node.id, node.host, node.port, node.http_port
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_roundtrip() {
        let topo = Topology::loopback(3, 9200, true);
        let text = topo.to_toml();
        let back = Topology::from_toml_str(&text).unwrap();
        assert_eq!(back, topo);
    }

    #[test]
    fn toml_with_comments_and_order() {
        let text = r#"
# a three node cluster
master = 1

[[node]]
id = 1
host = "127.0.0.1"   # localhost
port = 9301
http_port = 8301

[[node]]
id = 0
host = "127.0.0.1"
port = 9300
http_port = 8300
"#;
        let topo = Topology::from_toml_str(text).unwrap();
        assert_eq!(topo.master, 1);
        assert_eq!(topo.nodes.len(), 2);
        assert_eq!(topo.nodes[0].port, 9300);
        assert_eq!(topo.nodes[1].port, 9301);
    }

    #[test]
    fn peer_list_parses() {
        let topo =
            Topology::from_peer_list("127.0.0.1:9400:8400, 127.0.0.1:9401,127.0.0.1:9402:8402")
                .unwrap();
        assert_eq!(topo.nodes.len(), 3);
        assert_eq!(topo.nodes[1].http_port, 0);
        assert_eq!(topo.nodes[2].id, 2);
        assert_eq!(topo.master, 0);
        assert_eq!(topo.nodes[0].addr().unwrap().port(), 9400);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(Topology::from_peer_list("").is_err());
        assert!(Topology::from_peer_list("localhost").is_err());
        assert!(Topology::from_peer_list("localhost:not-a-port").is_err());
        assert!(Topology::from_toml_str("[[node]]\nid = 5\nport = 1\n").is_err(), "gapped ids");
        assert!(Topology::from_toml_str("master = 3\n[[node]]\nid = 0\nhost = \"h\"\nport = 1\n")
            .is_err());
        assert!(Topology::from_toml_str("bogus = 1\n").is_err());
    }
}
