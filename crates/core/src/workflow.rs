//! Workflow graphs — "a MapUpdate application is a workflow of map and
//! update functions ... modeled as a directed graph (allowing cycles), whose
//! nodes represent map and update functions, and whose edges represent
//! streams" (§3, Figure 1).

use crate::error::{Error, Result};
use crate::event::StreamId;
use crate::hash::{FxHashMap, FxHashSet};

/// Index of an operator within its [`Workflow`]. Stable for the lifetime of
/// the workflow; used as the deterministic delivery order for operators
/// subscribed to the same stream.
pub type OpId = usize;

/// Whether an operator node is a map or an update function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Stateless mapper.
    Map,
    /// Stateful updater (owns slates).
    Update,
}

/// Declaration of one operator node in the workflow graph.
#[derive(Clone, Debug)]
pub struct OpDecl {
    /// Unique operator name (e.g. `"M1"`, `"hot-topic-updater"`).
    pub name: String,
    /// Map or update.
    pub kind: OpKind,
    /// Streams this operator subscribes to (≥ 1).
    pub subscribes: Vec<StreamId>,
    /// Streams this operator declares it publishes to. Declarative: used for
    /// graph rendering and cycle analysis. Publishing to undeclared internal
    /// streams at runtime is still legal (the paper's `publish` takes any
    /// stream name), but publishing to *external* streams never is.
    pub publishes: Vec<StreamId>,
    /// Slate TTL in seconds (updaters only); `None` = keep forever (§4.2).
    pub ttl_secs: Option<u64>,
}

/// A validated MapUpdate application graph.
#[derive(Clone, Debug)]
pub struct Workflow {
    name: String,
    streams: Vec<StreamId>,
    external: FxHashSet<StreamId>,
    ops: Vec<OpDecl>,
    by_name: FxHashMap<String, OpId>,
    subscribers: FxHashMap<StreamId, Vec<OpId>>,
}

impl Workflow {
    /// Start building a workflow.
    pub fn builder(name: impl Into<String>) -> WorkflowBuilder {
        WorkflowBuilder {
            name: name.into(),
            streams: Vec::new(),
            external: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All declared streams, in declaration order.
    pub fn streams(&self) -> &[StreamId] {
        &self.streams
    }

    /// Whether `stream` is declared at all.
    pub fn has_stream(&self, stream: &str) -> bool {
        self.streams.iter().any(|s| s.as_str() == stream)
    }

    /// Whether `stream` is an external input (e.g. the Twitter Firehose).
    /// Operators must not publish into external streams (§5).
    pub fn is_external(&self, stream: &str) -> bool {
        self.external.contains(stream)
    }

    /// All operator declarations, indexed by [`OpId`].
    pub fn ops(&self) -> &[OpDecl] {
        &self.ops
    }

    /// Operator by id.
    pub fn op(&self, id: OpId) -> &OpDecl {
        &self.ops[id]
    }

    /// Operator id by name.
    pub fn op_id(&self, name: &str) -> Option<OpId> {
        self.by_name.get(name).copied()
    }

    /// Ids of operators subscribed to `stream`, in ascending [`OpId`] order
    /// (the deterministic delivery order).
    pub fn subscribers_of(&self, stream: &str) -> &[OpId] {
        self.subscribers.get(stream).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Streams with no subscribers — the application's output streams.
    pub fn sink_streams(&self) -> Vec<&StreamId> {
        self.streams.iter().filter(|s| self.subscribers_of(s.as_str()).is_empty()).collect()
    }

    /// Updater names, in [`OpId`] order.
    pub fn updater_names(&self) -> Vec<&str> {
        self.ops.iter().filter(|o| o.kind == OpKind::Update).map(|o| o.name.as_str()).collect()
    }

    /// Mapper names, in [`OpId`] order.
    pub fn mapper_names(&self) -> Vec<&str> {
        self.ops.iter().filter(|o| o.kind == OpKind::Map).map(|o| o.name.as_str()).collect()
    }

    /// True if the *declared* publish edges admit a cycle (op → stream →
    /// op → ...). Cycles are legal in MapUpdate — output timestamps strictly
    /// exceed input timestamps, so executions stay well-defined — but
    /// engines use this to enable loop budgets.
    pub fn has_declared_cycle(&self) -> bool {
        // DFS with colors over operator nodes; edges via declared publishes.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.ops.len()];
        fn visit(wf: &Workflow, id: OpId, color: &mut [Color]) -> bool {
            color[id] = Color::Gray;
            for stream in &wf.ops[id].publishes {
                for &next in wf.subscribers_of(stream.as_str()) {
                    match color[next] {
                        Color::Gray => return true,
                        Color::White => {
                            if visit(wf, next, color) {
                                return true;
                            }
                        }
                        Color::Black => {}
                    }
                }
            }
            color[id] = Color::Black;
            false
        }
        (0..self.ops.len()).any(|id| color[id] == Color::White && visit(self, id, &mut color))
    }

    /// Render the workflow as Graphviz DOT (the shape of Figure 1).
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{}\" {{\n  rankdir=LR;\n", self.name));
        for s in &self.streams {
            let shape =
                if self.is_external(s.as_str()) { "ellipse, style=bold" } else { "ellipse" };
            out.push_str(&format!("  \"{s}\" [shape={shape}];\n"));
        }
        for op in &self.ops {
            let shape = match op.kind {
                OpKind::Map => "box",
                OpKind::Update => "box, peripheries=2",
            };
            out.push_str(&format!("  \"{}\" [shape={shape}];\n", op.name));
            for s in &op.subscribes {
                out.push_str(&format!("  \"{s}\" -> \"{}\";\n", op.name));
            }
            for s in &op.publishes {
                out.push_str(&format!("  \"{}\" -> \"{s}\";\n", op.name));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Incremental builder for [`Workflow`]. Collects declarations; `build`
/// validates the whole graph at once.
#[derive(Debug)]
pub struct WorkflowBuilder {
    name: String,
    streams: Vec<String>,
    external: Vec<String>,
    ops: Vec<OpDecl>,
}

impl WorkflowBuilder {
    /// Declare an external input stream (events enter only from outside).
    pub fn external_stream(&mut self, name: &str) -> &mut Self {
        self.external.push(name.to_string());
        self.streams.push(name.to_string());
        self
    }

    /// Declare an internal stream (operators publish into it).
    pub fn stream(&mut self, name: &str) -> &mut Self {
        self.streams.push(name.to_string());
        self
    }

    /// Declare a map function subscribed to `subscribes`.
    pub fn mapper(&mut self, name: &str, subscribes: &[&str]) -> &mut Self {
        self.op(name, OpKind::Map, subscribes, &[], None)
    }

    /// Declare a map function with declared output streams (auto-declares
    /// unknown output streams as internal).
    pub fn mapper_publishing(
        &mut self,
        name: &str,
        subscribes: &[&str],
        publishes: &[&str],
    ) -> &mut Self {
        self.op(name, OpKind::Map, subscribes, publishes, None)
    }

    /// Declare an update function subscribed to `subscribes`.
    pub fn updater(&mut self, name: &str, subscribes: &[&str]) -> &mut Self {
        self.op(name, OpKind::Update, subscribes, &[], None)
    }

    /// Declare an update function with declared output streams.
    pub fn updater_publishing(
        &mut self,
        name: &str,
        subscribes: &[&str],
        publishes: &[&str],
    ) -> &mut Self {
        self.op(name, OpKind::Update, subscribes, publishes, None)
    }

    /// Declare an update function with a slate TTL (§4.2's per-update-
    /// function TTL configuration).
    pub fn updater_with_ttl(
        &mut self,
        name: &str,
        subscribes: &[&str],
        ttl_secs: u64,
    ) -> &mut Self {
        self.op(name, OpKind::Update, subscribes, &[], Some(ttl_secs))
    }

    /// Declare an update function with both declared outputs and an
    /// optional TTL (the most general form, used by config files).
    pub fn updater_full(
        &mut self,
        name: &str,
        subscribes: &[&str],
        publishes: &[&str],
        ttl_secs: Option<u64>,
    ) -> &mut Self {
        self.op(name, OpKind::Update, subscribes, publishes, ttl_secs)
    }

    fn op(
        &mut self,
        name: &str,
        kind: OpKind,
        subscribes: &[&str],
        publishes: &[&str],
        ttl_secs: Option<u64>,
    ) -> &mut Self {
        for p in publishes {
            if !self.streams.iter().any(|s| s == p) {
                self.streams.push(p.to_string());
            }
        }
        self.ops.push(OpDecl {
            name: name.to_string(),
            kind,
            subscribes: subscribes.iter().map(|s| StreamId::from(*s)).collect(),
            publishes: publishes.iter().map(|s| StreamId::from(*s)).collect(),
            ttl_secs,
        });
        self
    }

    /// Validate and freeze the workflow.
    pub fn build(&self) -> Result<Workflow> {
        if self.external.is_empty() {
            return Err(Error::Workflow("at least one external stream is required".into()));
        }
        let mut seen_streams: FxHashSet<&str> = FxHashSet::default();
        for s in &self.streams {
            if !seen_streams.insert(s) {
                return Err(Error::Workflow(format!("duplicate stream declaration: {s}")));
            }
        }
        let mut by_name: FxHashMap<String, OpId> = FxHashMap::default();
        for (id, op) in self.ops.iter().enumerate() {
            if by_name.insert(op.name.clone(), id).is_some() {
                return Err(Error::Workflow(format!("duplicate operator name: {}", op.name)));
            }
            if op.subscribes.is_empty() {
                return Err(Error::Workflow(format!(
                    "operator {} subscribes to no streams",
                    op.name
                )));
            }
            if op.kind == OpKind::Map && op.ttl_secs.is_some() {
                return Err(Error::Workflow(format!("mapper {} cannot have a slate TTL", op.name)));
            }
            for s in &op.subscribes {
                if !self.streams.iter().any(|d| d == s.as_str()) {
                    return Err(Error::Workflow(format!(
                        "operator {} subscribes to undeclared stream {s}",
                        op.name
                    )));
                }
            }
            for s in &op.publishes {
                if self.external.iter().any(|e| e == s.as_str()) {
                    return Err(Error::Workflow(format!(
                        "operator {} publishes to external stream {s}",
                        op.name
                    )));
                }
            }
        }
        if self.ops.is_empty() {
            return Err(Error::Workflow("workflow has no operators".into()));
        }

        let streams: Vec<StreamId> =
            self.streams.iter().map(|s| StreamId::from(s.as_str())).collect();
        let external: FxHashSet<StreamId> =
            self.external.iter().map(|s| StreamId::from(s.as_str())).collect();
        let mut subscribers: FxHashMap<StreamId, Vec<OpId>> = FxHashMap::default();
        for (id, op) in self.ops.iter().enumerate() {
            for s in &op.subscribes {
                subscribers.entry(s.clone()).or_default().push(id);
            }
        }
        for subs in subscribers.values_mut() {
            subs.sort_unstable();
            subs.dedup();
        }
        Ok(Workflow {
            name: self.name.clone(),
            streams,
            external,
            ops: self.ops.clone(),
            by_name,
            subscribers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1(b): S1 → M1 → S2 → U1.
    fn retailer_workflow() -> Workflow {
        let mut b = Workflow::builder("retailer-count");
        b.external_stream("S1");
        b.mapper_publishing("M1", &["S1"], &["S2"]);
        b.updater("U1", &["S2"]);
        b.build().unwrap()
    }

    #[test]
    fn figure_1b_shape() {
        let wf = retailer_workflow();
        assert_eq!(wf.name(), "retailer-count");
        assert!(wf.is_external("S1"));
        assert!(!wf.is_external("S2"));
        assert_eq!(wf.subscribers_of("S1"), &[0]);
        assert_eq!(wf.subscribers_of("S2"), &[1]);
        assert_eq!(wf.op(0).kind, OpKind::Map);
        assert_eq!(wf.op(1).kind, OpKind::Update);
        assert_eq!(wf.op_id("U1"), Some(1));
        assert_eq!(wf.op_id("nope"), None);
        assert!(!wf.has_declared_cycle());
        assert_eq!(wf.updater_names(), vec!["U1"]);
        assert_eq!(wf.mapper_names(), vec!["M1"]);
    }

    #[test]
    fn figure_1c_three_stage_pipeline() {
        // S1 → M1 → S2 → U1 → S3 → U2 → S4 (output).
        let mut b = Workflow::builder("hot-topics");
        b.external_stream("S1");
        b.mapper_publishing("M1", &["S1"], &["S2"]);
        b.updater_publishing("U1", &["S2"], &["S3"]);
        b.updater_publishing("U2", &["S3"], &["S4"]);
        let wf = b.build().unwrap();
        let sinks: Vec<&str> = wf.sink_streams().iter().map(|s| s.as_str()).collect();
        assert_eq!(sinks, vec!["S4"]);
        assert!(!wf.has_declared_cycle());
    }

    #[test]
    fn cycles_are_allowed_and_detected() {
        // U1 republishes into its own input (legal: §5 discusses exactly
        // this updater-feeding-itself scenario).
        let mut b = Workflow::builder("looper");
        b.external_stream("S1");
        b.updater_publishing("U1", &["S1", "S2"], &["S2"]);
        let wf = b.build().unwrap();
        assert!(wf.has_declared_cycle());
    }

    #[test]
    fn multi_stream_subscription() {
        // §3's example: one map subscribed to two streams.
        let mut b = Workflow::builder("merge");
        b.external_stream("S1");
        b.external_stream("S2");
        b.mapper("M", &["S1", "S2"]);
        let wf = b.build().unwrap();
        assert_eq!(wf.subscribers_of("S1"), wf.subscribers_of("S2"));
    }

    #[test]
    fn rejects_publish_to_external() {
        let mut b = Workflow::builder("bad");
        b.external_stream("S1");
        b.mapper_publishing("M1", &["S1"], &["S1"]);
        let err = b.build().unwrap_err();
        assert!(matches!(err, Error::Workflow(_)), "{err}");
    }

    #[test]
    fn rejects_duplicate_names_and_streams() {
        let mut b = Workflow::builder("bad");
        b.external_stream("S1");
        b.mapper("M1", &["S1"]);
        b.updater("M1", &["S1"]);
        assert!(b.build().is_err());

        let mut b2 = Workflow::builder("bad2");
        b2.external_stream("S1");
        b2.stream("S1");
        b2.mapper("M", &["S1"]);
        assert!(b2.build().is_err());
    }

    #[test]
    fn rejects_unknown_subscription_and_empty_graphs() {
        let mut b = Workflow::builder("bad");
        b.external_stream("S1");
        b.mapper("M1", &["S9"]);
        assert!(b.build().is_err());

        let mut b2 = Workflow::builder("empty");
        b2.external_stream("S1");
        assert!(b2.build().is_err());

        let b3 = Workflow::builder("no-input");
        assert!(b3.build().is_err());
    }

    #[test]
    fn rejects_mapper_ttl_and_subscriptionless_ops() {
        let mut b = Workflow::builder("bad");
        b.external_stream("S1");
        b.op("M1", OpKind::Map, &["S1"], &[], Some(60));
        assert!(b.build().is_err());

        let mut b2 = Workflow::builder("bad2");
        b2.external_stream("S1");
        b2.mapper("M1", &[]);
        assert!(b2.build().is_err());
    }

    #[test]
    fn publish_auto_declares_internal_streams() {
        let wf = retailer_workflow();
        assert!(wf.has_stream("S2"));
        assert!(!wf.is_external("S2"));
    }

    #[test]
    fn updater_ttl_carried_through() {
        let mut b = Workflow::builder("ttl");
        b.external_stream("S1");
        b.updater_with_ttl("U1", &["S1"], 86_400);
        let wf = b.build().unwrap();
        assert_eq!(wf.op(0).ttl_secs, Some(86_400));
    }

    #[test]
    fn dot_rendering_mentions_every_node() {
        let wf = retailer_workflow();
        let dot = wf.to_dot();
        for name in ["S1", "S2", "M1", "U1"] {
            assert!(dot.contains(name), "missing {name} in:\n{dot}");
        }
        assert!(dot.contains("digraph"));
        assert!(dot.contains("peripheries=2"), "updaters render doubled");
    }

    #[test]
    fn subscriber_order_is_op_id_order() {
        let mut b = Workflow::builder("fanout");
        b.external_stream("S1");
        b.updater("U2", &["S1"]);
        b.mapper("M1", &["S1"]);
        b.updater("U1", &["S1"]);
        let wf = b.build().unwrap();
        assert_eq!(wf.subscribers_of("S1"), &[0, 1, 2], "delivery order is declaration order");
    }
}
