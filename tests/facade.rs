//! Facade-level integration: the `muppet` crate's public API surface —
//! config files to running clusters, HTTP reads, prelude ergonomics.

use std::sync::Arc;
use std::time::Duration;

use muppet::prelude::*;
use muppet::runtime::engine::consistency_of;
use muppet::runtime::http::{http_get, percent_encode};
use muppet::slatestore::util::TempDir;

const CONFIG: &str = r#"
{
    "name": "config-driven-app",
    "machines": 2,
    "workers_per_machine": 2,
    "queue_capacity": 2048,
    "slate_cache_capacity": 5000,
    "replication": 3,
    "flush": {"policy": "write_through"},
    "consistency": "quorum",
    "workflow": {
        "external_streams": ["events"],
        "streams": [],
        "mappers": [
            {"name": "normalize", "subscribe": ["events"], "publish": ["clean"]}
        ],
        "updaters": [
            {"name": "tally", "subscribe": ["clean"], "ttl_secs": 86400}
        ]
    }
}
"#;

fn operators() -> OperatorSet {
    OperatorSet::new()
        .mapper(FnMapper::new("normalize", |ctx: &mut dyn Emitter, ev: &Event| {
            if let Some(text) = ev.value_str() {
                ctx.publish("clean", Key::from(text.trim().to_lowercase()), Vec::new());
            }
        }))
        .updater(FnUpdater::new("tally", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        }))
}

#[test]
fn config_file_drives_the_whole_stack() {
    // Parse the application config exactly as a developer would write it
    // (§3: "a configuration file that includes the workflow graph").
    let app = AppConfig::from_json_str(CONFIG).unwrap();
    assert_eq!(app.name, "config-driven-app");
    let wf = app.build_workflow().unwrap();
    assert!(wf.is_external("events"));
    assert_eq!(wf.op(1).ttl_secs, Some(86_400));

    // Store cluster per the config's replication/consistency.
    let dir = TempDir::new("facade").unwrap();
    let store = Arc::new(
        StoreCluster::open(
            dir.path(),
            StoreConfig {
                nodes: app.replication,
                replication: app.replication,
                consistency: consistency_of(app.consistency),
                ..Default::default()
            },
        )
        .unwrap(),
    );

    // Engine per the config.
    let cfg = EngineConfig::from_app_config(&app, EngineKind::Muppet2);
    assert_eq!(cfg.machines, 2);
    assert_eq!(cfg.flush, FlushPolicy::WriteThrough);
    let engine = Engine::start(wf, operators(), cfg, Some(store)).unwrap();
    for (i, word) in ["  Apple ", "apple", "BANANA", "apple  "].iter().enumerate() {
        engine.submit(Event::new("events", i as u64, Key::from("src"), *word)).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(10)));
    assert_eq!(engine.read_slate("tally", &Key::from("apple")).unwrap(), b"3");
    assert_eq!(engine.read_slate("tally", &Key::from("banana")).unwrap(), b"1");
    engine.shutdown();
}

#[test]
fn config_roundtrips_and_dot_export_renders() {
    let app = AppConfig::from_json_str(CONFIG).unwrap();
    let reparsed = AppConfig::from_json_str(&app.to_json().to_pretty()).unwrap();
    assert_eq!(reparsed, app);
    let dot = app.build_workflow().unwrap().to_dot();
    for name in ["events", "clean", "normalize", "tally"] {
        assert!(dot.contains(name), "DOT export should mention {name}:\n{dot}");
    }
}

#[test]
fn http_slate_reads_from_a_config_driven_cluster() {
    let app = AppConfig::from_json_str(CONFIG).unwrap();
    let wf = app.build_workflow().unwrap();
    let engine = Arc::new(
        Engine::start(
            wf,
            operators(),
            EngineConfig::from_app_config(&app, EngineKind::Muppet2),
            None,
        )
        .unwrap(),
    );
    engine.submit(Event::new("events", 1, Key::from("s"), "Hot Topic")).unwrap();
    assert!(engine.drain(Duration::from_secs(10)));
    let server = HttpSlateServer::serve(Arc::clone(&engine) as _).unwrap();
    let enc = percent_encode(b"hot topic");
    let (code, body) = http_get(&format!("{}/slate/tally/{enc}", server.base_url())).unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, b"1");
    let (code, body) = http_get(&format!("{}/status", server.base_url())).unwrap();
    assert_eq!(code, 200);
    let status = Json::parse_bytes(&body).unwrap();
    assert_eq!(status.get("submitted").and_then(Json::as_u64), Some(1));
}

#[test]
fn doc_quickstart_pattern_compiles_and_runs() {
    // Mirrors the crate-level doc example with the prelude only.
    struct CountUpdater;
    impl Updater for CountUpdater {
        fn name(&self) -> &str {
            "counter"
        }
        fn update(&self, _ctx: &mut dyn Emitter, _event: &Event, slate: &mut Slate) {
            slate.incr_counter(1);
        }
    }
    let mut wf = Workflow::builder("quickstart");
    wf.external_stream("S1");
    wf.updater("counter", &["S1"]);
    let wf = wf.build().unwrap();
    let mut exec = ReferenceExecutor::new(&wf);
    exec.register_updater(CountUpdater);
    exec.push_external("S1", Event::new("S1", 1, Key::from("walmart"), "checkin"));
    exec.push_external("S1", Event::new("S1", 2, Key::from("walmart"), "checkin"));
    exec.run_to_completion().unwrap();
    assert_eq!(exec.slate("counter", &Key::from("walmart")).unwrap().as_str(), Some("2"));
}

#[test]
fn engine_kind_selection_from_one_config() {
    // The same app config runs on either engine generation.
    let app = AppConfig::from_json_str(CONFIG).unwrap();
    for kind in [EngineKind::Muppet1, EngineKind::Muppet2] {
        let engine = Engine::start(
            app.build_workflow().unwrap(),
            operators(),
            EngineConfig::from_app_config(&app, kind),
            None,
        )
        .unwrap();
        engine.submit(Event::new("events", 1, Key::from("s"), "x")).unwrap();
        assert!(engine.drain(Duration::from_secs(10)));
        assert_eq!(engine.read_slate("tally", &Key::from("x")).unwrap(), b"1", "{kind:?}");
        engine.shutdown();
    }
}
