//! Bulk reading of slates (§5): dump an application's computed state —
//! without knowing the keys in advance — three ways:
//!
//! 1. engine-wide cache dump (`Engine::dump_slates`);
//! 2. HTTP key enumeration + per-key fetch (`/keys/`, `/slate/`);
//! 3. store column scan after the engine is gone
//!    (`StoreCluster::scan_column` — "large-volume row reads from the
//!    durable key-value store itself").
//!
//! ```sh
//! cargo run --example bulk_dump
//! ```

use std::sync::Arc;
use std::time::Duration;

use muppet::apps::retailer::{self, Counter, RetailerMapper};
use muppet::prelude::*;
use muppet::runtime::http::{http_get, percent_decode};
use muppet::slatestore::util::TempDir;
use muppet::workloads::checkins::CheckinGenerator;

fn main() {
    let dir = TempDir::new("bulk-dump-example").expect("temp dir");
    let store = Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).expect("store"));
    let engine = Arc::new(
        Engine::start(
            retailer::workflow(),
            OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new()),
            EngineConfig { flush: FlushPolicy::WriteThrough, ..EngineConfig::default() },
            Some(Arc::clone(&store)),
        )
        .expect("engine"),
    );

    let mut gen = CheckinGenerator::new(77, 1_000, 2_000.0);
    for ev in gen.take(retailer::CHECKIN_STREAM, 10_000) {
        engine.submit(ev).expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(30)));

    // --- 1. Engine-wide dump from the live caches ---
    println!("1) Engine::dump_slates (live caches):");
    for (key, bytes) in engine.dump_slates(retailer::COUNTER) {
        println!("   {:<12} {}", key.as_str().unwrap(), String::from_utf8_lossy(&bytes));
    }

    // --- 2. HTTP: enumerate keys, then fetch each ---
    let server = HttpSlateServer::serve(Arc::clone(&engine) as _).expect("http");
    let (code, body) =
        http_get(&format!("{}/keys/{}", server.base_url(), retailer::COUNTER)).expect("keys");
    assert_eq!(code, 200);
    println!("\n2) HTTP /keys/ + /slate/ fetches:");
    for line in String::from_utf8(body).unwrap().lines() {
        let key = percent_decode(line).unwrap();
        let (code, value) =
            http_get(&format!("{}/slate/{}/{line}", server.base_url(), retailer::COUNTER)).unwrap();
        assert_eq!(code, 200);
        println!("   {:<12} {}", String::from_utf8_lossy(&key), String::from_utf8_lossy(&value));
    }
    drop(server);

    // --- 3. Store column scan, after shutdown ---
    let now = engine.now_us();
    let engine = Arc::into_inner(engine).expect("server released engine");
    engine.shutdown();
    println!("\n3) StoreCluster::scan_column (engine is gone; the store remembers):");
    let rows = store.scan_column(retailer::COUNTER, now + 1).expect("scan");
    for (row, value) in &rows {
        println!("   {:<12} {}", String::from_utf8_lossy(row), String::from_utf8_lossy(value));
    }
    assert!(!rows.is_empty());
    println!("\n✓ all three bulk-read paths agree on {} retailers", rows.len());
}
