//! X21 — the instrumented lock shim must be free when the audit is off.
//!
//! PR 8 routes every lock in the workspace through `muppet_core::sync`
//! so the `lock-audit` feature can see them. The deal that migration
//! rests on: in a default (audit-less) build the shim is a transparent
//! newtype — same size, same codegen, zero hot-path cost. This
//! experiment is that deal's release-mode receipt, in two halves:
//!
//! * **micro** — raw `parking_lot` vs shim, same binary, three shapes:
//!   uncontended `Mutex` lock/inc/unlock, uncontended `RwLock` read,
//!   and a two-thread contended `Mutex` counter. Min-of-reps ns/op for
//!   each, with the shim/raw ratio as the headline;
//! * **macro** — the X17 full hot path (hot_topics through the
//!   3-machine in-process engine, resident slates, default shards and
//!   drain batch), now with every queue/cache/membership/outbox lock
//!   running through the shim. Events/s lands next to X17's committed
//!   trajectory for eyeball comparison.
//!
//! CI gates are deterministic only (shared runners make timing
//! unreliable): the shim types are size-identical to the raw types, all
//! counters come out exact, and the engine arm processes every event.
//! The timing ratios are recorded in `BENCH_x21.json` as evidence, not
//! enforced; the committed full-scale run is the proof of record.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use muppet_apps::hot_topics::{self, HotDetector, MinuteCounter, TopicMapper};
use muppet_core::event::Event;
use muppet_core::json::Json;
use muppet_runtime::engine::{Engine, EngineConfig, OperatorSet};
use muppet_runtime::overflow::OverflowPolicy;
use muppet_workloads::tweets::TweetGenerator;

use crate::table::{rate, Table};
use crate::Scale;

const MACHINES: usize = 3;
const WORKERS: usize = 2;
/// Min-of-N reps per micro shape (alternating arms so both see the same
/// scheduler weather).
const REPS: usize = 5;

/// One micro shape measured for one arm: returns ⟨ns/op, final count⟩.
fn time_ops(ops: u64, f: impl Fn(u64) -> u64) -> (f64, u64) {
    let t0 = Instant::now();
    let count = std::hint::black_box(f(ops));
    let ns = t0.elapsed().as_nanos() as f64 / ops as f64;
    (ns, count)
}

/// Two threads hammering one mutex-guarded counter until `ops` total
/// increments land. Generic over the lock via the two closures.
fn contended<L: Sync>(ops: u64, lock: &L, inc: impl Fn(&L) -> u64 + Sync) -> u64 {
    let stop = AtomicBool::new(false);
    let per_thread = ops / 2;
    std::thread::scope(|s| {
        let worker = |_: usize| {
            let stop = &stop;
            let inc = &inc;
            s.spawn(move || {
                let mut last = 0;
                for _ in 0..per_thread {
                    last = inc(lock);
                }
                let _ = stop.load(Ordering::Relaxed);
                last
            })
        };
        let a = worker(0);
        let b = worker(1);
        a.join().expect("no panic").max(b.join().expect("no panic"))
    })
}

struct MicroShape {
    name: &'static str,
    raw_ns: f64,
    shim_ns: f64,
}

impl MicroShape {
    fn ratio(&self) -> f64 {
        self.shim_ns / self.raw_ns.max(1e-9)
    }
}

/// Alternate raw/shim reps of one shape, keeping each arm's minimum.
fn measure(
    name: &'static str,
    ops: u64,
    raw: impl Fn(u64) -> u64,
    shim: impl Fn(u64) -> u64,
) -> MicroShape {
    let mut raw_ns = f64::INFINITY;
    let mut shim_ns = f64::INFINITY;
    for _ in 0..REPS {
        let (r, rc) = time_ops(ops, &raw);
        let (s, sc) = time_ops(ops, &shim);
        assert_eq!(rc, ops, "{name}: raw arm lost increments");
        assert_eq!(sc, ops, "{name}: shim arm lost increments");
        raw_ns = raw_ns.min(r);
        shim_ns = shim_ns.min(s);
    }
    MicroShape { name, raw_ns, shim_ns }
}

fn micro_shapes(scale: Scale) -> Vec<MicroShape> {
    let ops = (20_000_000 / scale.divisor as u64).max(100_000);
    let contended_ops = (4_000_000 / scale.divisor as u64).max(100_000);
    let mut shapes = Vec::new();

    {
        // lint: allow(no-raw-lock) — the raw baseline arm of the shim-overhead contrast
        let raw = parking_lot::Mutex::new(0u64);
        let shim = muppet_core::sync::Mutex::new(0u64);
        shapes.push(measure(
            "mutex lock/inc/unlock",
            ops,
            |n| {
                for _ in 0..n {
                    *raw.lock() += 1;
                }
                let v = *raw.lock();
                *raw.lock() = 0;
                v
            },
            |n| {
                for _ in 0..n {
                    *shim.lock() += 1;
                }
                let v = *shim.lock();
                *shim.lock() = 0;
                v
            },
        ));
    }
    {
        // lint: allow(no-raw-lock) — the raw baseline arm of the shim-overhead contrast
        let raw = parking_lot::RwLock::new(1u64);
        let shim = muppet_core::sync::RwLock::new(1u64);
        shapes.push(measure(
            "rwlock read",
            ops,
            |n| (0..n).map(|_| *raw.read()).sum::<u64>(),
            |n| (0..n).map(|_| *shim.read()).sum::<u64>(),
        ));
    }
    {
        // lint: allow(no-raw-lock) — the raw baseline arm of the shim-overhead contrast
        let raw = parking_lot::Mutex::new(0u64);
        let shim = muppet_core::sync::Mutex::new(0u64);
        shapes.push(measure(
            "mutex contended ×2 threads",
            contended_ops,
            |n| {
                *raw.lock() = 0;
                contended(n, &raw, |l| {
                    let mut g = l.lock();
                    *g += 1;
                    *g
                });
                let v = *raw.lock();
                v
            },
            |n| {
                *shim.lock() = 0;
                contended(n, &shim, |l| {
                    let mut g = l.lock();
                    *g += 1;
                    *g
                });
                let v = *shim.lock();
                v
            },
        ));
    }
    shapes
}

struct EngineOutcome {
    processed: u64,
    elapsed: Duration,
}

/// The X17 full hot path, every lock through the shim (this build).
fn run_engine_arm(events: &[Event]) -> EngineOutcome {
    let cfg = EngineConfig {
        machines: MACHINES,
        workers_per_machine: WORKERS,
        queue_capacity: 1 << 14,
        overflow: OverflowPolicy::SourceThrottle,
        ..EngineConfig::default()
    };
    let ops = OperatorSet::new()
        .mapper(TopicMapper::new())
        .updater(MinuteCounter::new())
        .updater(HotDetector::new(3.0));
    let engine = Engine::start(hot_topics::workflow(), ops, cfg, None).expect("engine start");
    let t0 = Instant::now();
    for ev in events {
        engine.submit(ev.clone()).expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(180)), "engine arm did not drain");
    let elapsed = t0.elapsed();
    let stats = engine.shutdown();
    EngineOutcome { processed: stats.processed, elapsed }
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X21",
        "lock shim overhead: raw parking_lot vs muppet_core::sync, audit off",
        "PR 8 correctness tooling; §4.5 hot-path lock discipline",
    );

    // Deterministic gate 1: the shim is layout-transparent without the
    // `lock-audit` feature — a field would show up here first.
    assert_eq!(
        std::mem::size_of::<muppet_core::sync::Mutex<u64>>(),
        // lint: allow(no-raw-lock) — size-transparency gate needs the raw type
        std::mem::size_of::<parking_lot::Mutex<u64>>(),
        "shim Mutex must add no fields without lock-audit"
    );
    assert_eq!(
        std::mem::size_of::<muppet_core::sync::RwLock<u64>>(),
        // lint: allow(no-raw-lock) — size-transparency gate needs the raw type
        std::mem::size_of::<parking_lot::RwLock<u64>>(),
        "shim RwLock must add no fields without lock-audit"
    );

    let shapes = micro_shapes(scale);
    let n = scale.events(60_000);
    let events: Vec<Event> = TweetGenerator::new(42, 2_000, 40.0).take(hot_topics::TWEET_STREAM, n);
    let _ = run_engine_arm(&events); // warm-up: page cache, arenas, stacks
    let engine = run_engine_arm(&events);
    // Deterministic gate 2: exact work (SourceThrottle is loss-free).
    // `processed` counts per-operator packets: each tweet crosses
    // mapper → minute counter → hot detector, so exactly 3n.
    assert_eq!(engine.processed, 3 * n as u64, "engine arm must process every event");

    let mut table = Table::new(["shape", "raw ns/op", "shim ns/op", "shim/raw"]);
    for s in &shapes {
        table.row([
            s.name.to_string(),
            format!("{:.2}", s.raw_ns),
            format!("{:.2}", s.shim_ns),
            format!("{:.3}×", s.ratio()),
        ]);
    }
    table.print();
    println!(
        "\nengine (X17 full hot path, all locks through the shim): {} events in {:.2?} \
         = {} events/s",
        n,
        engine.elapsed,
        rate(n, engine.elapsed),
    );
    let worst = shapes.iter().map(MicroShape::ratio).fold(0.0f64, f64::max);
    println!(
        "shape check: worst micro shim/raw ratio {worst:.3}× (1.0 = free; timing is \
         informational — the enforced gates are size transparency and exact counts)"
    );

    let doc = Json::obj([
        ("experiment", Json::str("x21_lock_shim")),
        ("events", Json::num(n as f64)),
        (
            "micro",
            Json::Arr(
                shapes
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("shape", Json::str(s.name)),
                            ("raw_ns_per_op", Json::num(s.raw_ns)),
                            ("shim_ns_per_op", Json::num(s.shim_ns)),
                            ("shim_over_raw", Json::num(s.ratio())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "engine",
            Json::obj([
                ("arm", Json::str("x17-full-hot-path-shimmed")),
                ("processed", Json::num(engine.processed as f64)),
                ("wall_ms", Json::num(engine.elapsed.as_secs_f64() * 1e3)),
                ("events_per_sec", Json::num(n as f64 / engine.elapsed.as_secs_f64().max(1e-9))),
            ]),
        ),
    ]);
    std::fs::write("BENCH_x21.json", doc.to_pretty())
        .unwrap_or_else(|e| eprintln!("could not write BENCH_x21.json: {e}"));
    println!("\nwrote BENCH_x21.json");
}
