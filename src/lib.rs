//! # Muppet — MapReduce-style processing of fast data
//!
//! A from-scratch Rust reproduction of *Muppet* (Lam et al., VLDB 2012) and
//! its **MapUpdate** programming model.
//!
//! MapUpdate generalizes MapReduce to unbounded streams:
//!
//! * **Map** functions subscribe to streams and emit zero or more events per
//!   input event — stateless, like MapReduce mappers.
//! * **Update** functions subscribe to streams and, per event key, maintain a
//!   **slate**: a continuously-updated summary of every event with that key
//!   seen so far. Slates are first-class: cached in memory, persisted to a
//!   key-value store, and readable live over HTTP.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`](muppet_core) — the programming model, workflow graphs, and a
//!   deterministic reference executor.
//! * [`obs`](muppet_obs) — the observability substrate: the unified
//!   metrics registry behind `GET /metrics`, the space-saving hot-key
//!   sketch, and leveled structured logging.
//! * [`net`](muppet_net) — the cluster wire: `Transport` trait with
//!   in-process and TCP implementations, binary framing, topology config,
//!   and the §4.3 failure frames (run a real cluster with the `muppetd`
//!   binary).
//! * [`slatestore`](muppet_slatestore) — the Cassandra-like LSM store that
//!   persists slates (memtable/WAL/SSTables/compaction/TTL/quorum).
//! * [`runtime`](muppet_runtime) — the Muppet 1.0 and 2.0 engines: hashed
//!   event routing, slate caches, failure handling, overflow policies, and
//!   the HTTP slate-read service.
//! * [`workloads`](muppet_workloads) — synthetic Twitter/Foursquare-style
//!   feeds used in place of the proprietary streams.
//! * [`apps`](muppet_apps) — the paper's example applications.
//!
//! ## Quickstart
//!
//! ```
//! use muppet::prelude::*;
//!
//! // Count words per key with an updater (cf. Figure 4 of the paper).
//! struct CountUpdater;
//! impl Updater for CountUpdater {
//!     fn name(&self) -> &str { "counter" }
//!     fn update(&self, ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
//!         let n = slate.as_str().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
//!         slate.replace((n + 1).to_string().into_bytes());
//!         let _ = ctx; let _ = event;
//!     }
//! }
//!
//! let mut wf = Workflow::builder("quickstart");
//! wf.external_stream("S1");
//! wf.updater("counter", &["S1"]);
//! let wf = wf.build().unwrap();
//!
//! let mut exec = ReferenceExecutor::new(&wf);
//! exec.register_updater(CountUpdater);
//! exec.push_external("S1", Event::new("S1", 1, Key::from("walmart"), b"checkin".to_vec()));
//! exec.push_external("S1", Event::new("S1", 2, Key::from("walmart"), b"checkin".to_vec()));
//! exec.run_to_completion().unwrap();
//! assert_eq!(exec.slate("counter", &Key::from("walmart")).unwrap().as_str(), Some("2"));
//! ```

pub use muppet_apps as apps;
pub use muppet_core as core;
pub use muppet_net as net;
pub use muppet_obs as obs;
pub use muppet_runtime as runtime;
pub use muppet_slatestore as slatestore;
pub use muppet_workloads as workloads;

/// One-stop imports for building and running MapUpdate applications.
pub mod prelude {
    pub use muppet_core::{
        config::AppConfig,
        event::{Event, Key, StreamId, Timestamp},
        json::Json,
        operator::{Emitter, FnMapper, FnUpdater, Mapper, Updater},
        reference::ReferenceExecutor,
        slate::Slate,
        workflow::{Workflow, WorkflowBuilder},
        Codec, CodecChoice,
    };
    pub use muppet_net::topology::{NodeSpec, Topology};
    pub use muppet_obs::{Level, Logger, Registry};
    pub use muppet_runtime::{
        cache::FlushPolicy,
        engine::{Engine, EngineConfig, EngineKind, EngineStats, OperatorSet, TransportKind},
        http::HttpSlateServer,
        overflow::OverflowPolicy,
    };
    pub use muppet_slatestore::cluster::{Consistency, StoreCluster, StoreConfig};
}
