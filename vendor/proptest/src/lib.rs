//! Offline stand-in for `proptest`: the strategy combinators and macros this
//! workspace's property tests use, implemented as deterministic *generate-only*
//! property testing (no shrinking). Each test runs `ProptestConfig::cases`
//! random cases from a seed derived from the test's name, so failures
//! reproduce run-to-run.
//!
//! Supported surface: `any::<T>()`, integer/float range strategies, a regex
//! subset for `&str` strategies (`[class]{m,n}` atoms and `\PC`),
//! `collection::{vec, hash_set, btree_map}`, `option::of`, tuples, `Just`,
//! `prop_oneof!`, `.prop_map`, `.prop_recursive`, and the `proptest!` /
//! `prop_assert*` macros.

use std::marker::PhantomData;
use std::sync::Arc;

// ---------------------------------------------------------------- RNG

/// Deterministic RNG driving generation (xoshiro256++).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded from an arbitrary label (the test name).
    pub fn from_label(label: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------- Strategy

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: at each of `depth` levels, generation
    /// chooses between the base (leaf) strategy and `branch` applied to the
    /// previous level. `_nodes` / `_items` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _nodes: u32,
        _items: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = BoxedStrategy::new(self);
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let branched = BoxedStrategy::new(branch(cur));
            cur = BoxedStrategy::new(LeafOrBranch { leaf: leaf.clone(), branch: branched });
        }
        cur
    }

    /// Erase the concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(self)
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: 'static> BoxedStrategy<T> {
    /// Erase `strategy`.
    pub fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> BoxedStrategy<T> {
        BoxedStrategy(Arc::new(strategy))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

struct LeafOrBranch<T> {
    leaf: BoxedStrategy<T>,
    branch: BoxedStrategy<T>,
}

impl<T> Strategy for LeafOrBranch<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        if rng.next_u64() & 1 == 0 {
            self.leaf.generate(rng)
        } else {
            self.branch.generate(rng)
        }
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// ---------------------------------------------------------------- any / Arbitrary

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Sample the full domain uniformly.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles over a wide range (proptest's any::<f64> includes
        // specials; our tests only use ranges, this is a safe default).
        let mag = rng.unit_f64() * 1.0e15;
        if rng.next_u64() & 1 == 0 {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy for `T`'s full domain.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `A` (`any::<u64>()` etc.).
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}

// ---------------------------------------------------------------- ranges

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

// ---------------------------------------------------------------- regex-subset strings

/// `&str` patterns act as strategies generating matching strings, for the
/// regex subset `atom*` where atom is `[class]`, `\PC`, or a literal char,
/// each optionally followed by `{n}` / `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.min == atom.max {
                atom.min
            } else {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            };
            for _ in 0..count {
                match &atom.kind {
                    AtomKind::Class(chars) => {
                        out.push(chars[rng.below(chars.len() as u64) as usize]);
                    }
                    AtomKind::Printable => {
                        // \PC — mostly ASCII printable, occasionally wider.
                        let c = match rng.below(20) {
                            0 => 'é',
                            1 => '\u{1F600}',
                            2 => '\u{4e2d}',
                            _ => char::from(b' ' + rng.below(95) as u8),
                        };
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

struct PatternAtom {
    kind: AtomKind,
    min: usize,
    max: usize,
}

enum AtomKind {
    Class(Vec<char>),
    Printable,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let kind = match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1);
                i = next;
                AtomKind::Class(class)
            }
            '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                i += 3;
                AtomKind::Printable
            }
            '\\' => {
                let lit = *chars.get(i + 1).expect("dangling escape in pattern");
                i += 2;
                AtomKind::Class(vec![unescape(lit)])
            }
            c => {
                i += 1;
                AtomKind::Class(vec![c])
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unclosed {n,m}") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom { kind, min, max });
    }
    atoms
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut class = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            unescape(*chars.get(i).expect("dangling escape in class"))
        } else {
            chars[i]
        };
        // Range `a-z` (a '-' not at either end and not escaped).
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).map(|&c| c != ']').unwrap_or(false) {
            let hi = if chars[i + 2] == '\\' {
                i += 1;
                unescape(*chars.get(i + 2).expect("dangling escape in class range"))
            } else {
                chars[i + 2]
            };
            for v in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(v) {
                    class.push(ch);
                }
            }
            i += 3;
        } else {
            class.push(c);
            i += 1;
        }
    }
    assert!(chars.get(i) == Some(&']'), "unclosed character class");
    (class, i + 1)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

// ---------------------------------------------------------------- collections

/// Collection strategies (`proptest::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specifications accepted by collection strategies.
    pub trait SizeRange: Clone {
        /// Pick a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// `Vec<T>` of a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `HashSet<T>` with a target size drawn from `size` (duplicates are
    /// retried a bounded number of times).
    pub struct HashSetStrategy<S, R> {
        elem: S,
        size: R,
    }

    /// Build a [`HashSetStrategy`].
    pub fn hash_set<S, R>(elem: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
        R: SizeRange,
    {
        HashSetStrategy { elem, size }
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
        R: SizeRange,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = std::collections::HashSet::new();
            let mut tries = 0;
            while out.len() < n && tries < 10 * n + 100 {
                out.insert(self.elem.generate(rng));
                tries += 1;
            }
            out
        }
    }

    /// `BTreeMap<K, V>` with a target size drawn from `size`.
    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        value: V,
        size: R,
    }

    /// Build a [`BTreeMapStrategy`].
    pub fn btree_map<K, V, R>(key: K, value: V, size: R) -> BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = std::collections::BTreeMap::new();
            let mut tries = 0;
            while out.len() < n && tries < 10 * n + 100 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

/// Optional-value strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `Some` half the time.
    pub struct OptionStrategy<S>(S);

    /// Build an [`OptionStrategy`].
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------- config & runner

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------- macros

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut __rng = $crate::TestRng::from_label(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert within a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategy arms of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![ $($crate::BoxedStrategy::new($arm)),+ ])
    };
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

// ---------------------------------------------------------------- self-tests

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_are_in_bounds() {
        let mut rng = TestRng::from_label("ranges", 0);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let _: u64 = any::<u64>().generate(&mut rng);
        }
    }

    #[test]
    fn string_patterns_match_their_own_shape() {
        let mut rng = TestRng::from_label("strings", 1);
        for _ in 0..500 {
            let s = "[a-z0-9]{1,16}".generate(&mut rng);
            assert!((1..=16).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()), "{s:?}");
            let one = "[a-e]".generate(&mut rng);
            assert_eq!(one.chars().count(), 1);
            assert!(('a'..='e').contains(&one.chars().next().unwrap()));
            let p = "\\PC{0,64}".generate(&mut rng);
            assert!(p.chars().count() <= 64);
            assert!(p.chars().all(|c| !c.is_control()), "{p:?}");
        }
    }

    #[test]
    fn escaped_class_members_parse() {
        let mut rng = TestRng::from_label("escapes", 2);
        let allowed: Vec<char> = {
            let mut v: Vec<char> = ('a'..='z').chain('A'..='Z').chain('0'..='9').collect();
            v.extend([' ', '_', '-', '"', '\\', '/', '\n', '\t', '\u{e9}', '\u{1F600}']);
            v
        };
        for _ in 0..500 {
            let s = "[a-zA-Z0-9 _\\-\"\\\\/\n\t\u{e9}\u{1F600}]{0,24}".generate(&mut rng);
            assert!(s.chars().all(|c| allowed.contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::from_label("collections", 3);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 0..5).generate(&mut rng);
            assert!(v.len() < 5);
            let exact = crate::collection::vec(any::<u8>(), 7usize).generate(&mut rng);
            assert_eq!(exact.len(), 7);
            let set = crate::collection::hash_set("[a-z]{8}", 1..10).generate(&mut rng);
            assert!(!set.is_empty() && set.len() < 10);
            let map =
                crate::collection::btree_map(any::<u32>(), any::<bool>(), 2..4).generate(&mut rng);
            assert!((2..4).contains(&map.len()));
        }
    }

    #[test]
    fn oneof_map_and_recursive_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(bool),
            Node(Vec<Tree>),
        }
        let strat = prop_oneof![Just(Tree::Leaf(true)), any::<bool>().prop_map(Tree::Leaf)]
            .prop_recursive(3, 8, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_label("recursive", 4);
        for _ in 0..100 {
            let _tree = strat.generate(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, flip in any::<bool>(), s in "[a-c]{2}") {
            prop_assert!(x < 100);
            prop_assert_eq!(s.len(), 2);
            prop_assert_ne!(flip as u64, 2u64);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = |label: &str| {
            let mut rng = TestRng::from_label(label, 9);
            crate::collection::vec(any::<u64>(), 0..20).generate(&mut rng)
        };
        assert_eq!(gen("same"), gen("same"));
        assert_ne!(gen("same"), gen("different"));
    }
}
