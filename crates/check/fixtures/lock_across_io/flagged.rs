// lint-fixture-as: crates/slatestore/src/fixture.rs
//! Fixture: blocking IO while a lock guard is live — each flagged.

pub fn flush(file: &mut std::fs::File, state: &muppet_core::sync::Mutex<Vec<u8>>) {
    use std::io::Write;
    let buf = state.lock();
    file.write_all(&buf).ok(); // finding: `buf` guard live
    file.sync_all().ok(); // finding: `buf` guard still live
}

pub fn try_variant(file: &std::fs::File, state: &muppet_core::sync::Mutex<Vec<u8>>) {
    if let Some(mut buf) = state.try_lock() {
        buf.clear();
        file.sync_data().ok(); // finding: try_lock guard live
    }
}
