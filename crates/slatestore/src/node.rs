//! A single storage node: WAL + memtable + SSTables + compaction.
//!
//! This is the per-machine Cassandra stand-in. Writes land in the commit
//! log and the memtable (cheap, buffered — the §4.2 write-buffering
//! argument); the memtable flushes to an SSTable when it outgrows its
//! budget; size-tiered compaction keeps read amplification bounded; TTLs
//! garbage-collect idle slates at read time and during compaction.
//!
//! All time is caller-supplied logical microseconds, so TTL tests and the
//! X9 experiment control the clock.

use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use muppet_core::{Codec, Json};

use crate::compaction::{merge_tables, pick_tier, CompactionPolicy};
use crate::compress::{compress, decompress};
use crate::device::StorageDevice;
use crate::memtable::Memtable;
use crate::sstable::{SSTable, SSTableWriter};
use crate::types::{Cell, CellKey, StoreResult};
use crate::wal::{replay, WalWriter};

/// Node tuning knobs.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Data directory (SSTables + WAL segments).
    pub dir: PathBuf,
    /// Memtable flush threshold in approximate bytes.
    pub memtable_flush_bytes: usize,
    /// fsync the WAL on every append (durable) or rely on OS buffering.
    pub wal_sync_each: bool,
    /// Compaction policy.
    pub compaction: CompactionPolicy,
    /// Run compaction automatically after each flush.
    pub auto_compact: bool,
    /// During compaction, rewrite JSON-tagged container cells forward to
    /// MBF (the at-rest migration path: old tables drain to the binary
    /// format as they compact, no stop-the-world rewrite).
    pub compact_rewrite_mbf: bool,
    /// Whether stored values are compressed (set by the cluster layer; the
    /// rewrite must decompress before transcoding).
    pub compressed_values: bool,
}

impl NodeConfig {
    /// Defaults tuned for tests: small memtables flush often.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        NodeConfig {
            dir: dir.into(),
            memtable_flush_bytes: 4 * 1024 * 1024,
            wal_sync_each: false,
            compaction: CompactionPolicy::default(),
            auto_compact: true,
            compact_rewrite_mbf: false,
            compressed_values: false,
        }
    }

    /// Set the memtable flush threshold.
    pub fn with_flush_bytes(mut self, bytes: usize) -> Self {
        self.memtable_flush_bytes = bytes;
        self
    }

    /// Enable per-append WAL fsync.
    pub fn with_wal_sync(mut self, sync: bool) -> Self {
        self.wal_sync_each = sync;
        self
    }

    /// Disable automatic compaction (experiments trigger it manually).
    pub fn with_auto_compact(mut self, auto: bool) -> Self {
        self.auto_compact = auto;
        self
    }

    /// Enable the compaction-time JSON→MBF rewrite. `compressed` must
    /// match how the caller stores values so the rewrite can transcode.
    pub fn with_mbf_rewrite(mut self, rewrite: bool, compressed: bool) -> Self {
        self.compact_rewrite_mbf = rewrite;
        self.compressed_values = compressed;
        self
    }
}

/// Cumulative node statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Cells written (including tombstones).
    pub puts: u64,
    /// Point reads served.
    pub gets: u64,
    /// Reads answered from the memtable.
    pub memtable_hits: u64,
    /// Reads answered from an SSTable.
    pub sstable_hits: u64,
    /// Reads finding nothing (or only expired/tombstoned cells).
    pub misses: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Cells reclaimed by TTL expiry or tombstone GC during compaction.
    pub gc_cells: u64,
    /// JSON cells transcoded to MBF during compaction (rewrite-forward).
    pub rewritten_cells: u64,
}

/// One LSM storage node.
pub struct StoreNode {
    cfg: NodeConfig,
    device: Arc<StorageDevice>,
    wal: WalWriter,
    wal_gen: u64,
    memtable: Memtable,
    /// Open tables, any order; reads consult all (bloom-filtered) and take
    /// the max write_ts, so ordering is not load-bearing.
    tables: Vec<SSTable>,
    next_table_id: u64,
    stats: NodeStats,
    /// WAL fsyncs from already-rotated segments (see `wal_sync_count`).
    rotated_wal_syncs: u64,
}

impl std::fmt::Debug for StoreNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreNode")
            .field("dir", &self.cfg.dir)
            .field("memtable_cells", &self.memtable.len())
            .field("tables", &self.tables.len())
            .finish()
    }
}

impl StoreNode {
    /// Open (or create) a node at `cfg.dir`, recovering any existing
    /// SSTables and replaying WAL segments into the memtable.
    pub fn open(cfg: NodeConfig, device: Arc<StorageDevice>) -> StoreResult<StoreNode> {
        std::fs::create_dir_all(&cfg.dir)?;
        // Load SSTables (sst-<id>.sst) and find the next ids.
        let mut table_ids: Vec<u64> = Vec::new();
        let mut wal_gens: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&cfg.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name.strip_prefix("sst-").and_then(|s| s.strip_suffix(".sst")) {
                if let Ok(id) = id.parse() {
                    table_ids.push(id);
                }
            } else if let Some(gen) = name.strip_prefix("wal-").and_then(|s| s.strip_suffix(".log"))
            {
                if let Ok(gen) = gen.parse() {
                    wal_gens.push(gen);
                }
            }
        }
        table_ids.sort_unstable();
        wal_gens.sort_unstable();
        let mut tables = Vec::with_capacity(table_ids.len());
        for id in &table_ids {
            tables.push(SSTable::open(cfg.dir.join(format!("sst-{id}.sst")), Arc::clone(&device))?);
        }
        // Replay WAL segments oldest-first so later writes win in the
        // memtable.
        let mut memtable = Memtable::new();
        for gen in &wal_gens {
            let replayed = replay(cfg.dir.join(format!("wal-{gen}.log")))?;
            for (key, cell) in replayed.records {
                memtable.put(key, cell);
            }
        }
        let wal_gen = wal_gens.last().map_or(0, |g| g + 1);
        let wal = WalWriter::create(cfg.dir.join(format!("wal-{wal_gen}.log")), cfg.wal_sync_each)?;
        // Old segments stay on disk until the recovered memtable flushes.
        let next_table_id = table_ids.last().map_or(0, |id| id + 1);
        Ok(StoreNode {
            cfg,
            device,
            wal,
            wal_gen,
            memtable,
            tables,
            next_table_id,
            stats: NodeStats::default(),
            rotated_wal_syncs: 0,
        })
    }

    /// Write a JSON/raw value. `now` supplies the write timestamp.
    pub fn put(
        &mut self,
        key: CellKey,
        value: impl Into<Bytes>,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> StoreResult<()> {
        self.put_tagged(key, value, Codec::Json, ttl_secs, now)
    }

    /// Write a value tagged with its payload codec. `now` supplies the
    /// write timestamp.
    pub fn put_tagged(
        &mut self,
        key: CellKey,
        value: impl Into<Bytes>,
        codec: Codec,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> StoreResult<()> {
        let cell = Cell::live_in(value, codec, now, ttl_secs);
        self.wal.append(&key, &cell)?;
        self.memtable.put(key, cell);
        self.stats.puts += 1;
        self.maybe_flush(now)
    }

    /// Write a run of values as one group commit: every record enters the
    /// WAL via [`WalWriter::append_many`] (one fsync per batch under
    /// `wal_sync_each`, not one per record) and the memtable in order.
    /// The memtable flush check runs once, after the batch.
    pub fn put_many(
        &mut self,
        entries: &[(CellKey, Bytes, Codec, Option<u64>)],
        now: u64,
    ) -> StoreResult<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let cells: Vec<(CellKey, Cell)> = entries
            .iter()
            .map(|(key, value, codec, ttl_secs)| {
                (key.clone(), Cell::live_in(value.clone(), *codec, now, *ttl_secs))
            })
            .collect();
        self.wal.append_many(&cells)?;
        for (key, cell) in cells {
            self.memtable.put(key, cell);
        }
        self.stats.puts += entries.len() as u64;
        self.maybe_flush(now)
    }

    /// Delete a value (writes a tombstone).
    pub fn delete(&mut self, key: CellKey, now: u64) -> StoreResult<()> {
        let cell = Cell::tombstone(now);
        self.wal.append(&key, &cell)?;
        self.memtable.put(key, cell);
        self.stats.puts += 1;
        self.maybe_flush(now)
    }

    /// Point read: newest visible cell across memtable and all tables.
    /// Returns the raw stored bytes (the store does not understand slate
    /// compression; that is the cache layer's concern).
    pub fn get(&mut self, key: &CellKey, now: u64) -> StoreResult<Option<Bytes>> {
        Ok(self.get_with_ts(key, now)?.map(|(v, _, _)| v))
    }

    /// Point read returning the value with its payload codec tag.
    pub fn get_tagged(&mut self, key: &CellKey, now: u64) -> StoreResult<Option<(Bytes, Codec)>> {
        Ok(self.get_with_ts(key, now)?.map(|(v, _, codec)| (v, codec)))
    }

    /// Point read returning `(value, write_ts, codec)` — the cluster layer
    /// needs the timestamp to resolve divergent replicas and run read
    /// repair, and the codec tag to interpret (and faithfully repair) the
    /// payload.
    pub fn get_with_ts(
        &mut self,
        key: &CellKey,
        now: u64,
    ) -> StoreResult<Option<(Bytes, u64, Codec)>> {
        self.stats.gets += 1;
        let mut best: Option<(Cell, bool)> = // (cell, from_memtable)
            self.memtable.get(key).map(|c| (c.clone(), true));
        for table in &self.tables {
            if let Some(cell) = table.get(key)? {
                let newer = match &best {
                    Some((b, _)) => cell.write_ts > b.write_ts,
                    None => true,
                };
                if newer {
                    best = Some((cell, false));
                }
            }
        }
        match best {
            Some((cell, from_mem)) if cell.visible(now) => {
                if from_mem {
                    self.stats.memtable_hits += 1;
                } else {
                    self.stats.sstable_hits += 1;
                }
                Ok(Some((cell.value, cell.write_ts, cell.codec)))
            }
            _ => {
                self.stats.misses += 1;
                Ok(None)
            }
        }
    }

    fn maybe_flush(&mut self, now: u64) -> StoreResult<()> {
        if self.memtable.approx_bytes() >= self.cfg.memtable_flush_bytes {
            self.flush(now)?;
        }
        Ok(())
    }

    /// Flush the memtable to a new SSTable and rotate the WAL.
    pub fn flush(&mut self, now: u64) -> StoreResult<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let cells = self.memtable.drain_sorted();
        let id = self.next_table_id;
        self.next_table_id += 1;
        let path = self.cfg.dir.join(format!("sst-{id}.sst"));
        let mut w = SSTableWriter::create(&path, Arc::clone(&self.device), cells.len())?;
        for (key, cell) in &cells {
            w.add(key, cell)?;
        }
        self.tables.push(w.finish()?);
        self.stats.flushes += 1;
        // Rotate WAL: new segment, then delete all older segments (their
        // contents are now durable in the SSTable).
        let old_gen = self.wal_gen;
        self.rotated_wal_syncs += self.wal.sync_count();
        self.wal_gen += 1;
        self.wal = WalWriter::create(
            self.cfg.dir.join(format!("wal-{}.log", self.wal_gen)),
            self.cfg.wal_sync_each,
        )?;
        for gen in 0..=old_gen {
            let _ = std::fs::remove_file(self.cfg.dir.join(format!("wal-{gen}.log")));
        }
        if self.cfg.auto_compact {
            self.maybe_compact(now)?;
        }
        Ok(())
    }

    /// Run one round of size-tiered compaction if a tier is ripe.
    /// Returns true if a compaction ran.
    pub fn maybe_compact(&mut self, now: u64) -> StoreResult<bool> {
        let sizes: Vec<u64> = self.tables.iter().map(|t| t.file_len()).collect();
        let Some(mut picked) = pick_tier(&sizes, &self.cfg.compaction) else {
            return Ok(false);
        };
        // Newest-first for the merger's tie-break: higher index = newer
        // flush in our `tables` vec.
        picked.sort_unstable_by(|a, b| b.cmp(a));
        let full = picked.len() == self.tables.len();
        let inputs: Vec<&SSTable> = picked.iter().map(|&i| &self.tables[i]).collect();
        let input_cells: u64 = inputs.iter().map(|t| t.entry_count()).sum();
        let mut merged = merge_tables(&inputs, now, full)?;
        self.stats.gc_cells += input_cells.saturating_sub(merged.len() as u64);
        if self.cfg.compact_rewrite_mbf {
            for (_, cell) in &mut merged {
                if self.rewrite_cell_to_mbf(cell) {
                    self.stats.rewritten_cells += 1;
                }
            }
        }

        let id = self.next_table_id;
        self.next_table_id += 1;
        let path = self.cfg.dir.join(format!("sst-{id}.sst"));
        let mut w = SSTableWriter::create(&path, Arc::clone(&self.device), merged.len())?;
        for (key, cell) in &merged {
            w.add(key, cell)?;
        }
        let new_table = w.finish()?;
        // Remove inputs (descending indices keep positions valid).
        for &i in &picked {
            let old = self.tables.remove(i);
            let _ = std::fs::remove_file(old.path());
        }
        self.tables.push(new_table);
        self.stats.compactions += 1;
        Ok(true)
    }

    /// Transcode one JSON-tagged container cell to MBF in place (the
    /// at-rest migration: tables drain forward as they compact). Counter
    /// text, non-container JSON, tombstones, and anything that fails to
    /// parse are left untouched. Returns true when the cell was rewritten.
    fn rewrite_cell_to_mbf(&self, cell: &mut Cell) -> bool {
        if cell.tombstone || cell.codec == Codec::Mbf || cell.value.is_empty() {
            return false;
        }
        let raw: Vec<u8> = if self.cfg.compressed_values {
            match decompress(&cell.value) {
                Ok(v) => v,
                Err(_) => return false,
            }
        } else {
            cell.value.to_vec()
        };
        // Only container-shaped JSON migrates; raw text payloads must stay
        // byte-identical (they are not JSON documents).
        if !matches!(raw.first(), Some(b'{') | Some(b'[')) {
            return false;
        }
        let Ok(doc) = Json::parse_bytes(&raw) else { return false };
        let Ok(mbf) = doc.to_mbf() else { return false };
        cell.value =
            if self.cfg.compressed_values { Bytes::from(compress(&mbf)) } else { Bytes::from(mbf) };
        cell.codec = Codec::Mbf;
        true
    }

    /// All visible cells at `now` (newest version per key), sorted by key.
    /// The §5 "large-volume row reads from the durable key-value store" —
    /// bulk dumps for later Hadoop-style processing. Expensive: scans
    /// every table.
    pub fn scan_all(&self, now: u64) -> StoreResult<Vec<(CellKey, Bytes)>> {
        use std::collections::BTreeMap;
        let mut newest: BTreeMap<CellKey, Cell> = BTreeMap::new();
        for (k, c) in self.memtable.iter() {
            newest.insert(k.clone(), c.clone());
        }
        for table in &self.tables {
            for (k, c) in table.scan()? {
                match newest.get(&k) {
                    Some(existing) if existing.write_ts >= c.write_ts => {}
                    _ => {
                        newest.insert(k, c);
                    }
                }
            }
        }
        Ok(newest.into_iter().filter(|(_, c)| c.visible(now)).map(|(k, c)| (k, c.value)).collect())
    }

    /// Count cells visible at `now` (newest version per key), for the TTL
    /// growth experiment. Expensive: scans everything.
    pub fn live_cells(&self, now: u64) -> StoreResult<usize> {
        Ok(self.scan_all(now)?.len())
    }

    /// Total bytes across SSTable files.
    pub fn disk_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.file_len()).sum()
    }

    /// Number of open SSTables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Cells currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Node statistics.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// The device this node charges I/O to.
    pub fn device(&self) -> &Arc<StorageDevice> {
        &self.device
    }

    /// Flush WAL buffers to the OS (called by the background flusher).
    pub fn sync_wal(&mut self) -> StoreResult<()> {
        self.wal.flush()
    }

    /// fsyncs issued by WAL appends, cumulative across segment rotations
    /// (the group-commit observable for benchmarks).
    pub fn wal_sync_count(&self) -> u64 {
        self.rotated_wal_syncs + self.wal.sync_count()
    }

    /// Simulate a process crash: all in-memory state vanishes; only what
    /// reached the WAL and SSTables survives. Returns the recovered node.
    pub fn crash_and_recover(mut self) -> StoreResult<StoreNode> {
        // Ensure buffered WAL frames reach the file (the OS survives a
        // *process* crash; whole-machine power loss would need
        // wal_sync_each=true).
        self.wal.flush()?;
        let cfg = self.cfg.clone();
        let device = Arc::clone(&self.device);
        drop(self);
        StoreNode::open(cfg, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;
    use crate::util::TempDir;

    fn node(dir: &TempDir) -> StoreNode {
        StoreNode::open(
            NodeConfig::new(dir.path()).with_flush_bytes(16 * 1024),
            Arc::new(StorageDevice::new(DeviceProfile::NULL)),
        )
        .unwrap()
    }

    fn key(row: &str) -> CellKey {
        CellKey::new(row.as_bytes(), "U1")
    }

    #[test]
    fn put_get_delete_cycle() {
        let dir = TempDir::new("node").unwrap();
        let mut n = node(&dir);
        n.put(key("a"), "v1", None, 1).unwrap();
        assert_eq!(n.get(&key("a"), 2).unwrap().unwrap().as_ref(), b"v1");
        n.put(key("a"), "v2", None, 3).unwrap();
        assert_eq!(n.get(&key("a"), 4).unwrap().unwrap().as_ref(), b"v2");
        n.delete(key("a"), 5).unwrap();
        assert_eq!(n.get(&key("a"), 6).unwrap(), None);
        assert_eq!(n.get(&key("never"), 6).unwrap(), None);
        let s = n.stats();
        assert_eq!(s.puts, 3);
        assert_eq!(s.gets, 4);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn put_many_group_commits_and_reads_back() {
        let dir = TempDir::new("node").unwrap();
        let mut n = StoreNode::open(
            NodeConfig::new(dir.path()).with_flush_bytes(usize::MAX).with_wal_sync(true),
            Arc::new(StorageDevice::new(DeviceProfile::NULL)),
        )
        .unwrap();
        let entries: Vec<(CellKey, Bytes, Codec, Option<u64>)> = (0..50)
            .map(|i| (key(&format!("b{i}")), Bytes::from(format!("v{i}")), Codec::Json, None))
            .collect();
        n.put_many(&entries, 7).unwrap();
        assert_eq!(n.wal_sync_count(), 1, "50 records, one group-commit fsync");
        assert_eq!(n.stats().puts, 50);
        for i in 0..50 {
            assert_eq!(
                n.get(&key(&format!("b{i}")), 8).unwrap().unwrap().as_ref(),
                format!("v{i}").as_bytes()
            );
        }
        // Batched writes survive a crash exactly like per-record writes.
        let mut recovered = n.crash_and_recover().unwrap();
        assert_eq!(recovered.get(&key("b42"), 10).unwrap().unwrap().as_ref(), b"v42");
    }

    #[test]
    fn reads_span_memtable_and_sstables() {
        let dir = TempDir::new("node").unwrap();
        let mut n = node(&dir);
        for i in 0..500 {
            n.put(key(&format!("k{i:04}")), format!("v{i}"), None, i).unwrap();
        }
        n.flush(1000).unwrap();
        assert!(n.table_count() >= 1);
        assert_eq!(n.memtable_len(), 0);
        // From SSTable:
        assert_eq!(n.get(&key("k0123"), 1000).unwrap().unwrap().as_ref(), b"v123");
        // New write goes to memtable and shadows the flushed value:
        n.put(key("k0123"), "newer", None, 2000).unwrap();
        assert_eq!(n.get(&key("k0123"), 2001).unwrap().unwrap().as_ref(), b"newer");
        let s = n.stats();
        assert!(s.sstable_hits >= 1);
        assert!(s.memtable_hits >= 1);
    }

    #[test]
    fn newest_version_wins_across_many_flushes() {
        let dir = TempDir::new("node").unwrap();
        let mut n = node(&dir);
        for round in 0u64..5 {
            n.put(key("hot"), format!("v{round}"), None, round * 10).unwrap();
            n.flush(round * 10 + 1).unwrap();
        }
        assert_eq!(n.get(&key("hot"), 100).unwrap().unwrap().as_ref(), b"v4");
    }

    #[test]
    fn ttl_expiry_at_read_time() {
        let dir = TempDir::new("node").unwrap();
        let mut n = node(&dir);
        n.put(key("ephemeral"), "v", Some(10), 1_000_000).unwrap();
        assert!(n.get(&key("ephemeral"), 5_000_000).unwrap().is_some());
        assert!(n.get(&key("ephemeral"), 12_000_001).unwrap().is_none(), "10s TTL lapsed");
    }

    #[test]
    fn crash_recovery_replays_wal() {
        let dir = TempDir::new("node").unwrap();
        let mut n = node(&dir);
        for i in 0..50 {
            n.put(key(&format!("k{i}")), format!("v{i}"), None, i).unwrap();
        }
        // No flush: everything is in memtable + WAL.
        assert_eq!(n.table_count(), 0);
        let mut recovered = n.crash_and_recover().unwrap();
        for i in 0..50 {
            assert_eq!(
                recovered.get(&key(&format!("k{i}")), 100).unwrap().unwrap().as_ref(),
                format!("v{i}").as_bytes(),
                "k{i} must survive the crash via WAL replay"
            );
        }
    }

    #[test]
    fn crash_recovery_after_flush_uses_sstables_and_new_wal() {
        let dir = TempDir::new("node").unwrap();
        let mut n = node(&dir);
        n.put(key("flushed"), "old", None, 1).unwrap();
        n.flush(2).unwrap();
        n.put(key("walonly"), "fresh", None, 3).unwrap();
        let mut recovered = n.crash_and_recover().unwrap();
        assert_eq!(recovered.get(&key("flushed"), 10).unwrap().unwrap().as_ref(), b"old");
        assert_eq!(recovered.get(&key("walonly"), 10).unwrap().unwrap().as_ref(), b"fresh");
    }

    #[test]
    fn deletions_survive_recovery() {
        let dir = TempDir::new("node").unwrap();
        let mut n = node(&dir);
        n.put(key("gone"), "v", None, 1).unwrap();
        n.flush(2).unwrap();
        n.delete(key("gone"), 3).unwrap();
        let mut recovered = n.crash_and_recover().unwrap();
        assert_eq!(
            recovered.get(&key("gone"), 10).unwrap(),
            None,
            "tombstone in WAL masks SSTable"
        );
    }

    #[test]
    fn memtable_overflow_triggers_flush() {
        let dir = TempDir::new("node").unwrap();
        let mut n = StoreNode::open(
            NodeConfig::new(dir.path()).with_flush_bytes(2048),
            Arc::new(StorageDevice::default()),
        )
        .unwrap();
        for i in 0..200 {
            n.put(key(&format!("k{i:05}")), vec![b'x'; 64], None, i).unwrap();
        }
        assert!(n.stats().flushes > 0, "small threshold must force flushes");
        assert!(n.table_count() > 0);
        // All data still readable.
        assert_eq!(
            n.get(&key("k00000"), 1000).unwrap().unwrap().as_ref(),
            vec![b'x'; 64].as_slice()
        );
    }

    #[test]
    fn compaction_reduces_table_count_and_gcs() {
        let dir = TempDir::new("node").unwrap();
        let mut n = StoreNode::open(
            NodeConfig::new(dir.path()).with_flush_bytes(usize::MAX).with_auto_compact(false),
            Arc::new(StorageDevice::default()),
        )
        .unwrap();
        // 5 flushes of overlapping keys.
        for round in 0u64..5 {
            for i in 0..50 {
                n.put(key(&format!("k{i:03}")), format!("r{round}-v{i}"), None, round * 100 + i)
                    .unwrap();
            }
            n.flush(round * 100 + 99).unwrap();
        }
        assert_eq!(n.table_count(), 5);
        let compacted = n.maybe_compact(1_000).unwrap();
        assert!(compacted);
        assert!(n.table_count() < 5);
        assert!(n.stats().gc_cells > 0, "older versions reclaimed");
        // Data intact, newest version visible.
        assert_eq!(n.get(&key("k001"), 10_000).unwrap().unwrap().as_ref(), b"r4-v1");
    }

    #[test]
    fn live_cells_tracks_ttl_gc() {
        let dir = TempDir::new("node").unwrap();
        let mut n = node(&dir);
        for i in 0..10 {
            n.put(key(&format!("ttl{i}")), "v", Some(5), 1_000_000).unwrap();
        }
        for i in 0..7 {
            n.put(key(&format!("keep{i}")), "v", None, 1_000_000).unwrap();
        }
        assert_eq!(n.live_cells(2_000_000).unwrap(), 17);
        assert_eq!(n.live_cells(7_000_001).unwrap(), 7, "TTL'd cells die");
    }

    #[test]
    fn wal_segments_are_garbage_collected_after_flush() {
        let dir = TempDir::new("node").unwrap();
        let mut n = node(&dir);
        n.put(key("a"), "v", None, 1).unwrap();
        n.flush(2).unwrap();
        let wal_files = std::fs::read_dir(dir.path())
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().starts_with("wal-"))
            .count();
        assert_eq!(wal_files, 1, "only the active segment remains");
    }

    #[test]
    fn codec_tag_survives_wal_replay_and_sstable_flush() {
        let dir = TempDir::new("node").unwrap();
        let mut n = node(&dir);
        let mbf = Json::obj([("n", Json::num(1))]).to_mbf().unwrap();
        n.put_tagged(key("bin"), mbf.clone(), Codec::Mbf, None, 1).unwrap();
        n.put(key("txt"), "12", None, 1).unwrap();
        // Through WAL replay:
        let mut n = n.crash_and_recover().unwrap();
        assert_eq!(
            n.get_tagged(&key("bin"), 2).unwrap().unwrap(),
            (Bytes::from(mbf.clone()), Codec::Mbf)
        );
        assert_eq!(n.get_tagged(&key("txt"), 2).unwrap().unwrap().1, Codec::Json);
        // Through an SSTable flush:
        n.flush(3).unwrap();
        assert_eq!(n.memtable_len(), 0);
        assert_eq!(n.get_tagged(&key("bin"), 4).unwrap().unwrap(), (Bytes::from(mbf), Codec::Mbf));
    }

    #[test]
    fn compaction_rewrites_json_containers_to_mbf() {
        let dir = TempDir::new("node").unwrap();
        let mut n = StoreNode::open(
            NodeConfig::new(dir.path())
                .with_flush_bytes(usize::MAX)
                .with_auto_compact(false)
                .with_mbf_rewrite(true, false),
            Arc::new(StorageDevice::new(DeviceProfile::NULL)),
        )
        .unwrap();
        // 4 flushes so a tier is ripe; each has a JSON doc, counter text,
        // and an already-MBF cell.
        let doc = Json::obj([("count", Json::num(5))]);
        for round in 0u64..4 {
            n.put(key("doc"), doc.to_compact(), None, round * 10 + 1).unwrap();
            n.put(key("counter"), "17", None, round * 10 + 2).unwrap();
            n.put_tagged(key("bin"), doc.to_mbf().unwrap(), Codec::Mbf, None, round * 10 + 3)
                .unwrap();
            n.flush(round * 10 + 9).unwrap();
        }
        assert!(n.maybe_compact(1_000).unwrap());
        assert!(n.stats().rewritten_cells >= 1, "the JSON doc cell migrates");
        // The doc is now MBF-tagged and decodes to the same document.
        let (value, codec) = n.get_tagged(&key("doc"), 2_000).unwrap().unwrap();
        assert_eq!(codec, Codec::Mbf);
        assert_eq!(Json::from_mbf(&value).unwrap(), doc);
        // Counter text is untouched.
        let (value, codec) = n.get_tagged(&key("counter"), 2_000).unwrap().unwrap();
        assert_eq!((value.as_ref(), codec), (&b"17"[..], Codec::Json));
    }

    #[test]
    fn empty_flush_is_a_noop() {
        let dir = TempDir::new("node").unwrap();
        let mut n = node(&dir);
        n.flush(1).unwrap();
        assert_eq!(n.table_count(), 0);
        assert_eq!(n.stats().flushes, 0);
    }
}
