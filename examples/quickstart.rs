//! Quickstart: the smallest useful MapUpdate application.
//!
//! Counts words flowing through a stream, first on the deterministic
//! reference executor, then on a live Muppet 2.0 cluster, and shows they
//! agree. Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use muppet::prelude::*;

fn build_workflow() -> Workflow {
    // S1 (external) → "splitter" mapper → S2 → "word-count" updater.
    let mut b = Workflow::builder("word-count");
    b.external_stream("S1");
    b.mapper_publishing("splitter", &["S1"], &["S2"]);
    b.updater("word-count", &["S2"]);
    b.build().expect("workflow is valid")
}

fn splitter() -> FnMapper<impl Fn(&mut dyn Emitter, &Event) + Send + Sync> {
    FnMapper::new("splitter", |ctx: &mut dyn Emitter, ev: &Event| {
        // One event per word, keyed by the word (MapReduce's hello world).
        if let Some(text) = ev.value_str() {
            for word in text.split_whitespace() {
                ctx.publish("S2", Key::from(word.to_lowercase()), Vec::new());
            }
        }
    })
}

fn counter() -> FnUpdater<impl Fn(&mut dyn Emitter, &Event, &mut Slate) + Send + Sync> {
    FnUpdater::new("word-count", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
        // The slate is this word's count — Figure 4's pattern.
        slate.incr_counter(1);
    })
}

const LINES: &[&str] =
    &["to be or not to be", "that is the question", "to stream or not to stream"];

fn main() {
    // --- 1. The deterministic reference executor (exact semantics) ---
    let wf = build_workflow();
    let mut exec = ReferenceExecutor::new(&wf);
    exec.register_mapper(splitter());
    exec.register_updater(counter());
    for (i, line) in LINES.iter().enumerate() {
        exec.push_external("S1", Event::new("S1", i as u64, Key::from("line"), *line));
    }
    exec.run_to_completion().expect("reference run succeeds");

    println!("reference executor counts:");
    let mut reference = Vec::new();
    for (key, slate) in exec.slates_of("word-count") {
        reference.push((key.as_str().unwrap().to_string(), slate.counter()));
        println!("  {:<10} {}", key.as_str().unwrap(), slate.counter());
    }

    // --- 2. The same application on a Muppet 2.0 cluster ---
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 2,
        workers_per_machine: 2,
        ..EngineConfig::default()
    };
    let engine = Engine::start(
        build_workflow(),
        OperatorSet::new().mapper(splitter()).updater(counter()),
        cfg,
        None, // no durable store for the quickstart
    )
    .expect("engine starts");
    for (i, line) in LINES.iter().enumerate() {
        engine.submit(Event::new("S1", i as u64, Key::from("line"), *line)).expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(10)), "cluster drains");

    println!("\nmuppet 2.0 cluster counts (2 machines × 2 workers):");
    let mut mismatches = 0;
    for (word, expected) in &reference {
        let got = engine
            .read_slate("word-count", &Key::from(word.as_str()))
            .map(|b| String::from_utf8(b).unwrap().parse::<u64>().unwrap())
            .unwrap_or(0);
        println!("  {word:<10} {got}");
        if got != *expected {
            mismatches += 1;
        }
    }
    let stats = engine.shutdown();
    println!(
        "\nengine stats: {} submitted, {} operator calls, p99 latency {}µs",
        stats.submitted, stats.processed, stats.latency.p99_us
    );
    assert_eq!(mismatches, 0, "distributed counts must match the reference");
    println!("✓ distributed execution matches the reference semantics");
}
