//! Durability integration: slates persist to the replicated store, survive
//! engine restarts and store-node crashes, expire by TTL, and honor the
//! quorum and flush knobs of §4.2 end to end.

use std::sync::Arc;
use std::time::Duration;

use muppet::apps::retailer::{self, Counter, RetailerMapper};
use muppet::prelude::*;
use muppet::slatestore::device::DeviceProfile;
use muppet::slatestore::types::CellKey;
use muppet::slatestore::util::TempDir;
use muppet::workloads::checkins::CheckinGenerator;

fn engine_with_store(store: &Arc<StoreCluster>, flush: FlushPolicy) -> Engine {
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 2,
        workers_per_machine: 2,
        flush,
        overflow: OverflowPolicy::SourceThrottle,
        ..EngineConfig::default()
    };
    Engine::start(
        retailer::workflow(),
        OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new()),
        cfg,
        Some(Arc::clone(store)),
    )
    .unwrap()
}

#[test]
fn counts_survive_an_engine_restart() {
    let dir = TempDir::new("restart").unwrap();
    let store = Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).unwrap());
    let mut gen = CheckinGenerator::new(7, 300, 1000.0);
    let first = gen.take(retailer::CHECKIN_STREAM, 3000);
    let second = gen.take(retailer::CHECKIN_STREAM, 3000);
    let mut all = first.clone();
    all.extend(second.iter().cloned());
    let expected = CheckinGenerator::expected_retailer_counts(&all);

    // First engine lifetime.
    let engine = engine_with_store(&store, FlushPolicy::IntervalMs(10));
    for ev in first {
        engine.submit(ev).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(30)));
    engine.shutdown(); // graceful: flushes all dirty slates

    // Second engine lifetime resumes from the store (§4.2: "persistent
    // slates help resuming, restarting, or recovering").
    let engine = engine_with_store(&store, FlushPolicy::IntervalMs(10));
    for ev in second {
        engine.submit(ev).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(30)));
    for (retailer_name, expect) in &expected {
        let got = engine
            .read_slate(retailer::COUNTER, &Key::from(retailer_name.as_str()))
            .map(|b| String::from_utf8(b).unwrap().parse::<u64>().unwrap())
            .unwrap_or(0);
        assert_eq!(got, *expect, "{retailer_name} across restart");
    }
    engine.shutdown();
}

#[test]
fn write_through_slates_survive_store_node_failure() {
    let dir = TempDir::new("node-fail").unwrap();
    let store = Arc::new(
        StoreCluster::open(
            dir.path(),
            StoreConfig {
                nodes: 3,
                replication: 3,
                consistency: Consistency::Quorum,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let engine = engine_with_store(&store, FlushPolicy::WriteThrough);
    for i in 0..100 {
        let v = Json::obj([
            ("user", Json::str("u")),
            ("venue", Json::obj([("name", Json::str("Walmart Supercenter"))])),
        ]);
        engine
            .submit(Event::new(
                retailer::CHECKIN_STREAM,
                i,
                Key::from("u"),
                v.to_compact().into_bytes(),
            ))
            .unwrap();
    }
    assert!(engine.drain(Duration::from_secs(30)));
    let now = engine.now_us();
    engine.shutdown();

    // One store replica dies; quorum reads still serve the value.
    store.node_down(0);
    let stored = store
        .get_with(&CellKey::new("Walmart", retailer::COUNTER), now + 1, Consistency::Quorum)
        .unwrap()
        .expect("value survives one replica failure");
    assert_eq!(stored.as_ref(), b"100");
}

#[test]
fn ttl_expires_idle_slates_in_the_store() {
    let dir = TempDir::new("ttl").unwrap();
    let store = Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).unwrap());
    let key = CellKey::new("idle-user", "U-profile");
    store.put(&key, b"profile-data", Some(10), 1_000_000).unwrap();
    assert!(store.get(&key, 5_000_000).unwrap().is_some(), "within TTL");
    assert!(store.get(&key, 12_000_001).unwrap().is_none(), "TTL lapsed (§4.2)");
    // A key written without TTL lives arbitrarily long.
    let forever = CellKey::new("active-user", "U-profile");
    store.put(&forever, b"keep", None, 1_000_000).unwrap();
    assert!(store.get(&forever, u64::MAX / 2).unwrap().is_some());
}

#[test]
fn store_cluster_recovers_all_writes_after_process_crash() {
    // Cluster-level crash recovery: the node WAL/SSTables restore state.
    let dir = TempDir::new("crash").unwrap();
    {
        let store = StoreCluster::open(
            dir.path(),
            StoreConfig { nodes: 2, replication: 2, ..Default::default() },
        )
        .unwrap();
        for i in 0..200u64 {
            store
                .put(&CellKey::new(format!("k{i}"), "U"), format!("v{i}").as_bytes(), None, i)
                .unwrap();
        }
        store.flush_all(1000).unwrap();
        // Drop without any explicit shutdown: process "crash".
    }
    let store = StoreCluster::open(
        dir.path(),
        StoreConfig { nodes: 2, replication: 2, ..Default::default() },
    )
    .unwrap();
    for i in 0..200u64 {
        let got = store.get(&CellKey::new(format!("k{i}"), "U"), 10_000).unwrap().unwrap();
        assert_eq!(got.as_ref(), format!("v{i}").as_bytes());
    }
}

#[test]
fn killed_machine_loses_only_unflushed_increments() {
    // §4.3: "whatever changes that it has made to the slates and that have
    // not yet been flushed to the key-value store are lost."
    let dir = TempDir::new("machine-loss").unwrap();
    let store = Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).unwrap());
    // Huge flush interval: nothing flushes during the run.
    let engine = engine_with_store(&store, FlushPolicy::IntervalMs(120_000));
    let mut gen = CheckinGenerator::new(9, 100, 1000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, 2000);
    let expected = CheckinGenerator::expected_retailer_counts(&events);
    for ev in events {
        engine.submit(ev).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(30)));
    // Kill machine 0: its cached dirty slates are gone.
    engine.kill_machine(0);
    let now = engine.now_us();
    let stats = engine.shutdown(); // flushes only the surviving machine
    let _ = stats;
    // Whatever reached the store is a (possibly partial) subset per
    // retailer; never more than the true count.
    let mut survived = 0u64;
    let mut total_true = 0u64;
    for (retailer_name, expect) in &expected {
        total_true += expect;
        if let Ok(Some(bytes)) =
            store.get(&CellKey::new(retailer_name.as_bytes(), retailer::COUNTER), now + 1)
        {
            let got: u64 = String::from_utf8(bytes.to_vec()).unwrap().parse().unwrap();
            assert!(got <= *expect, "{retailer_name}: stored {got} > true {expect}");
            survived += got;
        }
    }
    assert!(survived < total_true, "the killed machine must have lost some increments");
}

#[test]
fn ssd_and_hdd_device_profiles_are_selectable_end_to_end() {
    // The §4.2 SSD argument is exercised by experiments; here we just prove
    // the knob reaches the I/O layer.
    let dir = TempDir::new("device").unwrap();
    let store = StoreCluster::open(
        dir.path(),
        StoreConfig { nodes: 1, replication: 1, device: DeviceProfile::SSD, ..Default::default() },
    )
    .unwrap();
    store.put(&CellKey::new("k", "U"), b"v", None, 1).unwrap();
    store.flush_all(2).unwrap();
    let io = store.io_stats();
    assert!(io.writes > 0);
    assert!(io.service_us > 0, "SSD profile charges service time");
}
