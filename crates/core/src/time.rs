//! Timestamps and clocks.
//!
//! The paper assumes timestamps are *global across all streams* so merged
//! streams have a well-defined order (§3). We represent them as logical
//! microseconds since an arbitrary epoch. Wall-clock anchoring is up to the
//! feed; the synthetic generators use a [`VirtualClock`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Logical microseconds since an arbitrary epoch, global across streams.
pub type Timestamp = u64;

/// Microseconds per second, for rate arithmetic.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// Microseconds per minute.
pub const MICROS_PER_MIN: u64 = 60 * MICROS_PER_SEC;

/// Microseconds per day.
pub const MICROS_PER_DAY: u64 = 24 * 60 * MICROS_PER_MIN;

/// Minute-of-day in `0..1440` for a timestamp, as used by the hot-topics
/// workflow of Example 5 ("if the timestamp is 23:59 then m = 1439").
#[inline]
pub fn minute_of_day(ts: Timestamp) -> u32 {
    ((ts % MICROS_PER_DAY) / MICROS_PER_MIN) as u32
}

/// Day index since the epoch, used by Example 5's `days` slate variable.
#[inline]
pub fn day_index(ts: Timestamp) -> u64 {
    ts / MICROS_PER_DAY
}

/// A monotonically increasing shared logical clock.
///
/// Generators advance it as they emit events; multiple generator threads may
/// share one clock so the merged feed still has (mostly) increasing
/// timestamps. `tick` returns strictly increasing values.
#[derive(Debug, Default)]
pub struct VirtualClock {
    micros: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at `start` microseconds.
    pub fn starting_at(start: Timestamp) -> Self {
        Self { micros: AtomicU64::new(start) }
    }

    /// Current reading without advancing.
    pub fn now(&self) -> Timestamp {
        self.micros.load(Ordering::Relaxed)
    }

    /// Advance by `delta` microseconds and return the *new* time.
    pub fn advance(&self, delta: u64) -> Timestamp {
        self.micros.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Return a strictly increasing timestamp (advances by 1 µs).
    pub fn tick(&self) -> Timestamp {
        self.advance(1)
    }

    /// Move the clock forward to at least `ts` (no-op if already past).
    pub fn advance_to(&self, ts: Timestamp) {
        self.micros.fetch_max(ts, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minute_of_day_matches_paper_examples() {
        // "if the timestamp is 00:14 then m = 14"
        assert_eq!(minute_of_day(14 * MICROS_PER_MIN), 14);
        // "if the timestamp is 23:59 then m = 1439"
        assert_eq!(minute_of_day(23 * 60 * MICROS_PER_MIN + 59 * MICROS_PER_MIN), 1439);
        // Wraps to next day.
        assert_eq!(minute_of_day(MICROS_PER_DAY + 14 * MICROS_PER_MIN), 14);
    }

    #[test]
    fn day_index_increments_per_day() {
        assert_eq!(day_index(0), 0);
        assert_eq!(day_index(MICROS_PER_DAY - 1), 0);
        assert_eq!(day_index(MICROS_PER_DAY), 1);
        assert_eq!(day_index(10 * MICROS_PER_DAY + 5), 10);
    }

    #[test]
    fn virtual_clock_ticks_strictly_increase() {
        let clock = VirtualClock::starting_at(100);
        let a = clock.tick();
        let b = clock.tick();
        assert!(b > a);
        assert!(a > 100 - 1);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let clock = VirtualClock::starting_at(500);
        clock.advance_to(300);
        assert_eq!(clock.now(), 500);
        clock.advance_to(900);
        assert_eq!(clock.now(), 900);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        use std::sync::Arc;
        let clock = Arc::new(VirtualClock::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&clock);
            handles
                .push(std::thread::spawn(move || (0..1000).map(|_| c.tick()).collect::<Vec<_>>()));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "ticks must be unique across threads");
    }
}
