//! Zipfian sampling over a finite universe.
//!
//! §5: "The distribution of event keys can be strongly skewed (e.g.,
//! follow a Zipfian distribution). Consequently, updaters can receive
//! widely varying loads." The hotspot experiments (X5, X12) need exactly
//! that skew, with a controllable exponent.
//!
//! Implementation: precomputed CDF + binary search. O(n) setup, O(log n)
//! per sample, exact distribution — fine for universes up to a few million
//! keys.

use muppet_core::event::{Event, Key};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The stream [`zipf_events`] emits on.
pub const ZIPF_STREAM: &str = "zipf_counts";

/// A deterministic stream of `len` unit-count events over a Zipf(`s`)
/// key universe of `n_keys` ranks: key `k<rank>` (rank 0 hottest),
/// value `"1"` (one unit, foldable by decimal sum), timestamps
/// `1..=len` on [`ZIPF_STREAM`]. `s = 0` degenerates to uniform. The
/// shared skewed input of the hot-key experiments (X23) and the
/// combiner exactness suites — same seed, same events, everywhere.
pub fn zipf_events(n_keys: usize, s: f64, len: usize, seed: u64) -> Vec<Event> {
    let zipf = Zipf::new(n_keys, s);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            let rank = zipf.sample(&mut rng);
            Event::new(ZIPF_STREAM, (i + 1) as u64, Key::from(format!("k{rank}")), &b"1"[..])
        })
        .collect()
}

/// A Zipf(s) sampler over ranks `0..n` (rank 0 is the most popular).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (`s = 0` is
    /// uniform; `s ≈ 1` is classic web-ish skew; larger is hotter).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty universe");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        // Normalize; final entry exactly 1.0 to make sampling total.
        for v in cdf.iter_mut() {
            *v /= total;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (the constructor rejects empty universes).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sample a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of `rank` (diagnostics and tests).
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(z: &Zipf, samples: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; z.len()];
        for _ in 0..samples {
            counts[z.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0);
        let counts = histogram(&z, 100_000, 42);
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1500, "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_is_large() {
        let z = Zipf::new(100, 1.2);
        let counts = histogram(&z, 100_000, 7);
        assert!(
            counts[0] > counts[10] && counts[10] > counts[99].saturating_sub(5),
            "monotone-ish decay: head={} mid={} tail={}",
            counts[0],
            counts[10],
            counts[99]
        );
        assert!(counts[0] as f64 / 100_000.0 > 0.15, "rank 0 dominates at s=1.2");
    }

    #[test]
    fn pmf_sums_to_one_and_matches_theory() {
        let z = Zipf::new(50, 1.0);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // p(rank 0) / p(rank 1) == 2 for s = 1.
        assert!((z.pmf(0) / z.pmf(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(1000, 1.1);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_universe() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn zipf_events_are_deterministic_unit_counts() {
        let a = zipf_events(50, 1.2, 500, 9);
        let b = zipf_events(50, 1.2, 500, 9);
        assert_eq!(a, b, "same seed, same events");
        assert_eq!(a.len(), 500);
        let mut head = 0usize;
        for (i, ev) in a.iter().enumerate() {
            assert_eq!(ev.stream.as_str(), ZIPF_STREAM);
            assert_eq!(ev.ts, (i + 1) as u64);
            assert_eq!(ev.value.as_ref(), b"1");
            if ev.key.as_bytes() == b"k0" {
                head += 1;
            }
        }
        assert!(head > 100, "rank 0 dominates at s=1.2: {head}");
        assert_ne!(a, zipf_events(50, 1.2, 500, 10), "seed changes the stream");
    }

    #[test]
    fn single_rank_universe() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }
}
