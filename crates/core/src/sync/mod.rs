//! Instrumented synchronization primitives — the only lock layer the
//! workspace is allowed to use (enforced by `muppet-check`'s `no-raw-lock`
//! rule; `vendor/` and this module are exempt).
//!
//! In a default build these are transparent newtypes over the vendored
//! `parking_lot` shim: no extra fields, no extra branches, `#[inline]`
//! passthroughs — the migration from raw `parking_lot` costs nothing
//! (benchmarked in x21).
//!
//! Under the **`lock-audit`** feature every lock carries the source
//! location of its construction site as a static *lock class* label, every
//! acquisition pushes onto a thread-local held-lock stack, and every
//! ⟨held → acquired⟩ class pair feeds a global lock-order graph. A cycle
//! in that graph is a potential deadlock; the audit records it with the
//! acquisition backtrace of each edge (see [`audit`]). Blocking-IO sites
//! (`fsync` and friends) call [`audit::blocking_io`], which reports any IO
//! performed while a lock is held unless the site is wrapped in
//! [`audit::io_allowed`].
//!
//! The audit layer also exposes a schedule-perturbation hook
//! ([`audit::set_sched_hook`]) fired before every acquisition — the
//! `muppet-check` interleaving harness uses it to jitter thread schedules
//! through real lock sites.

#[cfg(feature = "lock-audit")]
pub mod audit;

#[cfg(not(feature = "lock-audit"))]
pub mod audit {
    //! No-op audit surface for default builds: every probe compiles to
    //! nothing so callers need no `cfg` of their own.

    /// Whether the audit layer is compiled in.
    #[inline(always)]
    pub const fn enabled() -> bool {
        false
    }

    /// Record a blocking-IO call (no-op without `lock-audit`).
    #[inline(always)]
    pub fn blocking_io(_kind: &'static str) {}

    /// Run `f` with IO-under-lock reporting suppressed (no-op wrapper).
    #[inline(always)]
    pub fn io_allowed<R>(f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Lock-order cycles observed so far (always empty without audit).
    #[inline(always)]
    pub fn order_cycles() -> Vec<String> {
        Vec::new()
    }

    /// IO-while-locked events observed so far (always empty without audit).
    #[inline(always)]
    pub fn io_under_lock_events() -> Vec<String> {
        Vec::new()
    }
}

#[cfg(feature = "lock-audit")]
use core::panic::Location;
use std::fmt;
use std::time::Duration;

pub use parking_lot::WaitTimeoutResult;

/// A mutual exclusion lock; [`MutexGuard::lock`] never fails. Identical to
/// the vendored `parking_lot::Mutex` in default builds; under `lock-audit`
/// the construction site becomes the lock's class label.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock-audit")]
    site: &'static Location<'static>,
    inner: parking_lot::Mutex<T>,
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Declared before `inner` so the audit pop happens while the lock is
    // still held — the stack never claims "unheld" for a held lock.
    #[cfg(feature = "lock-audit")]
    held: audit::HeldToken,
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`. The caller's source location is
    /// the lock class under `lock-audit`.
    #[track_caller]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "lock-audit")]
            site: Location::caller(),
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lock-audit")]
        let held = audit::on_acquire(self.site, audit::Kind::Mutex);
        MutexGuard {
            #[cfg(feature = "lock-audit")]
            held,
            inner: self.inner.lock(),
        }
    }

    /// Try to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = self.inner.try_lock()?;
        Some(MutexGuard {
            #[cfg(feature = "lock-audit")]
            held: audit::on_acquire(self.site, audit::Kind::Mutex),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock; `read()`/`write()` never fail.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock-audit")]
    site: &'static Location<'static>,
    inner: parking_lot::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-audit")]
    held: audit::HeldToken,
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-audit")]
    held: audit::HeldToken,
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a lock guarding `value`. The caller's source location is
    /// the lock class under `lock-audit`.
    #[track_caller]
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "lock-audit")]
            site: Location::caller(),
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-audit")]
        let held = audit::on_acquire(self.site, audit::Kind::RwRead);
        RwLockReadGuard {
            #[cfg(feature = "lock-audit")]
            held,
            inner: self.inner.read(),
        }
    }

    /// Acquire an exclusive write lock.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-audit")]
        let held = audit::on_acquire(self.site, audit::Kind::RwWrite);
        RwLockWriteGuard {
            #[cfg(feature = "lock-audit")]
            held,
            inner: self.inner.write(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(parking_lot::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar(parking_lot::Condvar::new())
    }

    /// Block until notified. The mutex is released for the duration of the
    /// wait; under `lock-audit` the held-stack entry is popped and
    /// re-pushed around it so the stack mirrors what the thread holds.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "lock-audit")]
        let reacquire = guard.held.release_for_wait();
        self.0.wait(&mut guard.inner);
        #[cfg(feature = "lock-audit")]
        {
            guard.held = reacquire.reacquired();
        }
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "lock-audit")]
        let reacquire = guard.held.release_for_wait();
        let result = self.0.wait_for(&mut guard.inner, timeout);
        #[cfg(feature = "lock-audit")]
        {
            guard.held = reacquire.reacquired();
        }
        result
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shim_is_transparent_in_default_builds() {
        // The whole point of the newtype: without `lock-audit` there is no
        // extra field, so migrating a lock site onto the shim is free.
        #[cfg(not(feature = "lock-audit"))]
        {
            assert_eq!(
                std::mem::size_of::<Mutex<u64>>(),
                std::mem::size_of::<parking_lot::Mutex<u64>>()
            );
            assert_eq!(
                std::mem::size_of::<RwLock<u64>>(),
                std::mem::size_of::<parking_lot::RwLock<u64>>()
            );
            assert_eq!(
                std::mem::size_of::<MutexGuard<'_, u64>>(),
                std::mem::size_of::<parking_lot::MutexGuard<'_, u64>>()
            );
        }
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_and_times_out() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let mut g = pair.0.lock();
        assert!(pair.1.wait_for(&mut g, Duration::from_millis(5)).timed_out());
        drop(g);

        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let mut g = pair2.0.lock();
            while !*g {
                pair2.1.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let mut g = pair.0.lock();
            *g = true;
            pair.1.notify_all();
        }
        t.join().unwrap();
    }
}
