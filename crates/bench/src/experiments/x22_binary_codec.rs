//! X22 — binary slates and the negotiated wire: what MBF buys at every
//! byte boundary, in bytes and in throughput.
//!
//! §4.2: "our applications often use JSON to encode slates". PR 9 threads
//! MBF — the compact tagged binary codec — through every byte boundary the
//! earlier experiments measured one at a time: EventBatch payloads on the
//! wire (x15), slate materialization on the hot path (x17), and the
//! WAL/SSTable store path (x18). This experiment re-runs those boundaries
//! in both codecs on the paper's two workloads:
//!
//! * `event payloads`   — the bytes a tweet/checkin value occupies as
//!   JSON text vs MBF: what the ingest WAL appends and frames carry;
//! * `wire frames`      — the exact `Event`/`EventBatch` payload bytes a
//!   v5↔v5 connection ships vs the same events downgraded for a JSON
//!   peer (`encode_events_payload` both ways — framing included);
//! * `slates at rest`   — a store-backed hot_topics run per codec,
//!   scanning the store after shutdown: the bytes that actually rested;
//! * `pipeline`         — a 3-machine TCP-loopback retailer cluster per
//!   codec choice (`json` / `auto` / `mbf`): same events, same exact
//!   results; events/s recorded — `mbf` pays its ingest-edge transcode,
//!   `auto` (the default) converts nothing at ingest.
//!
//! Timestamps anchor at the paper's era (2011) rather than the synthetic
//! epoch 0 so number widths are realistic. All byte counts are exact and
//! deterministic — CI gates on the shrink ratios and on exactness (both
//! codecs must produce canonically identical slates); wall time is
//! advisory and lives in the committed `BENCH_x22.json`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use muppet_apps::hot_topics::{self, HotDetector, MinuteCounter, TopicMapper};
use muppet_apps::retailer::{self, Counter, RetailerMapper};
use muppet_core::event::Event;
use muppet_core::json::Json;
use muppet_core::{mbf, CodecChoice};
use muppet_net::frame::encode_events_payload;
use muppet_net::topology::Topology;
use muppet_net::{BatchConfig, WireEvent};
use muppet_runtime::cache::FlushPolicy;
use muppet_runtime::engine::{Engine, EngineConfig, OperatorSet, TransportKind};
use muppet_runtime::overflow::OverflowPolicy;
use muppet_slatestore::cluster::{StoreCluster, StoreConfig};
use muppet_workloads::checkins::CheckinGenerator;
use muppet_workloads::tweets::TweetGenerator;

use crate::table::{rate, Table};
use crate::Scale;

const MACHINES: usize = 3;

/// 2011-09-01 00:00 UTC in µs — the paper's Twitter-firehose era, so
/// timestamps and day indices have realistic digit widths.
const EPOCH_US: u64 = 1_314_835_200_000_000;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("muppet-x22-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create x22 temp dir");
    dir
}

fn hot_ops() -> OperatorSet {
    OperatorSet::new()
        .mapper(TopicMapper::new())
        .updater(MinuteCounter::new())
        .updater(HotDetector::new(3.0))
}

struct ByteArm {
    boundary: &'static str,
    workload: &'static str,
    json: u64,
    mbf: u64,
}

impl ByteArm {
    fn ratio(&self) -> f64 {
        self.mbf as f64 / (self.json as f64).max(1.0)
    }

    fn shrink_pct(&self) -> f64 {
        (1.0 - self.ratio()) * 100.0
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("boundary", Json::str(self.boundary)),
            ("workload", Json::str(self.workload)),
            ("json_bytes", Json::num(self.json as f64)),
            ("mbf_bytes", Json::num(self.mbf as f64)),
            ("mbf_over_json", Json::num((self.ratio() * 1e4).round() / 1e4)),
            ("shrink_pct", Json::num((self.shrink_pct() * 100.0).round() / 100.0)),
        ])
    }
}

/// Sum of event-value bytes as JSON text vs MBF — what the ingest WAL
/// appends (and what frames carry) per codec.
fn payload_arm(workload: &'static str, events: &[Event]) -> ByteArm {
    let json: u64 = events.iter().map(|e| e.value.len() as u64).sum();
    let mbf: u64 = events
        .iter()
        .map(|e| {
            let doc = Json::from_payload(&e.value).expect("generator emits valid JSON");
            doc.to_mbf().expect("generator values encode").len() as u64
        })
        .sum();
    ByteArm { boundary: "event-payloads", workload, json, mbf }
}

/// Exact wire payload bytes: the events (values already MBF, as a v5
/// ingest node holds them) encoded for a v5 peer vs downgraded for a
/// JSON peer, in default-sized batches. Framing and headers included.
fn wire_arm(workload: &'static str, events: &[Event]) -> ByteArm {
    let wire: Vec<WireEvent> = events
        .iter()
        .map(|e| {
            let mut ev = e.clone();
            let doc = Json::from_payload(&ev.value).expect("valid value");
            ev.value = doc.to_mbf().expect("encodable value").into();
            WireEvent {
                op: 0,
                event: ev,
                injected_us: 0,
                redirected: false,
                external: true,
                thread_hint: None,
                forwards: 0,
            }
        })
        .collect();
    let batch = BatchConfig::default().batch_max.max(1);
    let mut json = 0u64;
    let mut mbf = 0u64;
    for chunk in wire.chunks(batch) {
        mbf += encode_events_payload(chunk, true).len() as u64;
        json += encode_events_payload(chunk, false).len() as u64;
    }
    ByteArm { boundary: "wire-frames", workload, json, mbf }
}

/// Canonical form of a stored payload (document → canonical compact text,
/// raw text otherwise) — the codec-independent comparison.
fn canonical(bytes: &[u8]) -> String {
    Json::from_payload(bytes)
        .map(|doc| doc.to_compact())
        .unwrap_or_else(|_| String::from_utf8_lossy(bytes).into_owned())
}

struct AtRest {
    /// column → (canonical slates, json-text bytes at rest, mbf bytes at rest)
    columns: BTreeMap<&'static str, (BTreeMap<String, String>, u64)>,
    mbf_values: usize,
    total_bytes: u64,
    elapsed: Duration,
    processed: u64,
}

/// Run hot_topics over a store-backed single-node engine pinned to
/// `codec` and scan the store after shutdown: the measured bytes are the
/// ones that actually rested in the SSTables/WAL.
fn hot_topics_at_rest(codec: CodecChoice, events: &[Event], tag: &str) -> AtRest {
    let dir = temp_dir(tag);
    let store = Arc::new(StoreCluster::open(&dir, StoreConfig::default()).expect("open store"));
    let cfg = EngineConfig {
        machines: 2,
        workers_per_machine: 2,
        overflow: OverflowPolicy::SourceThrottle,
        flush: FlushPolicy::WriteThrough,
        queue_capacity: 1 << 14,
        wire_codec: codec,
        ..EngineConfig::default()
    };
    let engine =
        Engine::start(hot_topics::workflow(), hot_ops(), cfg, Some(Arc::clone(&store))).unwrap();
    let t0 = Instant::now();
    for ev in events {
        engine.submit(ev.clone()).expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(300)), "at-rest arm did not drain");
    let elapsed = t0.elapsed();
    let now = engine.now_us();
    let processed = engine.stats().processed;
    engine.shutdown();

    let mut columns = BTreeMap::new();
    let mut mbf_values = 0usize;
    let mut total_bytes = 0u64;
    for column in [hot_topics::MINUTE_COUNTER, hot_topics::HOT_DETECTOR] {
        let rows = store.scan_column(column, now + 1).expect("scan column");
        let mut slates = BTreeMap::new();
        let mut bytes = 0u64;
        for (row, value) in rows {
            if mbf::is_mbf(&value) {
                mbf_values += 1;
            }
            bytes += value.len() as u64;
            slates.insert(String::from_utf8_lossy(&row).into_owned(), canonical(&value));
        }
        total_bytes += bytes;
        columns.insert(column, (slates, bytes));
    }
    let _ = std::fs::remove_dir_all(&dir);
    AtRest { columns, mbf_values, total_bytes, elapsed, processed }
}

struct PipelineOutcome {
    elapsed: Duration,
    processed: u64,
    counts: BTreeMap<String, u64>,
}

/// One 3-machine TCP-loopback retailer cluster pinned to `codec`: submit,
/// drain, read the per-retailer counts from their owner machines.
fn run_tcp_pipeline(codec: CodecChoice, events: &[Event]) -> PipelineOutcome {
    let topology = Topology::loopback_ephemeral(MACHINES, false).expect("reserve ports");
    let nodes: Vec<Engine> = (0..MACHINES)
        .map(|local| {
            let cfg = EngineConfig {
                machines: MACHINES,
                workers_per_machine: 2,
                overflow: OverflowPolicy::SourceThrottle,
                queue_capacity: 1 << 14,
                transport: TransportKind::Tcp { topology: topology.clone(), local },
                wire_codec: codec,
                ..EngineConfig::default()
            };
            Engine::start(
                retailer::workflow(),
                OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new()),
                cfg,
                None,
            )
            .unwrap()
        })
        .collect();
    let t0 = Instant::now();
    for ev in events {
        nodes[0].submit(ev.clone()).expect("submit");
    }
    // Cross-node quiesce: a single node's drain can return while frames
    // are still in TCP flight toward it, so wait for the cluster-wide
    // processed count to go stable (the x15 idiom).
    let total = |nodes: &[Engine]| -> u64 { nodes.iter().map(|e| e.stats().processed).sum() };
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut last = total(&nodes);
    let mut stable_since = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(20));
        let now = total(&nodes);
        if now != last {
            last = now;
            stable_since = Instant::now();
        } else if stable_since.elapsed() > Duration::from_millis(400) && now > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "pipeline arm did not quiesce");
    }
    let elapsed = stable_since.saturating_duration_since(t0);
    let mut counts = BTreeMap::new();
    for (retailer_name, _) in muppet_workloads::checkins::RETAILER_VENUES {
        let key = muppet_core::event::Key::from(*retailer_name);
        let owner = nodes[0].owner_machine(retailer::COUNTER, &key).expect("routable key");
        if let Some(bytes) = nodes[owner].read_slate(retailer::COUNTER, &key) {
            let count = String::from_utf8(bytes)
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .expect("counter slate is decimal text");
            counts.insert(retailer_name.to_string(), count);
        }
    }
    let processed = nodes.iter().map(|n| n.stats().processed).sum();
    for node in nodes {
        node.shutdown();
    }
    PipelineOutcome { elapsed, processed, counts }
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X22",
        "binary slates and the negotiated wire: MBF vs JSON at every byte boundary",
        "§4.2 slate encoding; x15/x17/x18 boundaries re-run per codec",
    );
    let n_payload = scale.events(60_000);
    let n_rest = scale.events(30_000);
    let n_pipe = scale.events(30_000);

    let tweets: Vec<Event> = TweetGenerator::new(42, 2_000, 40.0)
        .starting_at(EPOCH_US)
        .take(hot_topics::TWEET_STREAM, n_payload);
    let checkins: Vec<Event> =
        CheckinGenerator::new(4242, 600, 2000.0).take(retailer::CHECKIN_STREAM, n_payload);

    // --- byte arms: event payloads and exact wire frames ---
    let byte_arms = [
        payload_arm("hot_topics tweets", &tweets),
        payload_arm("retailer checkins", &checkins),
        wire_arm("hot_topics tweets", &tweets),
        wire_arm("retailer checkins", &checkins),
    ];

    // --- slates at rest: one store-backed hot_topics run per codec ---
    let rest_events = &tweets[..n_rest.min(tweets.len())];
    let rest_json = hot_topics_at_rest(CodecChoice::Json, rest_events, "rest-json");
    let rest_mbf = hot_topics_at_rest(CodecChoice::Mbf, rest_events, "rest-mbf");

    // Exactness: identical canonical documents at rest in both codecs.
    for column in [hot_topics::MINUTE_COUNTER, hot_topics::HOT_DETECTOR] {
        let (json_slates, _) = &rest_json.columns[column];
        let (mbf_slates, _) = &rest_mbf.columns[column];
        assert!(!json_slates.is_empty(), "{column}: the workload must produce slates");
        assert_eq!(json_slates, mbf_slates, "{column}: at-rest documents must match per codec");
    }
    assert_eq!(rest_json.mbf_values, 0, "a JSON-pinned engine must not store MBF");
    let slate_count: usize = rest_mbf.columns.values().map(|(s, _)| s.len()).sum();
    assert_eq!(rest_mbf.mbf_values, slate_count, "an MBF engine stores every slate in MBF");

    let minute_rest = ByteArm {
        boundary: "slates-at-rest",
        workload: "hot_topics minute-counter",
        json: rest_json.columns[hot_topics::MINUTE_COUNTER].1,
        mbf: rest_mbf.columns[hot_topics::MINUTE_COUNTER].1,
    };
    let all_rest = ByteArm {
        boundary: "slates-at-rest",
        workload: "hot_topics all slates",
        json: rest_json.total_bytes,
        mbf: rest_mbf.total_bytes,
    };

    // --- pipeline throughput: TCP retailer cluster per codec ---
    let pipe_events = &checkins[..n_pipe.min(checkins.len())];
    let truth: BTreeMap<String, u64> =
        CheckinGenerator::expected_retailer_counts(pipe_events).into_iter().collect();
    // Arm-to-arm wall time on a shared 1-core runner varies by ~10-20%
    // between identical clusters, which swamps the codec effect — so each
    // arm runs twice and keeps its faster run (the min-of-N idiom).
    // Exactness is asserted on both runs.
    let best_of = |codec: CodecChoice| {
        let a = run_tcp_pipeline(codec, pipe_events);
        let b = run_tcp_pipeline(codec, pipe_events);
        assert_eq!(a.counts, b.counts, "repeat runs of one arm must agree");
        if b.elapsed < a.elapsed {
            b
        } else {
            a
        }
    };
    let pipe_arms: Vec<(&str, PipelineOutcome)> =
        [("json", CodecChoice::Json), ("auto", CodecChoice::Auto), ("mbf", CodecChoice::Mbf)]
            .into_iter()
            .map(|(name, codec)| (name, best_of(codec)))
            .collect();
    for (name, o) in &pipe_arms {
        assert_eq!(&o.counts, &truth, "{name} pipeline must be exact");
        assert_eq!(
            o.processed, pipe_arms[0].1.processed,
            "{name}: every codec processes the identical event set"
        );
    }

    // --- render ---
    let mut table = Table::new(["boundary", "workload", "json bytes", "mbf bytes", "shrink"]);
    for arm in byte_arms.iter().chain([&minute_rest, &all_rest]) {
        table.row([
            arm.boundary.to_string(),
            arm.workload.to_string(),
            arm.json.to_string(),
            arm.mbf.to_string(),
            format!("{:.1}%", arm.shrink_pct()),
        ]);
    }
    table.print();

    let mut pipe_table =
        Table::new(["pipeline (3-node TCP retailer)", "events", "wall time", "events/s"]);
    for (name, o) in &pipe_arms {
        pipe_table.row([
            name.to_string(),
            pipe_events.len().to_string(),
            format!("{:.2?}", o.elapsed),
            rate(pipe_events.len(), o.elapsed),
        ]);
    }
    println!();
    pipe_table.print();

    println!(
        "\nshape check: MBF shrinks checkin payloads {:.1}% and minute-counter slates at rest \
         {:.1}%; every codec produced canonically identical slates, exact counts, and \
         {} processed events per pipeline arm ('mbf' pays the ingest-edge parse+encode for \
         its smaller frames; 'auto' — the default — converts nothing at ingest)",
        byte_arms[1].shrink_pct(),
        minute_rest.shrink_pct(),
        pipe_arms[0].1.processed,
    );

    // Deterministic CI gates: byte counts are exact functions of the
    // seeded workloads; wall time is advisory (1-core shared runners).
    for arm in byte_arms.iter().chain([&minute_rest, &all_rest]) {
        assert!(
            arm.mbf < arm.json,
            "{} / {}: MBF must be smaller ({} vs {})",
            arm.boundary,
            arm.workload,
            arm.mbf,
            arm.json
        );
    }
    // The headline ≥25% shrink claims: the retailer workload's serialized
    // payloads (what its WAL appends and frames carry) and the hot_topics
    // minute-counter slate column (Example 5's slate) at rest.
    assert!(
        byte_arms[1].mbf * 4 <= byte_arms[1].json * 3,
        "checkin payloads must shrink ≥25% ({} vs {})",
        byte_arms[1].mbf,
        byte_arms[1].json
    );
    assert!(
        minute_rest.mbf * 4 <= minute_rest.json * 3,
        "minute-counter slates at rest must shrink ≥25% ({} vs {})",
        minute_rest.mbf,
        minute_rest.json
    );
    // The full at-rest population (hot-detector slates are key-heavy)
    // still shrinks over a fifth.
    assert!(
        all_rest.mbf * 5 <= all_rest.json * 4,
        "all hot_topics slates at rest must shrink ≥20% ({} vs {})",
        all_rest.mbf,
        all_rest.json
    );

    let (mbf_decodes, mbf_encodes) = mbf::mbf_counters();
    let doc = Json::obj([
        ("experiment", Json::str("x22")),
        ("workloads", Json::str("hot_topics tweets + retailer checkins (2011-era timestamps)")),
        ("events_payload_arms", Json::num(n_payload as f64)),
        ("events_at_rest", Json::num(rest_events.len() as f64)),
        ("events_pipeline", Json::num(pipe_events.len() as f64)),
        ("pipeline_runs_per_arm", Json::num(2.0)),
        (
            "byte_arms",
            Json::arr(byte_arms.iter().chain([&minute_rest, &all_rest]).map(ByteArm::to_json)),
        ),
        (
            "at_rest",
            Json::obj([
                ("slates", Json::num(slate_count as f64)),
                ("json_arm_wall_ms", Json::num(rest_json.elapsed.as_secs_f64() * 1e3)),
                ("mbf_arm_wall_ms", Json::num(rest_mbf.elapsed.as_secs_f64() * 1e3)),
                ("json_arm_processed", Json::num(rest_json.processed as f64)),
                ("mbf_arm_processed", Json::num(rest_mbf.processed as f64)),
                ("mbf_values_in_mbf_arm", Json::num(rest_mbf.mbf_values as f64)),
            ]),
        ),
        (
            "pipeline",
            Json::arr(pipe_arms.iter().map(|(name, o)| {
                Json::obj([
                    ("codec", Json::str(*name)),
                    ("events", Json::num(pipe_events.len() as f64)),
                    ("processed", Json::num(o.processed as f64)),
                    ("wall_ms", Json::num(o.elapsed.as_secs_f64() * 1e3)),
                    (
                        "events_per_sec",
                        Json::num(pipe_events.len() as f64 / o.elapsed.as_secs_f64().max(1e-9)),
                    ),
                ])
            })),
        ),
        (
            "mbf_codec_calls",
            Json::obj([
                ("encodes", Json::num(mbf_encodes as f64)),
                ("decodes", Json::num(mbf_decodes as f64)),
            ]),
        ),
    ]);
    match std::fs::write("BENCH_x22.json", doc.to_pretty() + "\n") {
        Ok(()) => println!("\nwrote BENCH_x22.json"),
        Err(e) => eprintln!("could not write BENCH_x22.json: {e}"),
    }
}
