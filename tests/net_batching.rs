//! The latency side of the size/age flush policy: batching must never
//! turn into a Nagle stall. A single event with no follow-up traffic —
//! the worst case for any coalescing wire, since nothing else will ever
//! fill its batch — must still be delivered within ~2× `net_flush_us`,
//! for both engine generations over TCP loopback.

use std::time::{Duration, Instant};

use muppet::prelude::*;

struct CountUpdater;

impl Updater for CountUpdater {
    fn name(&self) -> &str {
        "counter"
    }
    fn update(&self, _ctx: &mut dyn Emitter, _event: &Event, slate: &mut Slate) {
        let n = slate.as_str().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
        slate.replace((n + 1).to_string().into_bytes());
    }
}

fn count_workflow() -> Workflow {
    let mut b = Workflow::builder("net-batch");
    b.external_stream("S1");
    b.updater("counter", &["S1"]);
    b.build().unwrap()
}

/// The flush policy under test: a long batch-size trigger that a single
/// event can never hit, so only the age bound can get it on the wire.
const FLUSH_US: u64 = 250_000;

fn start_node(topology: &Topology, local: usize, kind: EngineKind) -> Engine {
    let cfg = EngineConfig {
        kind,
        machines: topology.len(),
        workers_per_machine: 2,
        workers_per_op: 2,
        transport: TransportKind::Tcp { topology: topology.clone(), local },
        net_batch_max: 10_000,
        net_flush_us: FLUSH_US,
        ..EngineConfig::default()
    };
    Engine::start(count_workflow(), OperatorSet::new().updater(CountUpdater), cfg, None).unwrap()
}

/// A key whose ⟨key, "counter"⟩ arc is owned by machine 1, so node 0
/// must send it across the wire (asked of the engine's own routing).
fn remote_owned_key(node0: &Engine) -> Key {
    for i in 0..10_000 {
        let key = Key::from(format!("probe-{i}"));
        if node0.owner_machine("counter", &key) == Some(1) {
            return key;
        }
    }
    panic!("no key routed to machine 1 in 10k probes");
}

fn single_event_is_flushed_within_the_age_bound(kind: EngineKind) {
    let topology = Topology::loopback_ephemeral(2, false).unwrap();
    let a = start_node(&topology, 0, kind);
    let b = start_node(&topology, 1, kind);

    let key = remote_owned_key(&a);
    let started = Instant::now();
    a.submit(Event::new("S1", 1, key, "e")).unwrap();

    // No follow-up traffic: only the age trigger can flush this batch.
    let bound = Duration::from_micros(2 * FLUSH_US);
    let deadline = started + bound;
    let mut delivered_at = None;
    while Instant::now() <= deadline {
        if b.stats().processed >= 1 {
            delivered_at = Some(started.elapsed());
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let elapsed = delivered_at.unwrap_or_else(|| {
        panic!(
            "single event not delivered within 2x flush_us ({bound:?}) — Nagle stall \
             ({kind:?}; remote processed = {})",
            b.stats().processed
        )
    });
    assert!(elapsed <= bound, "{elapsed:?} exceeds the {bound:?} flush bound ({kind:?})");

    a.shutdown();
    b.shutdown();
}

#[test]
fn muppet2_single_event_flushes_within_the_age_bound() {
    single_event_is_flushed_within_the_age_bound(EngineKind::Muppet2);
}

#[test]
fn muppet1_single_event_flushes_within_the_age_bound() {
    single_event_is_flushed_within_the_age_bound(EngineKind::Muppet1);
}
