//! A [`SlateBackend`] that reaches a store service on another node through
//! the muppet wire (§4.2 over TCP).
//!
//! The paper's deployment points every machine at one shared "Cassandra
//! cluster". In a `muppetd` cluster, one node hosts the store
//! ([`crate::engine::EngineConfig::store_host`]); every other node's slate
//! cache flushes and misses go through `StorePut`/`StoreGet` frames on the
//! same [`Transport`] the events use. Write failures are surfaced to the
//! cache (the dirty slate stays dirty; a later flush retries) and read
//! failures surface as cache misses — the availability-first posture of
//! the in-process store adapter.

use std::sync::Arc;

use muppet_core::event::Key;
use muppet_core::Codec;
use muppet_net::frame::{StoreGetItem, StorePutItem};
use muppet_net::transport::{MachineId, Transport};

use crate::cache::{FlushItem, SlateBackend};

/// Store reads/writes forwarded to `host` over the transport.
pub struct RemoteBackend {
    transport: Arc<dyn Transport>,
    host: MachineId,
}

impl RemoteBackend {
    /// A backend that forwards to the store service on `host`.
    pub fn new(transport: Arc<dyn Transport>, host: MachineId) -> RemoteBackend {
        RemoteBackend { transport, host }
    }
}

impl SlateBackend for RemoteBackend {
    fn load(&self, updater: &str, key: &Key, now_us: u64) -> Option<Vec<u8>> {
        self.transport.store_get(self.host, updater, key.as_bytes(), now_us).ok().flatten()
    }

    fn store(
        &self,
        updater: &str,
        key: &Key,
        bytes: &[u8],
        codec: Codec,
        ttl_secs: Option<u64>,
        now_us: u64,
    ) -> bool {
        self.transport
            .store_put(self.host, updater, key.as_bytes(), bytes, codec, ttl_secs, now_us)
            .is_ok()
    }

    fn store_many(&self, items: &[FlushItem], now_us: u64) -> Vec<bool> {
        // One `StorePutBatch` frame for the whole run: a flush tick of N
        // dirty slates costs one wire round trip instead of N. A wire
        // failure fails the batch wholesale — every slate stays dirty and
        // the next sweep retries (identical posture to the per-slate
        // path, amortized).
        let wire: Vec<StorePutItem> = items
            .iter()
            .map(|item| StorePutItem {
                updater: item.updater.to_string(),
                key: item.key.as_bytes().to_vec(),
                value: item.bytes.clone(), // refcount bump, not a copy
                ttl_secs: item.ttl_secs,
                codec: item.codec,
            })
            .collect();
        match self.transport.store_put_many(self.host, wire, now_us) {
            Ok(ok) if ok.len() == items.len() => ok,
            _ => vec![false; items.len()],
        }
    }

    fn load_many(&self, items: &[(Arc<str>, Key)], now_us: u64) -> Vec<Option<Vec<u8>>> {
        let wire: Vec<StoreGetItem> = items
            .iter()
            .map(|(updater, key)| StoreGetItem {
                updater: updater.to_string(),
                key: key.as_bytes().to_vec(),
            })
            .collect();
        match self.transport.store_get_many(self.host, wire, now_us) {
            Ok(values) if values.len() == items.len() => values,
            _ => vec![None; items.len()], // wire failure reads as misses
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::sync::Mutex;
    use muppet_net::transport::{ClusterHandler, InProcessTransport, NetError};
    use muppet_net::WireEvent;
    use std::collections::HashMap;
    use std::sync::Weak;

    type Cell = (String, Vec<u8>);

    #[derive(Default)]
    struct MapStore(Mutex<HashMap<Cell, Vec<u8>>>);

    impl ClusterHandler for MapStore {
        fn deliver_event(&self, dest: usize, _ev: WireEvent) -> Result<(), NetError> {
            Err(NetError::NoRoute(dest))
        }
        fn handle_failure_report(&self, _f: usize, _epoch: u64) {}
        fn handle_failure_broadcast(&self, _f: usize, _epoch: u64) {}
        fn read_local_slate(&self, _d: usize, _u: &str, _k: &[u8]) -> Option<Vec<u8>> {
            None
        }
        fn backend_store(
            &self,
            u: &str,
            k: &[u8],
            v: &[u8],
            _codec: Codec,
            _ttl: Option<u64>,
            _now: u64,
        ) {
            self.0.lock().insert((u.to_string(), k.to_vec()), v.to_vec());
        }
        fn backend_load(&self, u: &str, k: &[u8], _now: u64) -> Option<Vec<u8>> {
            self.0.lock().get(&(u.to_string(), k.to_vec())).cloned()
        }
    }

    #[test]
    fn remote_backend_roundtrips_through_transport() {
        let transport = Arc::new(InProcessTransport::new());
        let store = Arc::new(MapStore::default());
        transport.register(Arc::downgrade(&store) as Weak<dyn ClusterHandler>);
        let backend = RemoteBackend::new(transport as Arc<dyn Transport>, 0);

        let key = Key::from("walmart");
        assert_eq!(backend.load("U1", &key, 0), None);
        backend.store("U1", &key, b"41", Codec::Json, None, 10);
        backend.store("U1", &key, b"42", Codec::Json, None, 20);
        assert_eq!(backend.load("U1", &key, 30), Some(b"42".to_vec()));
        assert_eq!(backend.load("U2", &key, 30), None);
    }
}
