//! One module per reproduced figure / claim. See DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded outcomes.

pub mod f1a_workflow_graphs;
pub mod x10_machine_failure;
pub mod x11_overflow;
pub mod x12_hotspot_splitting;
pub mod x13_slate_sizes;
pub mod x14_http_reads;
pub mod x15_network_transport;
pub mod x16_elasticity;
pub mod x17_hot_path;
pub mod x18_store_path;
pub mod x19_observability;
pub mod x1_distributed_execution;
pub mod x20_crash_recovery;
pub mod x21_lock_shim;
pub mod x22_binary_codec;
pub mod x23_hot_keys;
pub mod x2_retailer_counts;
pub mod x3_hot_topics;
pub mod x4_scale_latency;
pub mod x5_engine_generations;
pub mod x6_cache_and_devices;
pub mod x7_flush_policies;
pub mod x8_quorum;
pub mod x9_ttl_growth;

/// Print a standard experiment banner.
pub(crate) fn banner(id: &str, title: &str, paper_ref: &str) {
    println!("\n=== {id}: {title}");
    println!("    paper: {paper_ref}\n");
}
