//! # muppet-workloads — synthetic fast-data feeds
//!
//! The paper's evaluation streams are proprietary (the Twitter Firehose,
//! the Foursquare checkin stream). Per the reproduction plan (DESIGN.md
//! §1) this crate generates synthetic equivalents that preserve what the
//! system actually reacts to:
//!
//! * **rate** — events/second, including the bursts motivating §2's
//!   earthquake example ([`arrivals`]);
//! * **key skew** — "the distribution of event keys can be strongly skewed
//!   (e.g., follow a Zipfian distribution)" (§5) ([`zipf`]);
//! * **payload shape** — JSON blobs with user/venue/topic structure, like
//!   the tweets and checkins the example applications parse ([`tweets`],
//!   [`checkins`], [`webrequests`]).
//!
//! Generators are deterministic given a seed, so experiments are
//! reproducible.

pub mod arrivals;
pub mod checkins;
pub mod tweets;
pub mod webrequests;
pub mod zipf;

pub use arrivals::ArrivalProcess;
pub use checkins::CheckinGenerator;
pub use tweets::TweetGenerator;
pub use zipf::{zipf_events, Zipf, ZIPF_STREAM};
