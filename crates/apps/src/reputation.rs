//! Per-user reputation scores — Example 3.
//!
//! "It analyzes each incoming tweet to determine if the tweet affects the
//! score of any users, then changes those scores. ... if a user A retweets
//! or replies to a user B, then the score of B may change ... The output
//! is a real-time data structure of ⟨user, score⟩ pairs."
//!
//! Workflow: `S1 (tweets) → M1 → S2 → U1`, with U1's slates being the
//! live ⟨user, score⟩ table. The mapper fans one tweet out into score
//! deltas: the author earns activity points; a retweeted/replied-to user
//! earns engagement points weighted by the interaction kind. (The paper
//! notes B's delta "may depend on the score of A"; cross-slate reads are
//! impossible in MapUpdate — exactly why the paper keeps per-key slates —
//! so the weight is carried in the event instead.)

use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use muppet_core::operator::{Emitter, Mapper, Updater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;

/// External tweet stream.
pub const TWEET_STREAM: &str = "S1";
/// Internal stream of score deltas.
pub const DELTA_STREAM: &str = "S2";
/// The mapper's name.
pub const MAPPER: &str = "reputation-mapper";
/// The updater's name.
pub const SCORER: &str = "reputation-scorer";

/// Points for writing a tweet.
pub const TWEET_POINTS: i64 = 1;
/// Points for being retweeted.
pub const RETWEET_POINTS: i64 = 5;
/// Points for being replied to.
pub const REPLY_POINTS: i64 = 2;

/// The reputation workflow.
pub fn workflow() -> Workflow {
    let mut b = Workflow::builder("reputation");
    b.external_stream(TWEET_STREAM);
    b.mapper_publishing(MAPPER, &[TWEET_STREAM], &[DELTA_STREAM]);
    b.updater(SCORER, &[DELTA_STREAM]);
    b.build().expect("static workflow is valid")
}

/// M1: turn a tweet into score-delta events.
pub struct ReputationMapper {
    name: String,
}

impl ReputationMapper {
    /// Default-named mapper.
    pub fn new() -> Self {
        ReputationMapper { name: MAPPER.to_string() }
    }
}

impl Default for ReputationMapper {
    fn default() -> Self {
        Self::new()
    }
}

fn delta_payload(points: i64, reason: &str) -> Vec<u8> {
    Json::obj([("delta", Json::num(points as f64)), ("reason", Json::str(reason))])
        .to_compact()
        .into_bytes()
}

impl Mapper for ReputationMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, ctx: &mut dyn Emitter, event: &Event) {
        let Ok(v) = Json::from_payload(&event.value) else { return };
        let Some(author) = v.get("user").and_then(Json::as_str) else { return };
        // The author's activity.
        ctx.publish(DELTA_STREAM, Key::from(author), delta_payload(TWEET_POINTS, "tweet"));
        // Engagement credit to the referenced user.
        if let Some(target) = v.get("retweet_of").and_then(Json::as_str) {
            ctx.publish(
                DELTA_STREAM,
                Key::from(target),
                delta_payload(RETWEET_POINTS, "retweeted"),
            );
        }
        if let Some(target) = v.get("reply_to").and_then(Json::as_str) {
            ctx.publish(DELTA_STREAM, Key::from(target), delta_payload(REPLY_POINTS, "replied"));
        }
    }
}

/// U1: accumulate score deltas per user. Slate JSON:
/// `{"score": i, "events": n}`.
pub struct ReputationScorer {
    name: String,
}

impl ReputationScorer {
    /// Default-named updater.
    pub fn new() -> Self {
        ReputationScorer { name: SCORER.to_string() }
    }

    /// Read a score out of a slate (for tests and harnesses).
    pub fn score_of(slate: &Slate) -> i64 {
        slate.as_json().and_then(|v| v.get("score").and_then(Json::as_i64)).unwrap_or(0)
    }
}

impl Default for ReputationScorer {
    fn default() -> Self {
        Self::new()
    }
}

impl Updater for ReputationScorer {
    fn name(&self) -> &str {
        &self.name
    }

    fn update(&self, _ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        let delta = Json::from_payload(&event.value)
            .ok()
            .and_then(|v| v.get("delta").and_then(Json::as_i64))
            .unwrap_or(0);
        // Resident slate: mutate the parsed document in place; the bytes
        // materialize only at flush/read boundaries.
        let state =
            slate.obj_mut_or(|| Json::obj([("score", Json::num(0)), ("events", Json::num(0))]));
        let score = state.get("score").and_then(Json::as_i64).unwrap_or(0);
        let events = state.get("events").and_then(Json::as_u64).unwrap_or(0);
        state.set("score", Json::num((score + delta) as f64));
        state.set("events", Json::num((events + 1) as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::reference::ReferenceExecutor;

    fn tweet(ts: u64, author: &str, retweet_of: Option<&str>, reply_to: Option<&str>) -> Event {
        let mut fields =
            vec![("user".to_string(), Json::str(author)), ("text".to_string(), Json::str("hi"))];
        if let Some(t) = retweet_of {
            fields.push(("retweet_of".to_string(), Json::str(t)));
        }
        if let Some(t) = reply_to {
            fields.push(("reply_to".to_string(), Json::str(t)));
        }
        Event::new(TWEET_STREAM, ts, Key::from(author), Json::Obj(fields).to_compact().into_bytes())
    }

    #[test]
    fn scores_accumulate_per_user() {
        let wf = workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_mapper(ReputationMapper::new());
        exec.register_updater(ReputationScorer::new());
        // A tweets twice; B retweets A once; C replies to A once.
        exec.push_external(TWEET_STREAM, tweet(1, "A", None, None));
        exec.push_external(TWEET_STREAM, tweet(2, "A", None, None));
        exec.push_external(TWEET_STREAM, tweet(3, "B", Some("A"), None));
        exec.push_external(TWEET_STREAM, tweet(4, "C", None, Some("A")));
        exec.run_to_completion().unwrap();
        let score = |user: &str| {
            exec.slate(SCORER, &Key::from(user)).map(ReputationScorer::score_of).unwrap_or(0)
        };
        // A: 2 tweets (2) + retweeted (5) + replied (2) = 9.
        assert_eq!(score("A"), 2 * TWEET_POINTS + RETWEET_POINTS + REPLY_POINTS);
        assert_eq!(score("B"), TWEET_POINTS);
        assert_eq!(score("C"), TWEET_POINTS);
        assert_eq!(score("nobody"), 0);
    }

    #[test]
    fn real_time_table_matches_hand_count_on_generated_stream() {
        use muppet_workloads::tweets::TweetGenerator;
        let wf = workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_mapper(ReputationMapper::new());
        exec.register_updater(ReputationScorer::new());
        let mut gen = TweetGenerator::new(17, 30, 1000.0);
        let events = gen.take(TWEET_STREAM, 1000);
        // Hand-computed expectation.
        let mut expected: std::collections::BTreeMap<String, i64> = Default::default();
        for ev in &events {
            let v = Json::from_payload(&ev.value).unwrap();
            let author = v.get("user").unwrap().as_str().unwrap();
            *expected.entry(author.to_string()).or_default() += TWEET_POINTS;
            if let Some(t) = v.get("retweet_of").and_then(Json::as_str) {
                *expected.entry(t.to_string()).or_default() += RETWEET_POINTS;
            }
            if let Some(t) = v.get("reply_to").and_then(Json::as_str) {
                *expected.entry(t.to_string()).or_default() += REPLY_POINTS;
            }
        }
        for ev in events {
            exec.push_external(TWEET_STREAM, ev);
        }
        exec.run_to_completion().unwrap();
        let got: std::collections::BTreeMap<String, i64> = exec
            .slates_of(SCORER)
            .into_iter()
            .map(|(k, s)| (k.as_str().unwrap().to_string(), ReputationScorer::score_of(s)))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn malformed_tweets_are_skipped() {
        use muppet_core::operator::VecEmitter;
        let m = ReputationMapper::new();
        let mut em = VecEmitter::new();
        m.map(&mut em, &Event::new(TWEET_STREAM, 1, Key::from("x"), b"garbage".to_vec()));
        m.map(&mut em, &Event::new(TWEET_STREAM, 2, Key::from("x"), b"{}".to_vec()));
        assert!(em.is_empty());
    }
}
