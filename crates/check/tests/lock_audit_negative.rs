//! Negative controls for the lock-audit layer, in their own process:
//! the order graph and IO probe are process-global, so the manufactured
//! violations here must never share a binary with the zero-cycle /
//! zero-IO assertions over the real engine (`lock_audit.rs`).
//!
//! Without the feature this binary compiles to nothing.
#![cfg(feature = "lock-audit")]

use muppet_core::sync::{audit, Mutex};

#[test]
fn manufactured_inversion_and_locked_fsync_are_both_caught() {
    assert!(audit::enabled());
    // Two distinct construction sites → two distinct lock classes.
    let a = Mutex::new(0u64);
    let b = Mutex::new(0u64);

    // A → B, then B → A: the second ordering closes the cycle. One
    // thread, sequentially — detection needs no race, only the graph.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }
    let cycles = audit::order_cycles();
    assert!(!cycles.is_empty(), "the A→B→A inversion must be reported");
    assert!(
        cycles[0].contains("lock_audit_negative.rs"),
        "report names the construction sites:\n{}",
        cycles[0]
    );

    // An fsync-shaped call while holding a lock is reported…
    {
        let _g = a.lock();
        audit::blocking_io("fsync");
    }
    let io = audit::io_under_lock_events();
    assert_eq!(io.len(), 1, "locked IO must be reported: {io:?}");
    assert!(io[0].contains("fsync"), "{}", io[0]);

    // …unless the site is sanctioned via `io_allowed` (group commit).
    {
        let _g = a.lock();
        audit::io_allowed(|| audit::blocking_io("fsync"));
    }
    assert_eq!(audit::io_under_lock_events().len(), 1, "sanctioned window adds no event");
}
