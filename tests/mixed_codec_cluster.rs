//! Mixed-version cluster: a JSON-pinned node (wire-identical to a
//! pre-v5 peer — legacy hello, no codec negotiation, text payloads) and
//! an MBF-capable v5 node run one workflow over real TCP loopback.
//! Rolling upgrades look exactly like this, so the invariant is total:
//! exact per-key counts against ground truth, zero loss, in both
//! traffic directions — binary values transcode to text at the JSON
//! boundary and every reader sniffs per payload.

use std::collections::BTreeMap;
use std::time::Duration;

use muppet::apps::retailer::{self, Counter, RetailerMapper};
use muppet::prelude::*;
use muppet::workloads::checkins::CheckinGenerator;

fn start_node(topology: &Topology, local: usize, codec: CodecChoice) -> Engine {
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: topology.len(),
        workers_per_machine: 2,
        workers_per_op: 2,
        transport: TransportKind::Tcp { topology: topology.clone(), local },
        overflow: OverflowPolicy::SourceThrottle,
        queue_capacity: 512,
        wire_codec: codec,
        ..EngineConfig::default()
    };
    Engine::start(
        retailer::workflow(),
        OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new()),
        cfg,
        None,
    )
    .unwrap()
}

#[test]
fn json_pinned_and_mbf_nodes_agree_exactly_on_counts() {
    let topology = Topology::loopback_ephemeral(2, false).unwrap();
    // Node 0 is the "old" peer: pinned to the text wire, it sends the
    // pre-v5 hello byte-for-byte and never learns about MBF. Node 1 is
    // an upgraded node running full-binary `Mbf`: offers MBF, stores
    // slates in MBF, and converts container-shaped event values to MBF
    // at ingest — so its frames toward node 0 must transcode back to
    // text on the way out.
    let old = start_node(&topology, 0, CodecChoice::Json);
    let new = start_node(&topology, 1, CodecChoice::Mbf);

    let mut gen = CheckinGenerator::new(4242, 600, 2000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, 6000);
    let truth: BTreeMap<String, u64> =
        CheckinGenerator::expected_retailer_counts(&events).into_iter().collect();

    // Both directions cross the mixed wire: half the source traffic
    // enters at the old node (JSON values routed partly to the MBF
    // node), half at the new node (MBF values routed partly to the
    // JSON-pinned node, transcoded to text at its connection).
    for (i, ev) in events.into_iter().enumerate() {
        if i % 2 == 0 {
            old.submit(ev).unwrap();
        } else {
            new.submit(ev).unwrap();
        }
    }
    assert!(old.drain(Duration::from_secs(60)), "old node must drain");
    assert!(new.drain(Duration::from_secs(60)), "new node must drain");
    // A node's drain can return while frames are still in TCP flight
    // toward it, so wait for the cluster-wide processed count to go
    // stable before reading counts (the x15/x22 quiesce idiom).
    let total = || old.stats().processed + new.stats().processed;
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let mut last = total();
    let mut stable_since = std::time::Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(20));
        let now = total();
        if now != last {
            last = now;
            stable_since = std::time::Instant::now();
        } else if stable_since.elapsed() > Duration::from_millis(400) && now > 0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "mixed cluster did not quiesce");
    }

    // Exact counts: read each slate from the machine that owns it.
    let mut got = BTreeMap::new();
    for (retailer_name, _) in muppet::workloads::checkins::RETAILER_VENUES {
        let key = Key::from(*retailer_name);
        let owner = old.owner_machine(retailer::COUNTER, &key).expect("routable key");
        let node = if owner == 0 { &old } else { &new };
        if let Some(bytes) = node.read_slate(retailer::COUNTER, &key) {
            let count = String::from_utf8(bytes).unwrap().parse::<u64>().unwrap();
            got.insert(retailer_name.to_string(), count);
        }
    }
    assert_eq!(got, truth, "mixed-codec cluster must be exact");

    let old_stats = old.shutdown();
    let new_stats = new.shutdown();
    for (name, stats) in [("old", &old_stats), ("new", &new_stats)] {
        assert_eq!(stats.dropped_overflow, 0, "{name}: zero-loss config must not drop");
        assert_eq!(
            stats.lost_machine_failure + stats.lost_in_queues,
            0,
            "{name}: nothing may be lost crossing the mixed wire"
        );
    }
}
