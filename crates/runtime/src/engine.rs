//! The Muppet engines: distributed execution of MapUpdate applications
//! (§4.1, §4.3, §4.5) over a simulated in-process cluster.
//!
//! ## What is faithful to the paper
//!
//! * **Routing**: every worker shares one hash function mapping
//!   ⟨event key, destination function⟩ to a destination; events pass
//!   *directly* between workers — no master on the data path (§4.1).
//! * **Muppet 1.0**: one worker = one function; a consistent ring per
//!   function spreads its keys over its workers; each updater-worker owns a
//!   private slate cache (the machine's budget split evenly — the §4.5
//!   fragmentation problem).
//! * **Muppet 2.0**: per machine, a pool of threads each able to run any
//!   function; two-choice dispatch into primary/secondary queues; a single
//!   central slate cache per machine; a background store-flusher thread.
//! * **Failure handling** (§4.3): senders detect dead machines on send,
//!   report to the master, the master broadcast removes the machine from
//!   the rings, the undeliverable event is lost and logged; queued events
//!   on the dead machine are lost; unflushed slate changes are lost.
//! * **Queue overflow** (§4.3/§5): drop-and-log, overflow stream, or
//!   source throttling (external intake blocks; internal events force
//!   through to avoid the §5 self-feeding deadlock).
//!
//! ## What is simulated
//!
//! Machines are structs; "the network" is a queue hand-off. See DESIGN.md.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use muppet_core::config::{AppConfig, ConsistencySpec, FlushSpec};
use muppet_core::error::{Error, Result};
use muppet_core::event::{Event, Key, StreamId};
use muppet_core::operator::{Mapper, Updater, VecEmitter};
use muppet_core::workflow::{OpId, OpKind, Workflow};
use muppet_net::frame::WireEvent;
use muppet_net::tcp::{BatchConfig, TcpListenerHandle, TcpTransport};
use muppet_net::topology::Topology;
use muppet_net::transport::{ClusterHandler, InProcessTransport, MachineId, NetError, Transport};
use muppet_slatestore::cluster::StoreCluster;
use muppet_slatestore::ring::ConsistentRing;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::cache::{FlushPolicy, NullBackend, SlateBackend, SlateCache};
use crate::dispatch::{choose_between, RouteHash};
use crate::master::Master;
use crate::metrics::{Histogram, LatencySummary};
use crate::netstore::RemoteBackend;
use crate::overflow::{DropLog, OverflowAction, OverflowPolicy};
use crate::queue::EventQueue;

/// Which generation of Muppet to run (§4.5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// Worker-per-function, per-worker slate caches.
    Muppet1,
    /// Thread pool per machine, two-choice dispatch, central cache.
    #[default]
    Muppet2,
}

/// Which wire connects the cluster's machines.
#[derive(Clone, Debug, Default)]
pub enum TransportKind {
    /// Every machine lives in this process; "the network" is a synchronous
    /// queue hand-off (the seed behaviour, now routed through the
    /// [`Transport`] trait).
    #[default]
    InProcess,
    /// Real TCP: this engine process owns exactly one machine (`local`) of
    /// a static cluster; events to other machines cross actual sockets,
    /// and connection errors drive the §4.3 failure protocol.
    Tcp {
        /// The static cluster layout (`topology.len()` must equal
        /// [`EngineConfig::machines`]).
        topology: Topology,
        /// The machine this process runs.
        local: MachineId,
    },
}

/// Engine deployment configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Muppet 1.0 or 2.0.
    pub kind: EngineKind,
    /// Machines in the cluster (simulated in-process, or cluster-wide
    /// count in TCP mode).
    pub machines: usize,
    /// The wire between machines.
    pub transport: TransportKind,
    /// TCP mode: which machine hosts the durable slate store service.
    /// Nodes other than the host flush/load their slates through the
    /// transport's store frames; `None` means every node uses whatever
    /// store was passed to [`Engine::start`] directly (the in-process
    /// arrangement).
    pub store_host: Option<MachineId>,
    /// Muppet 2.0: worker threads per machine ("as large ... as the
    /// parallelization of the application code allows", §4.5).
    pub workers_per_machine: usize,
    /// Muppet 1.0: workers per map/update function, spread round-robin
    /// across machines (Figure 2 runs 3 mappers + 2 updaters).
    pub workers_per_op: usize,
    /// Per-worker input queue capacity (events).
    pub queue_capacity: usize,
    /// Slate-cache budget per machine (slates). Muppet 1.0 splits this
    /// evenly across the machine's updater workers; 2.0 gives it to the
    /// central cache.
    pub slate_cache_capacity: usize,
    /// Flush policy for dirty slates.
    pub flush: FlushPolicy,
    /// Queue-overflow policy.
    pub overflow: OverflowPolicy,
    /// Whether to measure end-to-end latency per updater delivery.
    pub record_latency: bool,
    /// TCP mode: events coalesced into one wire frame at most (the
    /// batching senders' size trigger; 1 = unbatched). Ignored
    /// in-process.
    pub net_batch_max: usize,
    /// TCP mode: age bound in microseconds — a queued outbound event
    /// never waits longer than this for its batch to flush (the latency
    /// side of the size/age policy). Ignored in-process.
    pub net_flush_us: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            kind: EngineKind::Muppet2,
            machines: 2,
            transport: TransportKind::InProcess,
            store_host: None,
            workers_per_machine: 4,
            workers_per_op: 2,
            queue_capacity: 4096,
            slate_cache_capacity: 100_000,
            flush: FlushPolicy::default(),
            overflow: OverflowPolicy::default(),
            record_latency: true,
            net_batch_max: BatchConfig::default().batch_max,
            net_flush_us: BatchConfig::default().flush_us,
        }
    }
}

impl EngineConfig {
    /// Derive an engine configuration from an application config file.
    pub fn from_app_config(app: &AppConfig, kind: EngineKind) -> EngineConfig {
        EngineConfig {
            kind,
            machines: app.machines,
            transport: TransportKind::InProcess,
            store_host: None,
            workers_per_machine: app.workers_per_machine,
            workers_per_op: app.workers_per_machine, // 1.0 interpretation
            queue_capacity: app.queue_capacity,
            slate_cache_capacity: app.slate_cache_capacity,
            flush: match app.flush {
                FlushSpec::WriteThrough => FlushPolicy::WriteThrough,
                FlushSpec::IntervalMs(ms) => FlushPolicy::IntervalMs(ms),
                FlushSpec::OnEvict => FlushPolicy::OnEvict,
            },
            overflow: OverflowPolicy::default(),
            record_latency: true,
            net_batch_max: BatchConfig::default().batch_max,
            net_flush_us: BatchConfig::default().flush_us,
        }
    }
}

/// Map the config consistency onto the store's enum (convenience for
/// experiment harnesses).
pub fn consistency_of(spec: ConsistencySpec) -> muppet_slatestore::cluster::Consistency {
    match spec {
        ConsistencySpec::One => muppet_slatestore::cluster::Consistency::One,
        ConsistencySpec::Quorum => muppet_slatestore::cluster::Consistency::Quorum,
        ConsistencySpec::All => muppet_slatestore::cluster::Consistency::All,
    }
}

/// Registered operator implementations for a workflow.
#[derive(Default)]
pub struct OperatorSet {
    mappers: Vec<Arc<dyn Mapper>>,
    updaters: Vec<Arc<dyn Updater>>,
}

impl OperatorSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a map function implementation.
    pub fn mapper(mut self, m: impl Mapper) -> Self {
        self.mappers.push(Arc::new(m));
        self
    }

    /// Add an update function implementation.
    pub fn updater(mut self, u: impl Updater) -> Self {
        self.updaters.push(Arc::new(u));
        self
    }

    /// Add a pre-boxed mapper.
    pub fn mapper_arc(mut self, m: Arc<dyn Mapper>) -> Self {
        self.mappers.push(m);
        self
    }

    /// Add a pre-boxed updater.
    pub fn updater_arc(mut self, u: Arc<dyn Updater>) -> Self {
        self.updaters.push(u);
        self
    }
}

/// Resolved operator instance.
enum OpInstance {
    Map(Arc<dyn Mapper>),
    Update { updater: Arc<dyn Updater>, name: Arc<str>, ttl_secs: Option<u64> },
}

/// A queued unit of work: deliver `event` to operator `op`.
struct Packet {
    op: OpId,
    event: Event,
    /// Engine-relative µs at external injection (latency measurement).
    injected_us: u64,
    /// True once redirected to an overflow stream (no double redirects).
    redirected: bool,
}

/// Per-machine state.
struct Machine {
    /// Whether this machine's queues/caches/threads live in this process.
    /// Always true in-process; exactly one machine is local in TCP mode
    /// (the others are bookkeeping stubs for ring/liveness state).
    local: bool,
    alive: AtomicBool,
    queues: Vec<Arc<EventQueue<Packet>>>,
    /// Route each thread is currently processing (two-choice rule 1).
    /// Encoding: 0 = idle, otherwise `route.wrapping_add(1)` — lock-free
    /// because the dispatcher reads these on every send.
    in_flight: Vec<AtomicU64>,
    /// 2.0: one central cache. 1.0: per-thread caches (None for mapper
    /// threads).
    central_cache: Option<Arc<SlateCache>>,
    worker_caches: Vec<Option<Arc<SlateCache>>>,
    /// 1.0: the single op each thread runs (None in 2.0).
    thread_ops: Vec<Option<OpId>>,
}

/// 1.0 worker slot: global id → (machine, thread).
#[derive(Clone, Copy, Debug)]
struct WorkerSlot {
    machine: usize,
    thread: usize,
}

/// Cumulative engine counters.
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    processed: AtomicU64,
    emitted: AtomicU64,
    lost_machine_failure: AtomicU64,
    lost_in_queues: AtomicU64,
    dropped_overflow: AtomicU64,
    redirected_overflow: AtomicU64,
    throttle_waits: AtomicU64,
    publish_errors: AtomicU64,
}

/// Public snapshot of engine statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// External events accepted via `submit`.
    pub submitted: u64,
    /// Operator invocations completed.
    pub processed: u64,
    /// Events emitted by operators.
    pub emitted: u64,
    /// Events lost to machine failures (undeliverable sends).
    pub lost_machine_failure: u64,
    /// Events lost inside a crashed machine's queues.
    pub lost_in_queues: u64,
    /// Events dropped by the overflow policy.
    pub dropped_overflow: u64,
    /// Events redirected to the overflow stream.
    pub redirected_overflow: u64,
    /// Times an external producer blocked on source throttling.
    pub throttle_waits: u64,
    /// Emissions to unknown/external streams (discarded, counted).
    pub publish_errors: u64,
    /// End-to-end latency (injection → updater completion).
    pub latency: LatencySummary,
    /// Aggregated slate-cache stats.
    pub cache: crate::cache::CacheStats,
    /// Dirty slates that never reached the store (loss bound, §4.3).
    pub dirty_slates: u64,
    /// Wire-level counters (all zero for the in-process transport).
    pub net: NetSummary,
}

/// Snapshot of the TCP transport's counters (see `muppet_net::TcpStats`).
#[derive(Clone, Copy, Debug, Default)]
pub struct NetSummary {
    /// Frames written to peers (events, batches, and request frames).
    pub frames_sent: u64,
    /// Frames received by this node's listener.
    pub frames_received: u64,
    /// Multi-event frames written by the batching senders.
    pub batches_sent: u64,
    /// Events shipped through the batching path.
    pub batched_events_sent: u64,
    /// Wire failures that triggered §4.3 detection.
    pub send_failures: u64,
    /// Times a producer blocked on a full peer outbox (backpressure).
    pub queue_full_waits: u64,
    /// Gauge: events accepted for send but not yet on the wire.
    pub outbound_backlog: u64,
}

impl Machine {
    /// A stub for a machine that lives in another process.
    fn remote_stub() -> Machine {
        Machine {
            local: false,
            alive: AtomicBool::new(true),
            queues: Vec::new(),
            in_flight: Vec::new(),
            central_cache: None,
            worker_caches: Vec::new(),
            thread_ops: Vec::new(),
        }
    }
}

struct Shared {
    wf: Workflow,
    ops: Vec<OpInstance>,
    cfg: EngineConfig,
    machines: Vec<Machine>,
    /// The wire (in-process hand-off or TCP).
    transport: Arc<dyn Transport>,
    /// TCP mode: the concrete transport, for wire-level stats snapshots.
    tcp: Option<Arc<TcpTransport>>,
    /// TCP mode: the locally hosted store service, served to peers via
    /// the transport's store frames.
    host_store: Option<Arc<StoreCluster>>,
    /// 2.0: ring over machines.
    machine_ring: RwLock<ConsistentRing>,
    /// 1.0: ring per op over global worker-slot ids.
    op_rings: RwLock<Vec<ConsistentRing>>,
    worker_slots: Vec<WorkerSlot>,
    master: Master,
    /// Events enqueued but not yet fully processed.
    pending: AtomicI64,
    stopping: AtomicBool,
    counters: Counters,
    latency: Histogram,
    drop_log: DropLog,
    start: Instant,
    /// Source-throttling gate: producers wait here when queues are full.
    throttle_mutex: Mutex<()>,
    throttle_cv: Condvar,
}

impl Shared {
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Total events the cluster's queues are sized to hold; the source-
    /// throttling high-water mark.
    fn total_queue_budget(&self) -> usize {
        self.machines.iter().map(|m| m.queues.len() * self.cfg.queue_capacity).sum()
    }
}

/// A running Muppet engine.
pub struct Engine {
    shared: Arc<Shared>,
    /// Keeps the transport's weak handler registration alive.
    _handler: Arc<EngineHandler>,
    /// TCP mode: the node's frame listener (stopped on shutdown/drop).
    listener: Mutex<Option<TcpListenerHandle>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    flushers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Engine {
    /// Start an engine for `workflow` with the given operator
    /// implementations. `store` attaches the durable slate store; without
    /// it, slates exist only in the caches (unless
    /// [`EngineConfig::store_host`] points at a remote store service).
    pub fn start(
        workflow: Workflow,
        ops: OperatorSet,
        cfg: EngineConfig,
        store: Option<Arc<StoreCluster>>,
    ) -> Result<Engine> {
        // Build the wire first: machine materialization below depends on
        // which machines are local.
        let (transport, tcp): (Arc<dyn Transport>, Option<Arc<TcpTransport>>) = match &cfg.transport
        {
            TransportKind::InProcess => (Arc::new(InProcessTransport::new()), None),
            TransportKind::Tcp { topology, local } => {
                if topology.len() != cfg.machines {
                    return Err(Error::Config(format!(
                        "topology has {} nodes but EngineConfig.machines = {}",
                        topology.len(),
                        cfg.machines
                    )));
                }
                let batch = BatchConfig {
                    batch_max: cfg.net_batch_max,
                    flush_us: cfg.net_flush_us,
                    // Bound each peer outbox like a worker queue: the
                    // backlog participates in the same throttle budget.
                    queue_capacity: cfg.queue_capacity.max(1),
                };
                let tcp = TcpTransport::new_with_batching(topology.clone(), *local, batch)
                    .map_err(Error::Config)?;
                (Arc::clone(&tcp) as Arc<dyn Transport>, Some(tcp))
            }
        };
        let is_local = |m: usize| transport.is_local(m);

        // Pick the slate backend: a directly attached store, a remote
        // store service reached through the transport, or nothing.
        let backend: Arc<dyn SlateBackend> =
            match (&store, cfg.store_host, transport.local_machine()) {
                (Some(cluster), _, _) => Arc::clone(cluster) as Arc<dyn SlateBackend>,
                (None, Some(host), Some(local)) if host != local => {
                    Arc::new(RemoteBackend::new(Arc::clone(&transport), host))
                }
                _ => Arc::new(NullBackend),
            };
        let has_backend = store.is_some()
            || matches!((cfg.store_host, transport.local_machine()), (Some(h), Some(l)) if h != l);

        // Resolve operator implementations against the workflow.
        let mut instances: Vec<Option<OpInstance>> =
            (0..workflow.ops().len()).map(|_| None).collect();
        for m in ops.mappers {
            let id = workflow
                .op_id(m.name())
                .ok_or_else(|| Error::UnknownOperator(m.name().to_string()))?;
            if workflow.op(id).kind != OpKind::Map {
                return Err(Error::OperatorMismatch {
                    expected: "a map function".into(),
                    got: m.name().to_string(),
                });
            }
            instances[id] = Some(OpInstance::Map(m));
        }
        for u in ops.updaters {
            let id = workflow
                .op_id(u.name())
                .ok_or_else(|| Error::UnknownOperator(u.name().to_string()))?;
            if workflow.op(id).kind != OpKind::Update {
                return Err(Error::OperatorMismatch {
                    expected: "an update function".into(),
                    got: u.name().to_string(),
                });
            }
            let ttl = workflow.op(id).ttl_secs.or(u.slate_ttl_secs());
            let name: Arc<str> = Arc::from(u.name());
            instances[id] = Some(OpInstance::Update { updater: u, name, ttl_secs: ttl });
        }
        let ops: Vec<OpInstance> = instances
            .into_iter()
            .enumerate()
            .map(|(id, inst)| {
                inst.ok_or_else(|| Error::UnknownOperator(workflow.op(id).name.clone()))
            })
            .collect::<Result<_>>()?;

        // Build machines + worker layout.
        let mut machines = Vec::with_capacity(cfg.machines);
        let mut worker_slots = Vec::new();
        let mut op_rings = Vec::new();
        match cfg.kind {
            EngineKind::Muppet2 => {
                for m in 0..cfg.machines {
                    if !is_local(m) {
                        machines.push(Machine::remote_stub());
                        continue;
                    }
                    let threads = cfg.workers_per_machine.max(1);
                    machines.push(Machine {
                        local: true,
                        alive: AtomicBool::new(true),
                        queues: (0..threads)
                            .map(|_| Arc::new(EventQueue::new(cfg.queue_capacity)))
                            .collect(),
                        in_flight: (0..threads).map(|_| AtomicU64::new(0)).collect(),
                        central_cache: Some(Arc::new(SlateCache::new(
                            cfg.slate_cache_capacity,
                            cfg.flush,
                            Arc::clone(&backend),
                        ))),
                        worker_caches: (0..threads).map(|_| None).collect(),
                        thread_ops: (0..threads).map(|_| None).collect(),
                    });
                }
            }
            EngineKind::Muppet1 => {
                // Assign workers_per_op workers per function, round-robin
                // over machines. Machine thread lists grow as slots land.
                let mut per_machine_threads: Vec<Vec<OpId>> = vec![Vec::new(); cfg.machines];
                let mut slot_positions: Vec<Vec<(usize, usize)>> = Vec::new(); // per op: (machine, thread)
                let mut rr = 0usize;
                for op_id in 0..workflow.ops().len() {
                    let mut positions = Vec::new();
                    for _ in 0..cfg.workers_per_op.max(1) {
                        let m = rr % cfg.machines;
                        rr += 1;
                        let thread = per_machine_threads[m].len();
                        per_machine_threads[m].push(op_id);
                        positions.push((m, thread));
                    }
                    slot_positions.push(positions);
                }
                // Updater-worker cache budget: split the machine budget
                // evenly across that machine's updater threads (§4.5).
                let updater_threads_per_machine: Vec<usize> = per_machine_threads
                    .iter()
                    .map(|threads| {
                        threads.iter().filter(|&&op| workflow.op(op).kind == OpKind::Update).count()
                    })
                    .collect();
                for (m, thread_ops) in per_machine_threads.iter().enumerate() {
                    if !is_local(m) {
                        machines.push(Machine::remote_stub());
                        continue;
                    }
                    let n_upd = updater_threads_per_machine[m].max(1);
                    let per_worker_cap = (cfg.slate_cache_capacity / n_upd).max(1);
                    // A machine can end up with zero assigned workers (more
                    // machines than worker slots); keep one idle thread so
                    // every per-thread vector stays consistent.
                    let n_threads = thread_ops.len().max(1);
                    let mut worker_caches: Vec<Option<Arc<SlateCache>>> = thread_ops
                        .iter()
                        .map(|&op| {
                            if workflow.op(op).kind == OpKind::Update {
                                Some(Arc::new(SlateCache::new(
                                    per_worker_cap,
                                    cfg.flush,
                                    Arc::clone(&backend),
                                )))
                            } else {
                                None
                            }
                        })
                        .collect();
                    worker_caches.resize_with(n_threads, || None);
                    let mut bound_ops: Vec<Option<OpId>> =
                        thread_ops.iter().map(|&op| Some(op)).collect();
                    bound_ops.resize(n_threads, None);
                    machines.push(Machine {
                        local: true,
                        alive: AtomicBool::new(true),
                        queues: (0..n_threads)
                            .map(|_| Arc::new(EventQueue::new(cfg.queue_capacity)))
                            .collect(),
                        in_flight: (0..n_threads).map(|_| AtomicU64::new(0)).collect(),
                        central_cache: None,
                        worker_caches,
                        thread_ops: bound_ops,
                    });
                }
                // Global worker slots + per-op rings over slot ids.
                for positions in &slot_positions {
                    let mut ring = ConsistentRing::new(0, 32);
                    for &(machine, thread) in positions {
                        let slot_id = worker_slots.len();
                        worker_slots.push(WorkerSlot { machine, thread });
                        ring.add(slot_id);
                    }
                    op_rings.push(ring);
                }
            }
        }

        let shared = Arc::new(Shared {
            machine_ring: RwLock::new(ConsistentRing::new(cfg.machines, 64)),
            op_rings: RwLock::new(op_rings),
            worker_slots,
            wf: workflow,
            ops,
            machines,
            transport: Arc::clone(&transport),
            tcp: tcp.clone(),
            host_store: store.clone(),
            master: Master::new(),
            pending: AtomicI64::new(0),
            stopping: AtomicBool::new(false),
            counters: Counters::default(),
            latency: Histogram::new(),
            drop_log: DropLog::new(1024),
            start: Instant::now(),
            throttle_mutex: Mutex::new(()),
            throttle_cv: Condvar::new(),
            cfg,
        });

        // Wire the transport back into this engine.
        let handler = Arc::new(EngineHandler(Arc::clone(&shared)));
        transport.register(Arc::downgrade(&handler) as std::sync::Weak<dyn ClusterHandler>);

        // Spawn worker threads (local machines only; remote stubs have no
        // queues).
        let mut threads = Vec::new();
        for m in 0..shared.machines.len() {
            for t in 0..shared.machines[m].queues.len() {
                let sh = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("muppet-m{m}-w{t}"))
                        .spawn(move || worker_loop(sh, m, t))
                        .expect("spawn worker"),
                );
            }
        }
        // Spawn background flusher threads (one per local machine) when the
        // policy is interval-based and a backend (direct or remote) is
        // attached.
        let mut flushers = Vec::new();
        if let FlushPolicy::IntervalMs(ms) = shared.cfg.flush {
            if has_backend {
                for m in 0..shared.machines.len() {
                    if !shared.machines[m].local {
                        continue;
                    }
                    let sh = Arc::clone(&shared);
                    let interval = Duration::from_millis(ms.max(1));
                    flushers.push(
                        std::thread::Builder::new()
                            .name(format!("muppet-flusher-{m}"))
                            .spawn(move || flusher_loop(sh, m, interval))
                            .expect("spawn flusher"),
                    );
                }
            }
        }
        // TCP mode: open this node's inbound wire last, so peers never see
        // a half-initialized engine.
        let listener = match &tcp {
            Some(tcp) => Some(
                tcp.start_listener()
                    .map_err(|e| Error::Config(format!("cannot bind event listener: {e}")))?,
            ),
            None => None,
        };
        Ok(Engine {
            shared,
            _handler: handler,
            listener: Mutex::new(listener),
            threads: Mutex::new(threads),
            flushers: Mutex::new(flushers),
        })
    }

    /// Inject one external event (the paper's special source mapper M0
    /// reading the input stream, §4.1). Routes to every subscriber of
    /// `event.stream`, which must be a declared external stream.
    ///
    /// Under [`OverflowPolicy::SourceThrottle`], this call *blocks* while
    /// the cluster is backlogged beyond its aggregate queue budget — the
    /// §5 source throttling: "Muppet ... can slow down the pace at which
    /// it consumes events from its input streams ... until the hotspot
    /// updater has a chance to catch up." Internal events never block
    /// (§5's deadlock argument), so a *downstream* hotspot surfaces here,
    /// at the source, via the global in-flight count.
    pub fn submit(&self, event: Event) -> Result<()> {
        let stream = event.stream.clone();
        if !self.shared.wf.is_external(stream.as_str()) {
            return Err(Error::ExternalStreamViolation(stream.as_str().to_string()));
        }
        if self.shared.cfg.overflow == OverflowPolicy::SourceThrottle {
            let budget = self.shared.total_queue_budget() as i64;
            // The in-flight count includes the transport's outbound
            // backlog (TCP mode): events parked in per-peer batching
            // outboxes are cluster load exactly like queued events, so a
            // slow wire throttles the source instead of growing buffers.
            while self.shared.pending.load(Ordering::Acquire)
                + self.shared.transport.outbound_backlog() as i64
                > budget
            {
                if self.shared.stopping.load(Ordering::Acquire) {
                    break;
                }
                self.shared.counters.throttle_waits.fetch_add(1, Ordering::Relaxed);
                let mut guard = self.shared.throttle_mutex.lock();
                self.shared.throttle_cv.wait_for(&mut guard, Duration::from_millis(1));
            }
        }
        let injected_us = self.shared.now_us();
        self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let subscribers = self.shared.wf.subscribers_of(stream.as_str()).to_vec();
        for op in subscribers {
            let packet = Packet { op, event: event.clone(), injected_us, redirected: false };
            try_send(&self.shared, packet, true);
        }
        Ok(())
    }

    /// Convenience: submit with the engine assigning the timestamp (µs
    /// since engine start).
    pub fn submit_kv(&self, stream: &str, key: Key, value: impl Into<Bytes>) -> Result<()> {
        let ts = self.shared.now_us();
        self.submit(Event::new(stream, ts, key, value))
    }

    /// Wait until all in-flight events finish (or `timeout` elapses) —
    /// including events still parked in the transport's outbound batching
    /// queues, which have not reached their destination machine yet.
    /// Returns true on a full drain.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.shared.pending.load(Ordering::Acquire) > 0
            || self.shared.transport.outbound_backlog() > 0
        {
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }

    /// Read a slate's current value from the owning machine's cache —
    /// the §4.4 live read ("from Muppet's slate cache ... rather than from
    /// the durable key-value store to ensure an up-to-date reply"). When
    /// the owning machine lives in another process (TCP mode), the read
    /// crosses the wire as a `SlateGet` frame.
    pub fn read_slate(&self, updater: &str, key: &Key) -> Option<Vec<u8>> {
        let op = self.shared.wf.op_id(updater)?;
        if self.shared.wf.op(op).kind != OpKind::Update {
            return None;
        }
        let route = key.route_hash(updater);
        let owner = self.owner_machine(updater, key)?;
        if self.shared.transport.is_local(owner) {
            let machine = &self.shared.machines[owner];
            match self.shared.cfg.kind {
                EngineKind::Muppet2 => machine.central_cache.as_ref()?.read(op, key),
                EngineKind::Muppet1 => {
                    let slot_id = self.shared.op_rings.read().get(op)?.owner(route)?;
                    let slot = self.shared.worker_slots[slot_id];
                    machine.worker_caches[slot.thread].as_ref()?.read(op, key)
                }
            }
        } else {
            self.shared.transport.read_slate(owner, updater, key.as_bytes()).ok().flatten()
        }
    }

    /// The machine whose rings currently own ⟨`updater`, `key`⟩ — where
    /// an event with that key would be routed and where its slate lives.
    /// `None` for unknown operators or once every owner has failed.
    pub fn owner_machine(&self, updater: &str, key: &Key) -> Option<usize> {
        let op = self.shared.wf.op_id(updater)?;
        let route = key.route_hash(updater);
        match self.shared.cfg.kind {
            EngineKind::Muppet2 => self.shared.machine_ring.read().owner(route),
            EngineKind::Muppet1 => {
                let slot_id = self.shared.op_rings.read().get(op)?.owner(route)?;
                Some(self.shared.worker_slots[slot_id].machine)
            }
        }
    }

    /// All cached keys of one updater across machines (bulk reads, §5).
    pub fn cached_keys(&self, updater: &str) -> Vec<Key> {
        let Some(op) = self.shared.wf.op_id(updater) else { return Vec::new() };
        let mut keys = Vec::new();
        for m in &self.shared.machines {
            if !m.alive.load(Ordering::Acquire) {
                continue;
            }
            if let Some(cache) = &m.central_cache {
                keys.extend(cache.keys_of(op));
            }
            for cache in m.worker_caches.iter().flatten() {
                keys.extend(cache.keys_of(op));
            }
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Bulk-dump every *cached* slate of one updater — §5's "Bulk Reading
    /// of Slates" concern: "repeated HTTP slate fetches can be expensive
    /// ... or difficult (because the query agent must know all the slate
    /// keys in advance)". Returns ⟨key, bytes⟩ in key order; empty slates
    /// are skipped. Slates already evicted from the caches live only in
    /// the store (see `StoreCluster::scan_column` for that path).
    pub fn dump_slates(&self, updater: &str) -> Vec<(Key, Vec<u8>)> {
        let Some(op) = self.shared.wf.op_id(updater) else { return Vec::new() };
        let read_from = |cache: &crate::cache::SlateCache, out: &mut Vec<(Key, Vec<u8>)>| {
            for key in cache.keys_of(op) {
                if let Some(bytes) = cache.read(op, &key) {
                    out.push((key, bytes));
                }
            }
        };
        let mut out = Vec::new();
        for m in &self.shared.machines {
            if !m.alive.load(Ordering::Acquire) {
                continue;
            }
            if let Some(cache) = &m.central_cache {
                read_from(cache, &mut out);
            }
            for cache in m.worker_caches.iter().flatten() {
                read_from(cache, &mut out);
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out.dedup_by(|a, b| a.0 == b.0);
        out
    }

    /// Kill a machine abruptly: its queued events are lost, its threads
    /// stop, its unflushed slates are lost (§4.3). Routing updates lazily —
    /// the next send to the dead machine triggers the failure report.
    /// In TCP mode this only makes sense for the local machine (killing a
    /// peer means killing its process).
    pub fn kill_machine(&self, machine: usize) {
        let m = &self.shared.machines[machine];
        if !m.local {
            return;
        }
        if !m.alive.swap(false, Ordering::AcqRel) {
            return;
        }
        let mut lost = 0u64;
        for q in &m.queues {
            let dropped = q.drain_all();
            lost += dropped.len() as u64;
            q.notify();
        }
        self.shared.counters.lost_in_queues.fetch_add(lost, Ordering::Relaxed);
        self.shared.pending.fetch_sub(lost as i64, Ordering::AcqRel);
    }

    /// Number of machines configured.
    pub fn machine_count(&self) -> usize {
        self.shared.machines.len()
    }

    /// Whether the master has been told about a machine failure yet
    /// (detection is send-driven, §4.3). On non-master TCP nodes this
    /// reflects receipt of the master's broadcast.
    pub fn failure_detected(&self, machine: usize) -> bool {
        self.shared.master.is_failed(machine)
    }

    /// Whether `machine` is still a member of the routing ring (false once
    /// the §4.3 broadcast dropped it).
    pub fn ring_contains(&self, machine: usize) -> bool {
        self.shared.machine_ring.read().contains(machine)
    }

    /// The machine this engine runs locally (`None` in-process, where all
    /// machines are local).
    pub fn local_machine(&self) -> Option<usize> {
        self.shared.transport.local_machine()
    }

    /// Machine ids known dead, in id order.
    pub fn failed_machines(&self) -> Vec<usize> {
        self.shared.master.failed_machines()
    }

    /// Microseconds since the engine started (the engine's store clock).
    pub fn now_us(&self) -> u64 {
        self.shared.now_us()
    }

    /// Peak queue occupancy across all workers (the §4.5 status
    /// information: "the event count of the largest event queues").
    pub fn max_queue_high_water(&self) -> usize {
        self.shared
            .machines
            .iter()
            .flat_map(|m| m.queues.iter())
            .map(|q| q.high_water())
            .max()
            .unwrap_or(0)
    }

    /// Snapshot engine statistics.
    pub fn stats(&self) -> EngineStats {
        let c = &self.shared.counters;
        let mut cache = crate::cache::CacheStats::default();
        let mut dirty = 0u64;
        for m in &self.shared.machines {
            let mut add = |s: crate::cache::CacheStats| {
                cache.hits += s.hits;
                cache.misses += s.misses;
                cache.store_loads += s.store_loads;
                cache.evictions += s.evictions;
                cache.flush_writes += s.flush_writes;
                cache.ttl_resets += s.ttl_resets;
                cache.entries += s.entries;
                cache.dirty += s.dirty;
            };
            if let Some(central) = &m.central_cache {
                add(central.stats());
            }
            for wc in m.worker_caches.iter().flatten() {
                add(wc.stats());
            }
            dirty = cache.dirty;
        }
        let net = match &self.shared.tcp {
            Some(tcp) => {
                let t = tcp.stats();
                NetSummary {
                    frames_sent: t.frames_sent.load(Ordering::Relaxed),
                    frames_received: t.frames_received.load(Ordering::Relaxed),
                    batches_sent: t.batches_sent.load(Ordering::Relaxed),
                    batched_events_sent: t.batched_events_sent.load(Ordering::Relaxed),
                    send_failures: t.send_failures.load(Ordering::Relaxed),
                    queue_full_waits: t.queue_full_waits.load(Ordering::Relaxed),
                    outbound_backlog: t.outbound_backlog.load(Ordering::Relaxed),
                }
            }
            None => NetSummary::default(),
        };
        EngineStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            processed: c.processed.load(Ordering::Relaxed),
            emitted: c.emitted.load(Ordering::Relaxed),
            lost_machine_failure: c.lost_machine_failure.load(Ordering::Relaxed),
            lost_in_queues: c.lost_in_queues.load(Ordering::Relaxed),
            dropped_overflow: c.dropped_overflow.load(Ordering::Relaxed),
            redirected_overflow: c.redirected_overflow.load(Ordering::Relaxed),
            throttle_waits: c.throttle_waits.load(Ordering::Relaxed),
            publish_errors: c.publish_errors.load(Ordering::Relaxed),
            latency: self.shared.latency.summary(),
            cache,
            dirty_slates: dirty,
            net,
        }
    }

    /// Recent drop-log entries (§4.3: dropped events "can be logged for
    /// later processing and debugging").
    pub fn recent_drops(&self) -> Vec<String> {
        self.shared.drop_log.recent()
    }

    /// Stop the engine: waits for queues to drain (bounded), flushes all
    /// dirty slates (graceful shutdown), joins threads, and returns final
    /// stats.
    pub fn shutdown(self) -> EngineStats {
        self.drain(Duration::from_secs(30));
        // TCP mode: close the inbound wire first so no new remote events
        // arrive during teardown (peers will see this node as failed —
        // which is accurate).
        if let Some(mut listener) = self.listener.lock().take() {
            listener.stop();
        }
        self.shared.stopping.store(true, Ordering::Release);
        for m in &self.shared.machines {
            for q in &m.queues {
                q.notify();
            }
        }
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        for t in self.flushers.lock().drain(..) {
            let _ = t.join();
        }
        // Graceful final flush (live machines only — dead machines lost
        // their dirty slates, §4.3).
        let now = self.shared.now_us();
        for m in &self.shared.machines {
            if !m.alive.load(Ordering::Acquire) {
                continue;
            }
            if let Some(cache) = &m.central_cache {
                cache.flush_dirty(now);
            }
            for cache in m.worker_caches.iter().flatten() {
                cache.flush_dirty(now);
            }
        }
        self.stats()
    }
}

fn worker_loop(shared: Arc<Shared>, machine_id: usize, thread: usize) {
    let poll = Duration::from_millis(1);
    loop {
        let machine = &shared.machines[machine_id];
        if !machine.alive.load(Ordering::Acquire) {
            return; // crashed machine: thread dies with it
        }
        if shared.stopping.load(Ordering::Acquire) {
            // Drain remaining work, then exit.
            match machine.queues[thread].try_pop() {
                Some(p) => process_packet(&shared, machine_id, thread, p),
                None => return,
            }
            continue;
        }
        if let Some(packet) = machine.queues[thread].pop_timeout(poll) {
            process_packet(&shared, machine_id, thread, packet);
        }
    }
}

fn process_packet(shared: &Arc<Shared>, machine_id: usize, thread: usize, packet: Packet) {
    let machine = &shared.machines[machine_id];
    // Muppet 1.0 invariant: a worker is bound to exactly one function.
    debug_assert!(
        machine.thread_ops[thread].is_none() || machine.thread_ops[thread] == Some(packet.op),
        "1.0 worker received an event for a function it does not run"
    );
    let op_decl = shared.wf.op(packet.op);
    let route = packet.event.key.route_hash(&op_decl.name);
    machine.in_flight[thread].store(route.wrapping_add(1), Ordering::Release);

    let mut emitter = VecEmitter::new();
    match &shared.ops[packet.op] {
        OpInstance::Map(mapper) => {
            mapper.map(&mut emitter, &packet.event);
        }
        OpInstance::Update { updater, name, ttl_secs } => {
            let cache = match shared.cfg.kind {
                EngineKind::Muppet2 => machine.central_cache.as_ref().expect("2.0 central cache"),
                EngineKind::Muppet1 => {
                    machine.worker_caches[thread].as_ref().expect("1.0 updater thread owns a cache")
                }
            };
            let now = shared.now_us();
            let slot = cache.get_or_load(packet.op, name, &packet.event.key, *ttl_secs, now);
            {
                let mut state = slot.state.lock();
                updater.update(&mut emitter, &packet.event, &mut state.slate);
                cache.note_write(&slot, &mut state, now);
            }
            if shared.cfg.record_latency {
                shared.latency.record(shared.now_us().saturating_sub(packet.injected_us));
            }
        }
    }
    shared.counters.processed.fetch_add(1, Ordering::Relaxed);
    machine.in_flight[thread].store(0, Ordering::Release);

    // Admit emissions: ts = input ts + 1 (§3), fan out to subscribers.
    let records = emitter.take();
    for rec in records {
        shared.counters.emitted.fetch_add(1, Ordering::Relaxed);
        if shared.wf.is_external(rec.stream.as_str()) || !shared.wf.has_stream(rec.stream.as_str())
        {
            shared.counters.publish_errors.fetch_add(1, Ordering::Relaxed);
            shared.drop_log.log(format!("illegal publish to {} from {}", rec.stream, op_decl.name));
            continue;
        }
        let out = Event {
            stream: rec.stream.clone(),
            ts: packet.event.ts + 1,
            key: rec.key,
            value: rec.value,
            seq: 0,
        };
        fan_out(shared, &rec.stream, out, packet.injected_us, packet.redirected);
    }

    // This packet is done.
    shared.pending.fetch_sub(1, Ordering::AcqRel);
    shared.throttle_cv.notify_all();
}

fn fan_out(
    shared: &Arc<Shared>,
    stream: &StreamId,
    event: Event,
    injected_us: u64,
    redirected: bool,
) {
    let subscribers = shared.wf.subscribers_of(stream.as_str()).to_vec();
    for op in subscribers {
        let packet = Packet { op, event: event.clone(), injected_us, redirected };
        try_send(shared, packet, false);
    }
}

/// The send path (see note above `worker_loop`): resolves the destination
/// machine via the rings, then puts the event on the wire. A transport
/// failure — dead simulated machine in-process, connection error over TCP
/// — triggers the §4.3 protocol: report to the master, which broadcasts,
/// and every ring drops the machine; the event is lost and logged, never
/// retried.
fn try_send(shared: &Arc<Shared>, packet: Packet, external: bool) {
    let updater_name = shared.wf.op(packet.op).name.as_str();
    let route: RouteHash = packet.event.key.route_hash(updater_name);
    let dest = match shared.cfg.kind {
        EngineKind::Muppet2 => shared.machine_ring.read().owner(route).map(|m| (m, None)),
        EngineKind::Muppet1 => {
            let rings = shared.op_rings.read();
            rings[packet.op].owner(route).map(|slot_id| {
                let slot = shared.worker_slots[slot_id];
                (slot.machine, Some(slot.thread))
            })
        }
    };
    let Some((machine_id, thread_hint)) = dest else {
        shared.counters.lost_machine_failure.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let key = packet.event.key.clone();
    let ev = WireEvent {
        op: packet.op,
        event: packet.event,
        injected_us: packet.injected_us,
        redirected: packet.redirected,
        external,
        thread_hint,
    };
    match shared.transport.send_event(machine_id, ev) {
        Ok(()) => {}
        Err(NetError::Unreachable(_)) => {
            // §4.3: the sender detected the dead machine on send. Report to
            // the master (the master's broadcast removes it from every
            // ring); the undeliverable event is lost and logged.
            shared.transport.report_failure(machine_id);
            shared.counters.lost_machine_failure.fetch_add(1, Ordering::Relaxed);
            shared.drop_log.log(format!("lost to failed machine {machine_id}: key={key:?}"));
        }
        Err(e) => {
            // A local protocol/config error (oversized frame, no handler)
            // is not a dead peer — the event is lost and logged, but the
            // machine must not be declared failed.
            shared.counters.lost_machine_failure.fetch_add(1, Ordering::Relaxed);
            shared
                .drop_log
                .log(format!("undeliverable to machine {machine_id} ({e}): key={key:?}"));
        }
    }
}

/// Local delivery: the receiving half of the wire. Chooses the worker
/// queue (two-choice for 2.0, the sender's slot hint for 1.0) and applies
/// the §4.3 overflow mechanism. Runs on the sender's thread in-process and
/// on the listener's connection thread over TCP.
fn deliver_local(
    shared: &Arc<Shared>,
    machine_id: usize,
    ev: WireEvent,
) -> std::result::Result<(), NetError> {
    loop {
        let Some(machine) = shared.machines.get(machine_id) else {
            return Err(NetError::NoRoute(machine_id));
        };
        if !machine.local {
            return Err(NetError::NoRoute(machine_id));
        }
        if !machine.alive.load(Ordering::Acquire) {
            return Err(NetError::Unreachable(machine_id));
        }
        let updater_name = shared.wf.op(ev.op).name.as_str();
        let route: RouteHash = ev.event.key.route_hash(updater_name);
        let thread = match shared.cfg.kind {
            EngineKind::Muppet1 => {
                // 1.0 workers are bound to one function; an event on the
                // wrong thread would fault the worker (no cache for the
                // op). Trust the sender's hint only when it names a local
                // thread actually running this op; otherwise re-resolve
                // from the local rings (layouts are deterministic
                // cluster-wide, so a mismatch means a heterogeneously
                // configured peer).
                let valid =
                    |t: usize| t < machine.queues.len() && machine.thread_ops[t] == Some(ev.op);
                let resolved = ev.thread_hint.filter(|&t| valid(t)).or_else(|| {
                    let rings = shared.op_rings.read();
                    rings
                        .get(ev.op)
                        .and_then(|ring| ring.owner(route))
                        .map(|slot_id| shared.worker_slots[slot_id])
                        .filter(|slot| slot.machine == machine_id && valid(slot.thread))
                        .map(|slot| slot.thread)
                });
                match resolved {
                    Some(t) => t,
                    None => {
                        shared.drop_log.log(format!(
                            "misrouted 1.0 event discarded at m{machine_id}: op={updater_name} \
                             key={:?} (peer layout mismatch?)",
                            ev.event.key
                        ));
                        return Ok(());
                    }
                }
            }
            EngineKind::Muppet2 => {
                let threads = machine.queues.len();
                let (p, s) = crate::dispatch::queue_pair(route, threads);
                let decode = |raw: u64| -> Option<RouteHash> {
                    if raw == 0 {
                        None
                    } else {
                        Some(raw.wrapping_sub(1))
                    }
                };
                choose_between(
                    route,
                    p,
                    s,
                    decode(machine.in_flight[p].load(Ordering::Acquire)),
                    decode(machine.in_flight[s].load(Ordering::Acquire)),
                    machine.queues[p].len_hint(),
                    machine.queues[s].len_hint(),
                )
            }
        };
        let queue = &machine.queues[thread];
        let into_packet = |ev: WireEvent| Packet {
            op: ev.op,
            event: ev.event,
            injected_us: ev.injected_us,
            redirected: ev.redirected,
        };
        if queue.len_hint() < queue.capacity() {
            // Likely-room fast path; capacity may still be exceeded by a
            // racing sender, in which case force_push slightly overshoots
            // (bounded by sender count) — acceptable for a size *limit*.
            queue.force_push(into_packet(ev));
            shared.pending.fetch_add(1, Ordering::AcqRel);
            return Ok(());
        }
        // Queue full: invoke the overflow mechanism (§4.3).
        match shared.cfg.overflow.decide(ev.external, ev.redirected) {
            OverflowAction::Drop => {
                shared.counters.dropped_overflow.fetch_add(1, Ordering::Relaxed);
                shared.drop_log.log(format!(
                    "overflow drop at m{machine_id}w{thread}: key={:?} op={}",
                    ev.event.key, updater_name
                ));
                return Ok(());
            }
            OverflowAction::Redirect(overflow_stream) => {
                shared.counters.redirected_overflow.fetch_add(1, Ordering::Relaxed);
                if !shared.wf.has_stream(&overflow_stream)
                    || shared.wf.is_external(&overflow_stream)
                {
                    shared.counters.publish_errors.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                let external = ev.external;
                let mut event = ev.event;
                event.stream = StreamId::from(overflow_stream.as_str());
                // Fan out to the overflow stream's subscribers, marked so a
                // second overflow drops instead of looping.
                let subscribers = shared.wf.subscribers_of(&overflow_stream).to_vec();
                for op in subscribers {
                    let p = Packet {
                        op,
                        event: event.clone(),
                        injected_us: ev.injected_us,
                        redirected: true,
                    };
                    try_send(shared, p, external);
                }
                return Ok(());
            }
            OverflowAction::ForceThrough => {
                queue.force_push(into_packet(ev));
                shared.pending.fetch_add(1, Ordering::AcqRel);
                return Ok(());
            }
            OverflowAction::BlockProducer => {
                shared.counters.throttle_waits.fetch_add(1, Ordering::Relaxed);
                let mut guard = shared.throttle_mutex.lock();
                shared.throttle_cv.wait_for(&mut guard, Duration::from_millis(1));
                drop(guard);
                if shared.stopping.load(Ordering::Acquire) {
                    return Ok(());
                }
                // Retry: re-check liveness and queue room (the machine may
                // have failed or drained meanwhile).
            }
        }
    }
}

/// Drop `failed` from every routing structure — the effect of the master's
/// §4.3 broadcast, applied on each node.
fn apply_ring_drop(shared: &Arc<Shared>, failed: usize) {
    shared.machine_ring.write().remove(failed);
    {
        let mut rings = shared.op_rings.write();
        for (slot_id, slot) in shared.worker_slots.iter().enumerate() {
            if slot.machine == failed {
                for ring in rings.iter_mut() {
                    ring.remove(slot_id);
                }
            }
        }
    }
    if let Some(machine) = shared.machines.get(failed) {
        machine.alive.store(false, Ordering::Release);
    }
    // Every node tracks the failed set ("each worker keeps track of all
    // failed machines"), without re-reporting.
    shared.master.mark_failed(failed);
}

/// The engine side of the wire: what the transport calls to finish
/// delivery and apply the failure protocol locally.
struct EngineHandler(Arc<Shared>);

impl ClusterHandler for EngineHandler {
    fn deliver_event(&self, dest: MachineId, ev: WireEvent) -> std::result::Result<(), NetError> {
        deliver_local(&self.0, dest, ev)
    }

    fn handle_send_failure(&self, dest: MachineId, lost: Vec<WireEvent>) {
        // The async half of §4.3: a batching sender gave up on `dest`.
        // One detection (the report; the master dedupes), with every
        // undelivered event counted and logged individually — exactly
        // what the synchronous path does per event, amortized over the
        // batch. Never retried.
        let shared = &self.0;
        shared.counters.lost_machine_failure.fetch_add(lost.len() as u64, Ordering::Relaxed);
        for ev in &lost {
            shared.drop_log.log(format!("lost to failed machine {dest}: key={:?}", ev.event.key));
        }
        shared.transport.report_failure(dest);
    }

    fn handle_failure_report(&self, failed: MachineId) {
        // First report wins; the master broadcast fans the drop out to
        // every machine (including this one). Duplicates are absorbed.
        if self.0.master.report_failure(failed) {
            self.0.transport.broadcast_failure(failed);
        }
    }

    fn handle_failure_broadcast(&self, failed: MachineId) {
        apply_ring_drop(&self.0, failed);
    }

    fn read_local_slate(&self, dest: MachineId, updater: &str, key: &[u8]) -> Option<Vec<u8>> {
        let shared = &self.0;
        let op = shared.wf.op_id(updater)?;
        if shared.wf.op(op).kind != OpKind::Update {
            return None;
        }
        let machine = shared.machines.get(dest)?;
        if !machine.local || !machine.alive.load(Ordering::Acquire) {
            return None;
        }
        let key = Key::from(key);
        match shared.cfg.kind {
            EngineKind::Muppet2 => machine.central_cache.as_ref()?.read(op, &key),
            EngineKind::Muppet1 => {
                let route = key.route_hash(updater);
                let slot_id = shared.op_rings.read().get(op)?.owner(route)?;
                let slot = shared.worker_slots[slot_id];
                if slot.machine != dest {
                    return None;
                }
                machine.worker_caches[slot.thread].as_ref()?.read(op, &key)
            }
        }
    }

    fn backend_store(
        &self,
        updater: &str,
        key: &[u8],
        value: &[u8],
        ttl_secs: Option<u64>,
        now_us: u64,
    ) {
        if let Some(store) = &self.0.host_store {
            let key = Key::from(key);
            SlateBackend::store(&**store, updater, &key, value, ttl_secs, now_us);
        }
    }

    fn backend_load(&self, updater: &str, key: &[u8], now_us: u64) -> Option<Vec<u8>> {
        let store = self.0.host_store.as_ref()?;
        let key = Key::from(key);
        SlateBackend::load(&**store, updater, &key, now_us)
    }
}

fn flusher_loop(shared: Arc<Shared>, machine_id: usize, interval: Duration) {
    while !shared.stopping.load(Ordering::Acquire) {
        // Sleep in short slices so shutdown does not block for a full
        // (possibly multi-minute) flush interval.
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline {
            if shared.stopping.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5).min(interval));
        }
        let machine = &shared.machines[machine_id];
        if !machine.alive.load(Ordering::Acquire) {
            return;
        }
        let now = shared.now_us();
        if let Some(cache) = &machine.central_cache {
            cache.flush_dirty(now);
        }
        for cache in machine.worker_caches.iter().flatten() {
            cache.flush_dirty(now);
        }
    }
}
