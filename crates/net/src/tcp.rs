//! The TCP transport: real sockets between `muppetd` processes.
//!
//! Wire model (§4.1): workers pass events *directly* to the owning
//! machine's process — one length-prefixed [`Frame`] per message over a
//! pooled connection; the master is only ever involved in the §4.3
//! failure frames. Each engine process owns exactly one machine of the
//! topology; a background listener accepts frames from peers and hands
//! them to the engine's [`ClusterHandler`].
//!
//! Failure surfacing: a send that cannot reach its peer — connection
//! refused, reset, or timed out, after one reconnect attempt — returns
//! [`NetError::Unreachable`], which the engine treats exactly like the
//! simulated dead-machine check: report to master, master broadcasts,
//! rings drop the machine, the event is lost and logged (§4.3). Events
//! already buffered by the kernel when a peer dies are silently lost —
//! the paper's semantics, not a bug: detection is traffic-driven and the
//! undelivered window is bounded by the socket buffer.
//!
//! Connection pooling: per peer, a small stack of idle connections; an
//! exchange takes one exclusively (so request/response frames like
//! `SlateGet` never interleave), then returns it. Concurrent senders get
//! concurrent connections up to `MAX_IDLE_PER_PEER` kept alive.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;

use crate::frame::{Frame, WireEvent};
use crate::topology::Topology;
use crate::transport::{ClusterHandler, HandlerSlot, MachineId, NetError, Transport};

/// Idle connections retained per peer.
const MAX_IDLE_PER_PEER: usize = 8;
/// Connect timeout (loopback and LAN latencies).
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
/// Read timeout for request/response exchanges.
const REPLY_TIMEOUT: Duration = Duration::from_secs(5);
/// Poll interval for the nonblocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Read timeout on inbound connections (bounds shutdown latency).
const SERVE_POLL: Duration = Duration::from_millis(200);

/// Cumulative transport counters (all relaxed; cheap to snapshot).
#[derive(Debug, Default)]
pub struct TcpStats {
    /// Frames written to peers.
    pub frames_sent: AtomicU64,
    /// Frames received by the listener.
    pub frames_received: AtomicU64,
    /// Sends that failed after the reconnect attempt (§4.3 triggers).
    pub send_failures: AtomicU64,
    /// Fresh connections dialed.
    pub connects: AtomicU64,
}

struct PeerPool {
    addr: SocketAddr,
    idle: Mutex<Vec<TcpStream>>,
}

/// A [`Transport`] over real TCP sockets. One instance per `muppetd`
/// process; `local` is the machine this process runs.
pub struct TcpTransport {
    topology: Topology,
    local: MachineId,
    handler: HandlerSlot,
    /// Indexed by machine id; `None` at `local`.
    pools: Vec<Option<PeerPool>>,
    stats: TcpStats,
}

impl TcpTransport {
    /// Build the transport for `local` within `topology` (addresses are
    /// resolved eagerly so misconfiguration fails fast).
    pub fn new(topology: Topology, local: MachineId) -> Result<Arc<TcpTransport>, String> {
        topology.validate()?;
        if local >= topology.len() {
            return Err(format!("local machine {local} is not in the topology"));
        }
        let mut pools = Vec::with_capacity(topology.len());
        for node in &topology.nodes {
            if node.id == local {
                pools.push(None);
            } else {
                pools.push(Some(PeerPool { addr: node.addr()?, idle: Mutex::new(Vec::new()) }));
            }
        }
        Ok(Arc::new(TcpTransport {
            topology,
            local,
            handler: HandlerSlot::default(),
            pools,
            stats: TcpStats::default(),
        }))
    }

    /// The static topology this transport runs in.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &TcpStats {
        &self.stats
    }

    fn handler(&self) -> Option<Arc<dyn ClusterHandler>> {
        self.handler.get()
    }

    fn pool(&self, dest: MachineId) -> Result<&PeerPool, NetError> {
        self.pools.get(dest).and_then(|p| p.as_ref()).ok_or(NetError::NoRoute(dest))
    }

    fn connect(&self, addr: SocketAddr) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(REPLY_TIMEOUT))?;
        self.stats.connects.fetch_add(1, Ordering::Relaxed);
        let mut stream2 = &stream;
        Frame::Hello { sender: self.local }.write_to(&mut stream2)?;
        Ok(stream)
    }

    /// Run one frame exchange with `dest`: write `frame`, optionally read
    /// a reply, reusing a pooled connection with one reconnect retry.
    fn exchange(
        &self,
        dest: MachineId,
        frame: &Frame,
        want_reply: bool,
    ) -> Result<Option<Frame>, NetError> {
        let pool = self.pool(dest)?;
        // Size-check before touching the socket: an oversized frame is a
        // local protocol error, not a dead peer — it must not trip §4.3.
        let payload = frame.encode_payload();
        if payload.len() > crate::frame::MAX_FRAME_BYTES {
            return Err(NetError::Protocol(format!(
                "frame of {} bytes exceeds the {}-byte limit",
                payload.len(),
                crate::frame::MAX_FRAME_BYTES
            )));
        }
        let pooled = pool.idle.lock().pop();
        let had_pooled = pooled.is_some();

        let attempt = |conn: Option<TcpStream>| -> io::Result<(TcpStream, Option<Frame>)> {
            let mut stream = match conn {
                Some(c) => c,
                None => self.connect(pool.addr)?,
            };
            crate::frame::write_payload(&mut stream, &payload)?;
            let reply = if want_reply { Some(Frame::read_from(&mut stream)?) } else { None };
            Ok((stream, reply))
        };

        let outcome = match attempt(pooled) {
            Ok(done) => Ok(done),
            // A stale pooled connection (peer restarted, idle RST) gets one
            // fresh dial; a dead peer fails that too and surfaces §4.3.
            Err(_) if had_pooled => attempt(None),
            Err(e) => Err(e),
        };
        match outcome {
            Ok((stream, reply)) => {
                self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                let mut idle = pool.idle.lock();
                if idle.len() < MAX_IDLE_PER_PEER {
                    idle.push(stream);
                }
                Ok(reply)
            }
            Err(_) => {
                self.stats.send_failures.fetch_add(1, Ordering::Relaxed);
                Err(NetError::Unreachable(dest))
            }
        }
    }

    /// Bind this node's listener and start serving peer frames. Call after
    /// [`Transport::register`]. The returned handle stops the listener
    /// (and its connection threads) on drop.
    pub fn start_listener(self: &Arc<Self>) -> io::Result<TcpListenerHandle> {
        let node = &self.topology.nodes[self.local];
        let listener = TcpListener::bind((node.host.as_str(), node.port))?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let transport = Arc::clone(self);
        let accept_thread = std::thread::Builder::new()
            .name(format!("muppet-net-{}", self.local))
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let transport = Arc::clone(&transport);
                            let stop = Arc::clone(&stop2);
                            std::thread::spawn(move || serve_connection(transport, stream, stop));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(TcpListenerHandle { stop, accept_thread: Some(accept_thread), port })
    }
}

impl Transport for TcpTransport {
    fn register(&self, handler: Weak<dyn ClusterHandler>) {
        self.handler.register(handler);
    }

    fn is_local(&self, machine: MachineId) -> bool {
        machine == self.local
    }

    fn local_machine(&self) -> Option<MachineId> {
        Some(self.local)
    }

    fn send_event(&self, dest: MachineId, ev: WireEvent) -> Result<(), NetError> {
        if dest == self.local {
            return match self.handler() {
                Some(h) => h.deliver_event(dest, ev),
                None => Err(NetError::NoRoute(dest)),
            };
        }
        self.exchange(dest, &Frame::Event(ev), false).map(|_| ())
    }

    fn report_failure(&self, failed: MachineId) {
        if self.topology.master == self.local {
            if let Some(h) = self.handler() {
                h.handle_failure_report(failed);
            }
            return;
        }
        // Best effort: if the master itself is unreachable, apply the drop
        // locally so this node stops routing to the dead machine.
        if self.exchange(self.topology.master, &Frame::FailureReport { failed }, false).is_err() {
            if let Some(h) = self.handler() {
                h.handle_failure_broadcast(failed);
            }
        }
    }

    fn broadcast_failure(&self, failed: MachineId) {
        for node in &self.topology.nodes {
            if node.id == failed {
                continue; // no point telling the dead machine
            }
            if node.id == self.local {
                if let Some(h) = self.handler() {
                    h.handle_failure_broadcast(failed);
                }
            } else {
                // Best effort; unreachable peers will detect via their own
                // traffic.
                let _ = self.exchange(node.id, &Frame::FailureBroadcast { failed }, false);
            }
        }
    }

    fn read_slate(
        &self,
        dest: MachineId,
        updater: &str,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, NetError> {
        if dest == self.local {
            return match self.handler() {
                Some(h) => Ok(h.read_local_slate(dest, updater, key)),
                None => Err(NetError::NoRoute(dest)),
            };
        }
        let request = Frame::SlateGet { updater: updater.to_string(), key: key.to_vec() };
        match self.exchange(dest, &request, true)? {
            Some(Frame::SlateValue { value }) => Ok(value),
            other => Err(NetError::Protocol(format!("expected SlateValue, got {other:?}"))),
        }
    }

    fn store_put(
        &self,
        dest: MachineId,
        updater: &str,
        key: &[u8],
        value: &[u8],
        ttl_secs: Option<u64>,
        now_us: u64,
    ) -> Result<(), NetError> {
        if dest == self.local {
            return match self.handler() {
                Some(h) => {
                    h.backend_store(updater, key, value, ttl_secs, now_us);
                    Ok(())
                }
                None => Err(NetError::NoRoute(dest)),
            };
        }
        let request = Frame::StorePut {
            updater: updater.to_string(),
            key: key.to_vec(),
            value: value.to_vec(),
            ttl_secs,
            now_us,
        };
        match self.exchange(dest, &request, true)? {
            Some(Frame::StoreAck) => Ok(()),
            other => Err(NetError::Protocol(format!("expected StoreAck, got {other:?}"))),
        }
    }

    fn store_get(
        &self,
        dest: MachineId,
        updater: &str,
        key: &[u8],
        now_us: u64,
    ) -> Result<Option<Vec<u8>>, NetError> {
        if dest == self.local {
            return match self.handler() {
                Some(h) => Ok(h.backend_load(updater, key, now_us)),
                None => Err(NetError::NoRoute(dest)),
            };
        }
        let request = Frame::StoreGet { updater: updater.to_string(), key: key.to_vec(), now_us };
        match self.exchange(dest, &request, true)? {
            Some(Frame::StoreValue { value }) => Ok(value),
            other => Err(NetError::Protocol(format!("expected StoreValue, got {other:?}"))),
        }
    }
}

/// A running frame listener; dropping it stops the node's inbound wire
/// (used by tests to "kill" a peer).
pub struct TcpListenerHandle {
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    port: u16,
}

impl TcpListenerHandle {
    /// The bound event port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Stop accepting and serving (idempotent; also runs on drop).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpListenerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Read exactly `buf.len()` bytes, retrying across read-timeout polls
/// (a frame may straddle a poll boundary; `read_exact` would discard the
/// partial prefix). Returns `Ok(false)` when `stop` was raised before any
/// byte of `buf` arrived.
fn read_full_polled(r: &mut impl io::Read, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut at = 0;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")),
            Ok(n) => at += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Acquire) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn serve_connection(transport: Arc<TcpTransport>, stream: TcpStream, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(SERVE_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        if stop.load(Ordering::Acquire) {
            return; // closes both halves → peers see RST on next send
        }
        let mut head = [0u8; 8];
        match read_full_polled(&mut reader, &mut head, &stop) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let len = muppet_core::codec::get_u32(&head, 0).expect("fixed header") as usize;
        let crc = muppet_core::codec::get_u32(&head, 4).expect("fixed header");
        if len > crate::frame::MAX_FRAME_BYTES {
            return;
        }
        let mut payload = vec![0u8; len];
        match read_full_polled(&mut reader, &mut payload, &stop) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        if muppet_core::codec::crc32c(&payload) != crc {
            return; // corrupt connection
        }
        let Some(frame) = Frame::decode_payload(&payload) else { return };
        transport.stats.frames_received.fetch_add(1, Ordering::Relaxed);
        let Some(handler) = transport.handler() else { return };
        let local = transport.local;
        let reply = match frame {
            Frame::Hello { .. } => None,
            Frame::Event(ev) => {
                // Delivery failures here are local queue-policy outcomes;
                // the sender's §4.3 signal is the connection, not a NACK.
                let _ = handler.deliver_event(local, ev);
                None
            }
            Frame::FailureReport { failed } => {
                handler.handle_failure_report(failed);
                None
            }
            Frame::FailureBroadcast { failed } => {
                handler.handle_failure_broadcast(failed);
                None
            }
            Frame::SlateGet { updater, key } => {
                Some(Frame::SlateValue { value: handler.read_local_slate(local, &updater, &key) })
            }
            Frame::StorePut { updater, key, value, ttl_secs, now_us } => {
                handler.backend_store(&updater, &key, &value, ttl_secs, now_us);
                Some(Frame::StoreAck)
            }
            Frame::StoreGet { updater, key, now_us } => {
                Some(Frame::StoreValue { value: handler.backend_load(&updater, &key, now_us) })
            }
            // Reply kinds arriving as requests: protocol violation.
            Frame::SlateValue { .. } | Frame::StoreValue { .. } | Frame::StoreAck => return,
        };
        if let Some(reply) = reply {
            if reply.write_to(&mut writer).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct EchoHandler {
        delivered: AtomicUsize,
        reports: Mutex<Vec<MachineId>>,
        broadcasts: Mutex<Vec<MachineId>>,
        store: Mutex<std::collections::HashMap<Vec<u8>, Vec<u8>>>,
    }

    impl EchoHandler {
        fn new() -> Arc<EchoHandler> {
            Arc::new(EchoHandler {
                delivered: AtomicUsize::new(0),
                reports: Mutex::new(Vec::new()),
                broadcasts: Mutex::new(Vec::new()),
                store: Mutex::new(Default::default()),
            })
        }
    }

    impl ClusterHandler for EchoHandler {
        fn deliver_event(&self, _dest: MachineId, _ev: WireEvent) -> Result<(), NetError> {
            self.delivered.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn handle_failure_report(&self, failed: MachineId) {
            self.reports.lock().push(failed);
        }
        fn handle_failure_broadcast(&self, failed: MachineId) {
            self.broadcasts.lock().push(failed);
        }
        fn read_local_slate(&self, _dest: MachineId, updater: &str, key: &[u8]) -> Option<Vec<u8>> {
            (updater == "U1" && key == b"walmart").then(|| b"7".to_vec())
        }
        fn backend_store(&self, _u: &str, key: &[u8], value: &[u8], _ttl: Option<u64>, _now: u64) {
            self.store.lock().insert(key.to_vec(), value.to_vec());
        }
        fn backend_load(&self, _u: &str, key: &[u8], _now: u64) -> Option<Vec<u8>> {
            self.store.lock().get(key).cloned()
        }
    }

    fn pair() -> (
        Arc<TcpTransport>,
        Arc<TcpTransport>,
        Arc<EchoHandler>,
        Arc<EchoHandler>,
        TcpListenerHandle,
        TcpListenerHandle,
    ) {
        let topo = Topology::loopback_ephemeral(2, false).unwrap();
        let t0 = TcpTransport::new(topo.clone(), 0).unwrap();
        let t1 = TcpTransport::new(topo, 1).unwrap();
        let h0 = EchoHandler::new();
        let h1 = EchoHandler::new();
        t0.register(Arc::downgrade(&h0) as Weak<dyn ClusterHandler>);
        t1.register(Arc::downgrade(&h1) as Weak<dyn ClusterHandler>);
        let l0 = t0.start_listener().unwrap();
        let l1 = t1.start_listener().unwrap();
        (t0, t1, h0, h1, l0, l1)
    }

    fn wire_event() -> WireEvent {
        WireEvent {
            op: 0,
            event: muppet_core::event::Event::new("S", 1, muppet_core::event::Key::from("k"), "v"),
            injected_us: 0,
            redirected: false,
            external: true,
            thread_hint: None,
        }
    }

    #[test]
    fn events_cross_the_wire() {
        let (t0, _t1, _h0, h1, _l0, _l1) = pair();
        for _ in 0..10 {
            t0.send_event(1, wire_event()).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h1.delivered.load(Ordering::Relaxed) < 10 {
            assert!(std::time::Instant::now() < deadline, "events not delivered");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(t0.stats().frames_sent.load(Ordering::Relaxed) >= 10);
    }

    #[test]
    fn slate_and_store_requests_get_replies() {
        let (t0, t1, h0, _h1, _l0, _l1) = pair();
        assert_eq!(t0.read_slate(1, "U1", b"walmart").unwrap(), Some(b"7".to_vec()));
        assert_eq!(t0.read_slate(1, "U1", b"absent").unwrap(), None);
        // Store ops served by node 0's handler, called from node 1.
        t1.store_put(0, "U1", b"k1", b"v1", None, 0).unwrap();
        assert_eq!(t1.store_get(0, "U1", b"k1", 0).unwrap(), Some(b"v1".to_vec()));
        assert_eq!(t1.store_get(0, "U1", b"nope", 0).unwrap(), None);
        assert_eq!(h0.store.lock().len(), 1);
    }

    #[test]
    fn failure_report_routes_to_master_and_broadcast_fans_out() {
        let (t0, t1, h0, h1, _l0, _l1) = pair();
        // Node 1 reports to the master (node 0) over the wire.
        t1.report_failure(7);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h0.reports.lock().is_empty() {
            assert!(std::time::Instant::now() < deadline, "report not received");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*h0.reports.lock(), vec![7]);
        // Master broadcast reaches both nodes (local + remote).
        t0.broadcast_failure(7);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h1.broadcasts.lock().is_empty() {
            assert!(std::time::Instant::now() < deadline, "broadcast not received");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*h0.broadcasts.lock(), vec![7]);
        assert_eq!(*h1.broadcasts.lock(), vec![7]);
    }

    #[test]
    fn dead_peer_surfaces_unreachable() {
        let (t0, _t1, _h0, h1, _l0, l1) = pair();
        t0.send_event(1, wire_event()).unwrap();
        drop(l1); // "kill" node 1's inbound wire
                  // Buffered writes may still succeed; within a few sends the reset
                  // connection and refused reconnect must surface.
        let mut saw_unreachable = false;
        for _ in 0..50 {
            if matches!(t0.send_event(1, wire_event()), Err(NetError::Unreachable(1))) {
                saw_unreachable = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(saw_unreachable, "dead peer never surfaced as Unreachable");
        assert!(t0.stats().send_failures.load(Ordering::Relaxed) >= 1);
        let _ = h1;
    }

    #[test]
    fn local_destination_bypasses_sockets() {
        let topo = Topology::loopback_ephemeral(1, false).unwrap();
        let t = TcpTransport::new(topo, 0).unwrap();
        let h = EchoHandler::new();
        t.register(Arc::downgrade(&h) as Weak<dyn ClusterHandler>);
        // No listener started at all: local sends still work.
        t.send_event(0, wire_event()).unwrap();
        assert_eq!(h.delivered.load(Ordering::Relaxed), 1);
        assert_eq!(t.read_slate(0, "U1", b"walmart").unwrap(), Some(b"7".to_vec()));
        assert!(t.is_local(0));
        assert_eq!(t.local_machine(), Some(0));
    }
}
