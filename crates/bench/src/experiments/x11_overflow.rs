//! X11 — §4.3 + §5: queue overflow policies under a burst.
//!
//! A 10× burst hits a deliberately slow updater with tiny queues. Three
//! responses, three trade-offs:
//! * drop-and-log — holds latency, loses events;
//! * overflow stream — degrades service (a cheap approximate updater
//!   absorbs the spill);
//! * source throttling — loses nothing, but the *source* lags (§5's
//!   "accepting longer latencies for stable operation").

use std::time::{Duration, Instant};

use muppet_core::event::Event;
use muppet_core::operator::{Emitter, FnMapper, FnUpdater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind, OperatorSet};
use muppet_runtime::overflow::OverflowPolicy;

use crate::harness::read_counter;
use crate::table::{us, Table};
use crate::Scale;

fn workflow() -> Workflow {
    let mut b = Workflow::builder("burst");
    b.external_stream("S1");
    b.mapper_publishing("M1", &["S1"], &["S2"]);
    b.updater("U_slow", &["S2"]);
    b.stream("S_ovf");
    b.updater("U_cheap", &["S_ovf"]);
    b.build().unwrap()
}

fn ops() -> OperatorSet {
    OperatorSet::new()
        .mapper(FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        }))
        .updater(FnUpdater::new("U_slow", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            // The expensive main-path operation.
            let deadline = Instant::now() + Duration::from_micros(300);
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
            slate.incr_counter(1);
        }))
        .updater(FnUpdater::new("U_cheap", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            // §4.3: "substituting expensive operations ... with approximate
            // operations that are cheaper to execute".
            slate.incr_counter(1);
        }))
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X11",
        "queue overflow: drop vs overflow stream vs throttling",
        "§4.3 (queue overflow), §5 (source throttling)",
    );
    let n = scale.events(8_000);

    let mut table = Table::new([
        "policy",
        "full-service",
        "degraded",
        "dropped",
        "throttle waits",
        "intake time",
        "accounted",
    ]);
    for (name, policy) in [
        ("drop-and-log", OverflowPolicy::DropAndLog),
        ("overflow stream", OverflowPolicy::OverflowStream("S_ovf".into())),
        ("source throttle", OverflowPolicy::SourceThrottle),
    ] {
        let cfg = EngineConfig {
            kind: EngineKind::Muppet2,
            machines: 1,
            workers_per_machine: 2,
            queue_capacity: 32,
            overflow: policy,
            ..EngineConfig::default()
        };
        let engine = Engine::start(workflow(), ops(), cfg, None).unwrap();
        let t0 = Instant::now();
        // Submit at a rate the *cheap* path can absorb but the slow path
        // cannot (a sustained overload, like the paper's event spikes,
        // rather than an instantaneous memcpy of the whole feed).
        for chunk in (0..n).collect::<Vec<_>>().chunks(20) {
            for &j in chunk {
                engine
                    .submit(Event::new(
                        "S1",
                        j as u64,
                        muppet_core::event::Key::from("hot"),
                        Vec::new(),
                    ))
                    .unwrap();
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let intake = t0.elapsed();
        assert!(engine.drain(Duration::from_secs(300)));
        let slow = read_counter(&engine, "U_slow", "hot");
        let cheap = read_counter(&engine, "U_cheap", "hot");
        let stats = engine.shutdown();
        let accounted = slow + cheap + stats.dropped_overflow;
        table.row([
            name.to_string(),
            slow.to_string(),
            cheap.to_string(),
            stats.dropped_overflow.to_string(),
            stats.throttle_waits.to_string(),
            us(intake.as_micros() as u64),
            format!("{accounted}/{n}"),
        ]);
    }
    table.print();
    println!(
        "\nshape check: drop loses events but intake stays fast; the overflow stream\n\
         converts losses into degraded (cheap) service; throttling accounts for every\n\
         event at the cost of intake time ≈ the slow path's total service time."
    );
}
