//! Slates — the "memories" of update functions.
//!
//! A slate is the in-memory data structure that "summarizes all events with
//! key k that an update function U has seen so far" (§3). Each pair
//! ⟨updater, key⟩ uniquely determines a slate. Slates are:
//!
//! * updated in place by the updater on every event with the key;
//! * cached in the memory of the machine running the updater;
//! * persisted (compressed) to the key-value store at row `k`, column `U`;
//! * readable live over HTTP (§4.4);
//! * subject to a per-updater time-to-live after which they reset to empty.
//!
//! Following the paper's Java API (Figure 4), the canonical representation
//! is an opaque byte blob that the updater replaces wholesale
//! (`replaceSlate`). Convenience accessors cover the common encodings the
//! paper mentions: UTF-8 text counters and JSON objects.
//!
//! ## The resident representation
//!
//! "Our applications often use JSON to encode slates" (§4.2) — and the
//! per-event hot path used to pay for that by re-parsing the payload from
//! bytes and re-serializing it back on *every* event. A slate now holds one
//! of three representations:
//!
//! * **Bytes** — a raw blob (JSON text, decimal counter text, opaque);
//! * **Mbf** — an undecoded [MBF](crate::mbf) binary payload, as loaded
//!   from an MBF-at-rest store or an MBF-negotiated connection;
//! * **Json** — a parsed document *resident* in the slate, with byte forms
//!   materialized lazily (and cached per codec) only at real byte
//!   boundaries: store flush, slate handoff, HTTP `/slate` reads, wire
//!   transfer.
//!
//! [`Slate::ensure_json`] converts bytes → resident once (keeping the
//! original payload cached, so an untouched slate still flushes the exact
//! bytes it was loaded with — in its original codec);
//! [`Slate::json_mut`] / [`Slate::json_mut_or`] mutate the resident
//! document in place, bumping `version` without serializing.
//! [`Slate::materialize`] emits the payload in a caller-chosen codec —
//! JSON text for human-facing boundaries, MBF for v5 wire peers and the
//! store — serializing at most once per codec per mutation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use bytes::Bytes;

use crate::json::Json;
use crate::mbf::{self, Codec};

/// Global count of byte-payload → JSON-document parses (all slates).
static PARSES: AtomicU64 = AtomicU64::new(0);
/// Global count of JSON-document → byte-payload serializations.
static SERIALIZATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide (parses, serializations) counters for **JSON-text** slate
/// payloads — an allocations-ish proxy the hot-path benchmarks record: the
/// seed path pays one parse *and* one serialization per update, the
/// resident path parses once per cache fault and serializes once per
/// flush. MBF decodes/encodes are counted separately; see
/// [`codec_counters`].
pub fn repr_counters() -> (u64, u64) {
    (PARSES.load(Ordering::Relaxed), SERIALIZATIONS.load(Ordering::Relaxed))
}

/// Per-codec payload conversion counters (process-wide).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodecCounters {
    /// JSON text → document parses.
    pub json_parses: u64,
    /// Document → JSON text serializations.
    pub json_serializations: u64,
    /// MBF bytes → document decodes.
    pub mbf_decodes: u64,
    /// Document → MBF bytes encodes.
    pub mbf_encodes: u64,
}

/// Process-wide conversion counters split by codec: JSON parse/serialize
/// (same values as [`repr_counters`]) plus MBF decode/encode.
pub fn codec_counters() -> CodecCounters {
    let (json_parses, json_serializations) = repr_counters();
    let (mbf_decodes, mbf_encodes) = mbf::mbf_counters();
    CodecCounters { json_parses, json_serializations, mbf_decodes, mbf_encodes }
}

/// The payload: raw bytes, an undecoded MBF payload, or a resident parsed
/// document with its byte forms cached lazily per codec.
#[derive(Clone, Debug)]
enum Repr {
    Bytes(Bytes),
    Mbf {
        raw: Bytes,
        /// Cached JSON-text rendering (decode + serialize), filled only if
        /// a text boundary reads an undecoded MBF slate.
        json: OnceLock<Bytes>,
    },
    Json {
        doc: Json,
        /// Serialized JSON text; filled on first JSON byte access after a
        /// mutation (or carried over from the parse when untouched).
        json: OnceLock<Bytes>,
        /// Encoded MBF payload; filled on first MBF byte access after a
        /// mutation (or carried over from the decode when untouched).
        mbf: OnceLock<Bytes>,
    },
}

/// A slate: the per-⟨updater, key⟩ summary blob, plus bookkeeping the
/// runtime uses for cache/flush management.
#[derive(Clone, Debug)]
pub struct Slate {
    repr: Repr,
    /// Bumped on every mutation; lets caches detect dirtiness cheaply.
    version: u64,
}

impl Default for Slate {
    fn default() -> Self {
        Slate { repr: Repr::Bytes(Bytes::new()), version: 0 }
    }
}

impl PartialEq for Slate {
    fn eq(&self, other: &Self) -> bool {
        self.version == other.version && self.bytes() == other.bytes()
    }
}

impl Eq for Slate {}

impl Slate {
    /// A fresh, empty slate — what an updater receives "when [it] accesses a
    /// slate associated with a key k for the first time" (§3). The updater
    /// is responsible for initializing its variables.
    pub fn empty() -> Self {
        Slate::default()
    }

    /// Build a slate from raw bytes (e.g. loaded from the key-value store).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Slate { repr: Repr::Bytes(Bytes::from(data)), version: 0 }
    }

    /// Build a slate from a stored payload tagged with its codec: MBF
    /// payloads stay undecoded until an accessor needs the document (and
    /// an untouched slate re-materializes byte-identically in MBF), JSON
    /// payloads behave exactly like [`Slate::from_bytes`].
    pub fn from_stored(data: Vec<u8>, codec: Codec) -> Self {
        let raw = Bytes::from(data);
        match codec {
            Codec::Json => Slate { repr: Repr::Bytes(raw), version: 0 },
            Codec::Mbf if raw.is_empty() => Slate::default(),
            Codec::Mbf => Slate { repr: Repr::Mbf { raw, json: OnceLock::new() }, version: 0 },
        }
    }

    /// True if no updater has written anything yet (or the slate expired).
    /// A resident document is never empty (its serialization is at least
    /// `null`), and an MBF payload always has at least a magic + tag byte.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Bytes(b) => b.is_empty(),
            Repr::Mbf { .. } | Repr::Json { .. } => false,
        }
    }

    /// The slate payload as **JSON text** (or the raw blob for non-JSON
    /// payloads) — the human-facing byte form served by HTTP `/slate` and
    /// used by the text accessors. For a resident document this
    /// materializes (and caches) the serialization; for an undecoded MBF
    /// payload it renders (and caches) the canonical JSON text. Byte
    /// boundaries that can carry either codec use [`Slate::materialize`]
    /// instead.
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Bytes(b) => b,
            Repr::Mbf { raw, json } => json.get_or_init(|| match Json::from_mbf(raw) {
                Ok(doc) => serialize(&doc),
                // Corrupt MBF: fall back to the raw payload rather than
                // invent bytes; readers treat it as opaque.
                Err(_) => raw.clone(),
            }),
            Repr::Json { doc, json, .. } => json.get_or_init(|| serialize(doc)),
        }
    }

    /// Byte length of the payload in its current natural form (an
    /// undecoded MBF payload reports its MBF length without rendering
    /// JSON text; a resident document materializes its serialization).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Mbf { raw, .. } => raw.len(),
            _ => self.bytes().len(),
        }
    }

    /// Payload as UTF-8 text, if valid. (Figure 4 stores a decimal counter
    /// as text.)
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(self.bytes()).ok()
    }

    /// Decode the payload as JSON — "our applications often use JSON to
    /// encode slates for language independence and flexibility" (§4.2).
    /// Returns an owned document; hot paths with `&mut` access should use
    /// [`Slate::ensure_json`] / [`Slate::json_mut`] instead, which parse at
    /// most once per slate.
    pub fn as_json(&self) -> Option<Json> {
        match &self.repr {
            Repr::Bytes(b) => {
                if b.is_empty() {
                    return None;
                }
                if mbf::is_mbf(b) {
                    return Json::from_mbf(b).ok();
                }
                PARSES.fetch_add(1, Ordering::Relaxed);
                Json::parse(std::str::from_utf8(b).ok()?).ok()
            }
            Repr::Mbf { raw, .. } => Json::from_mbf(raw).ok(),
            Repr::Json { doc, .. } => Some(doc.clone()),
        }
    }

    /// Make the parsed document resident (parsing/decoding at most once)
    /// and return a shared reference to it. Does **not** count as a
    /// mutation: the original payload is kept cached under its codec, so
    /// an untouched slate still flushes byte-identically. `None` when the
    /// payload is empty or neither parseable JSON nor decodable MBF (the
    /// representation is left as-is).
    pub fn ensure_json(&mut self) -> Option<&Json> {
        match &self.repr {
            Repr::Bytes(b) if !b.is_empty() && mbf::is_mbf(b) => {
                // Raw bytes that carry an MBF payload (e.g. replaced
                // wholesale from an MBF event value): decode, keep the
                // payload cached as MBF.
                let doc = Json::from_mbf(b).ok()?;
                let mbf_cache = OnceLock::new();
                let _ = mbf_cache.set(b.clone());
                self.repr = Repr::Json { doc, json: OnceLock::new(), mbf: mbf_cache };
            }
            Repr::Bytes(b) if !b.is_empty() => {
                PARSES.fetch_add(1, Ordering::Relaxed);
                let doc = Json::parse(std::str::from_utf8(b).ok()?).ok()?;
                let json = OnceLock::new();
                let _ = json.set(b.clone());
                self.repr = Repr::Json { doc, json, mbf: OnceLock::new() };
            }
            Repr::Mbf { raw, .. } => {
                let doc = Json::from_mbf(raw).ok()?;
                let mbf_cache = OnceLock::new();
                let _ = mbf_cache.set(raw.clone());
                self.repr = Repr::Json { doc, json: OnceLock::new(), mbf: mbf_cache };
            }
            _ => {}
        }
        match &self.repr {
            Repr::Json { doc, .. } => Some(doc),
            Repr::Bytes(_) | Repr::Mbf { .. } => None,
        }
    }

    /// Mutable access to the resident document. Counts as a mutation:
    /// `version` is bumped and the cached byte forms are invalidated —
    /// serialization happens only at the next byte boundary. `None` when
    /// the payload is empty or not JSON/MBF (nothing is changed then).
    pub fn json_mut(&mut self) -> Option<&mut Json> {
        self.ensure_json()?;
        self.version += 1;
        match &mut self.repr {
            Repr::Json { doc, json, mbf } => {
                json.take(); // invalidate: the doc is about to change
                mbf.take();
                Some(doc)
            }
            _ => unreachable!("ensure_json left a resident doc"),
        }
    }

    /// Mutable access to the resident document, installing `init()` when
    /// the slate is empty or unparseable (the Figure 4 "parse failure ⟹
    /// start fresh" posture). Always counts as a mutation.
    pub fn json_mut_or(&mut self, init: impl FnOnce() -> Json) -> &mut Json {
        if self.ensure_json().is_none() {
            self.repr = Repr::Json { doc: init(), json: OnceLock::new(), mbf: OnceLock::new() };
        }
        self.version += 1;
        match &mut self.repr {
            Repr::Json { doc, json, mbf } => {
                json.take();
                mbf.take();
                doc
            }
            _ => unreachable!("a resident doc was just installed"),
        }
    }

    /// Like [`Slate::json_mut_or`], but also falls back to `init()` when
    /// the payload parses to something other than an object — the common
    /// app shape is an object slate mutated with [`Json::set`], which
    /// panics on non-objects, and a foreign or corrupt payload must
    /// rebuild (the old parse-and-replace behaviour) rather than panic a
    /// worker. `init` must return an object.
    pub fn obj_mut_or(&mut self, init: impl FnOnce() -> Json) -> &mut Json {
        if !matches!(self.ensure_json(), Some(Json::Obj(_))) {
            self.repr = Repr::Json { doc: init(), json: OnceLock::new(), mbf: OnceLock::new() };
        }
        self.version += 1;
        match &mut self.repr {
            Repr::Json { doc, json, mbf } => {
                json.take();
                mbf.take();
                doc
            }
            _ => unreachable!("a resident doc was just installed"),
        }
    }

    /// Replace the entire payload — the `replaceSlate` call of Figure 4.
    pub fn replace(&mut self, data: Vec<u8>) {
        self.repr = Repr::Bytes(Bytes::from(data));
        self.version += 1;
    }

    /// Replace the payload with a JSON document, taking ownership: the
    /// document becomes resident and is serialized only at the next byte
    /// boundary.
    pub fn set_json(&mut self, value: Json) {
        self.repr = Repr::Json { doc: value, json: OnceLock::new(), mbf: OnceLock::new() };
        self.version += 1;
    }

    /// Replace the payload with serialized JSON (clones `value`; prefer
    /// [`Slate::set_json`] when the document can be moved in).
    pub fn replace_json(&mut self, value: &Json) {
        self.set_json(value.clone());
    }

    /// Reset to empty (TTL expiry / explicit deletion).
    pub fn clear(&mut self) {
        if !self.is_empty() {
            self.repr = Repr::Bytes(Bytes::new());
            self.version += 1;
        }
    }

    /// Monotone mutation counter; equal versions ⟹ byte-identical payloads
    /// for slates that share a lineage.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The payload as a cheaply-shareable [`Bytes`] in **JSON text** form
    /// (used by boundaries that must stay human-readable). No copy: bytes
    /// payloads share their buffer, resident documents share the
    /// materialized cache. Codec-aware boundaries use
    /// [`Slate::materialize`].
    pub fn to_shared(&self) -> Bytes {
        self.materialize(Codec::Json).0
    }

    /// Materialize the payload in the requested codec, returning the bytes
    /// and the codec they are actually in:
    ///
    /// * raw non-JSON payloads (counter text, opaque blobs) are returned
    ///   verbatim and tagged by sniffing — they are never transcoded;
    /// * an untouched slate loaded from bytes returns those exact bytes
    ///   when asked for its own codec (byte-identical flush);
    /// * a resident document serializes at most once per codec per
    ///   mutation (cached in a per-codec `OnceLock`);
    /// * a document the MBF encoder rejects (over-deep, over-long) falls
    ///   back to JSON text — the returned codec says so.
    pub fn materialize(&self, codec: Codec) -> (Bytes, Codec) {
        match (&self.repr, codec) {
            (Repr::Bytes(b), _) => (b.clone(), Codec::sniff(b)),
            (Repr::Mbf { raw, .. }, Codec::Mbf) => (raw.clone(), Codec::Mbf),
            (Repr::Mbf { raw, json }, Codec::Json) => {
                let text = json.get_or_init(|| match Json::from_mbf(raw) {
                    Ok(doc) => serialize(&doc),
                    Err(_) => raw.clone(),
                });
                (text.clone(), Codec::sniff(text))
            }
            (Repr::Json { doc, json, .. }, Codec::Json) => {
                (json.get_or_init(|| serialize(doc)).clone(), Codec::Json)
            }
            (Repr::Json { doc, json, mbf }, Codec::Mbf) => {
                if let Some(b) = mbf.get() {
                    return (b.clone(), Codec::Mbf);
                }
                match doc.to_mbf() {
                    Ok(encoded) => {
                        let _ = mbf.set(Bytes::from(encoded));
                        (mbf.get().expect("just set").clone(), Codec::Mbf)
                    }
                    Err(_) => (json.get_or_init(|| serialize(doc)).clone(), Codec::Json),
                }
            }
        }
    }

    // --- typed counter helpers (the dominant slate shape in the paper's
    // examples: checkin counts, topic counts per minute) ---

    /// Read the payload as a decimal `u64` counter; 0 when empty/invalid
    /// (mirrors Figure 4's `NumberFormatException` fallback).
    pub fn counter(&self) -> u64 {
        self.as_str().and_then(|s| s.trim().parse().ok()).unwrap_or(0)
    }

    /// Increment the decimal counter payload by `delta` and return the new
    /// value.
    pub fn incr_counter(&mut self, delta: u64) -> u64 {
        let next = self.counter().saturating_add(delta);
        self.replace(next.to_string().into_bytes());
        next
    }
}

fn serialize(doc: &Json) -> Bytes {
    SERIALIZATIONS.fetch_add(1, Ordering::Relaxed);
    let mut out = Vec::new();
    doc.write_into(&mut out);
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_slate_is_empty() {
        let s = Slate::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.version(), 0);
        assert_eq!(s.counter(), 0);
        assert_eq!(s.as_json(), None);
    }

    #[test]
    fn replace_bumps_version() {
        let mut s = Slate::empty();
        s.replace(b"17".to_vec());
        assert_eq!(s.version(), 1);
        assert_eq!(s.as_str(), Some("17"));
        s.replace(b"18".to_vec());
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn counter_semantics_match_figure_4() {
        // Figure 4: parse failure ⟹ count = 0, then ++count.
        let mut s = Slate::from_bytes(b"not-a-number".to_vec());
        assert_eq!(s.counter(), 0);
        assert_eq!(s.incr_counter(1), 1);
        assert_eq!(s.incr_counter(1), 2);
        assert_eq!(s.as_str(), Some("2"));
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let mut s = Slate::from_bytes(u64::MAX.to_string().into_bytes());
        assert_eq!(s.incr_counter(5), u64::MAX);
    }

    #[test]
    fn json_roundtrip_through_slate() {
        let mut s = Slate::empty();
        let v = Json::parse(r#"{"count": 3, "days": 2}"#).unwrap();
        s.replace_json(&v);
        let back = s.as_json().unwrap();
        assert_eq!(back.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(back.get("days").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn clear_only_bumps_version_when_nonempty() {
        let mut s = Slate::empty();
        s.clear();
        assert_eq!(s.version(), 0);
        s.replace(b"x".to_vec());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn from_bytes_preserves_payload() {
        let s = Slate::from_bytes(vec![1, 2, 3]);
        assert_eq!(s.bytes(), &[1, 2, 3]);
        // Invalid UTF-8 payloads read as None:
        let t = Slate::from_bytes(vec![0xff, 0xfe]);
        assert_eq!(t.as_str(), None);
        assert_eq!(s.to_shared().as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn ensure_json_preserves_bytes_and_version() {
        // A resident conversion is not a mutation: the slate flushes the
        // exact bytes it was loaded with, even if parse→serialize would
        // not roundtrip them identically (e.g. whitespace).
        let original = b"{ \"count\" : 3 }".to_vec();
        let mut s = Slate::from_bytes(original.clone());
        assert_eq!(s.ensure_json().unwrap().get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(s.version(), 0);
        assert_eq!(s.bytes(), original.as_slice(), "untouched resident slate keeps its bytes");
        // A second ensure_json returns the same resident doc (the repr
        // stays Json; re-parsing would lose the cached original bytes).
        s.ensure_json().unwrap();
        assert_eq!(s.bytes(), original.as_slice());
    }

    #[test]
    fn json_mut_bumps_version_and_reserializes() {
        let mut s = Slate::from_bytes(br#"{"count":3}"#.to_vec());
        {
            let doc = s.json_mut().unwrap();
            doc.set("count", Json::num(4));
        }
        assert_eq!(s.version(), 1);
        assert_eq!(s.bytes(), br#"{"count":4}"#);
        assert_eq!(s.len(), 11);
    }

    #[test]
    fn json_mut_on_non_json_is_none_and_untouched() {
        let mut s = Slate::from_bytes(b"not json".to_vec());
        assert!(s.json_mut().is_none());
        assert_eq!(s.version(), 0);
        assert_eq!(s.bytes(), b"not json");
        let mut empty = Slate::empty();
        assert!(empty.json_mut().is_none());
    }

    #[test]
    fn json_mut_or_installs_default() {
        let mut s = Slate::empty();
        {
            let doc = s.json_mut_or(|| Json::obj([("n", Json::num(0))]));
            doc.set("n", Json::num(1));
        }
        assert_eq!(s.version(), 1);
        assert_eq!(s.bytes(), br#"{"n":1}"#);
        // Unparseable payloads fall back to the default too.
        let mut bad = Slate::from_bytes(b"garbage".to_vec());
        bad.json_mut_or(|| Json::obj([("n", Json::num(7))]));
        assert_eq!(bad.bytes(), br#"{"n":7}"#);
    }

    #[test]
    fn obj_mut_or_rebuilds_non_object_payloads() {
        // A corrupt (or foreign) payload that parses to a non-object must
        // rebuild from the default, not panic the worker on `set`.
        for payload in [&b"5"[..], b"[1,2]", b"\"str\"", b"garbage", b""] {
            let mut s = Slate::from_bytes(payload.to_vec());
            let doc = s.obj_mut_or(|| Json::obj([("n", Json::num(0))]));
            doc.set("n", Json::num(1));
            assert_eq!(s.bytes(), br#"{"n":1}"#, "payload {payload:?}");
        }
        // Object payloads are mutated in place.
        let mut s = Slate::from_bytes(br#"{"n":41,"extra":true}"#.to_vec());
        s.obj_mut_or(|| Json::obj([("n", Json::num(0))])).set("n", Json::num(42));
        assert_eq!(s.bytes(), br#"{"n":42,"extra":true}"#);
    }

    #[test]
    fn set_json_matches_replace_json_bytes() {
        let v = Json::obj([("a", Json::num(1)), ("b", Json::str("x"))]);
        let mut a = Slate::empty();
        let mut b = Slate::empty();
        a.replace_json(&v);
        b.set_json(v);
        assert_eq!(a.bytes(), b.bytes());
        assert_eq!(a, b);
    }

    #[test]
    fn resident_clear_resets_to_empty_bytes() {
        let mut s = Slate::empty();
        s.set_json(Json::obj([("x", Json::num(1))]));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.bytes(), b"");
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn resident_and_bytes_slates_compare_by_payload() {
        let mut resident = Slate::empty();
        resident.set_json(Json::obj([("n", Json::num(3))]));
        let mut bytes = Slate::empty();
        bytes.replace(br#"{"n":3}"#.to_vec());
        assert_eq!(resident, bytes, "same version, same payload");
    }

    // --- MBF representation ---

    fn doc() -> Json {
        Json::obj([("count", Json::num(3)), ("name", Json::str("muppet"))])
    }

    #[test]
    fn from_stored_mbf_stays_undecoded_and_flushes_byte_identically() {
        let mbf = doc().to_mbf().unwrap();
        let s = Slate::from_stored(mbf.clone(), Codec::Mbf);
        assert!(!s.is_empty());
        assert_eq!(s.len(), mbf.len(), "len reports the MBF payload without rendering JSON");
        let (bytes, codec) = s.materialize(Codec::Mbf);
        assert_eq!(codec, Codec::Mbf);
        assert_eq!(bytes.as_ref(), mbf.as_slice(), "untouched MBF slate re-materializes verbatim");
    }

    #[test]
    fn mbf_slate_renders_canonical_json_text_at_text_boundaries() {
        let mbf = doc().to_mbf().unwrap();
        let s = Slate::from_stored(mbf, Codec::Mbf);
        assert_eq!(s.bytes(), doc().to_compact().as_bytes());
        let (bytes, codec) = s.materialize(Codec::Json);
        assert_eq!(codec, Codec::Json);
        assert_eq!(bytes.as_ref(), doc().to_compact().as_bytes());
    }

    #[test]
    fn ensure_json_on_mbf_is_not_a_mutation_and_keeps_the_payload() {
        let mbf = doc().to_mbf().unwrap();
        let mut s = Slate::from_stored(mbf.clone(), Codec::Mbf);
        assert_eq!(s.ensure_json().unwrap().get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(s.version(), 0);
        let (bytes, codec) = s.materialize(Codec::Mbf);
        assert_eq!((bytes.as_ref(), codec), (mbf.as_slice(), Codec::Mbf));
    }

    #[test]
    fn mutating_an_mbf_slate_reencodes_in_both_codecs() {
        let mut s = Slate::from_stored(doc().to_mbf().unwrap(), Codec::Mbf);
        s.json_mut().unwrap().set("count", Json::num(4));
        assert_eq!(s.version(), 1);
        let expect = Json::obj([("count", Json::num(4)), ("name", Json::str("muppet"))]);
        let (mbf_bytes, c1) = s.materialize(Codec::Mbf);
        assert_eq!(c1, Codec::Mbf);
        assert_eq!(Json::from_mbf(&mbf_bytes).unwrap(), expect);
        let (json_bytes, c2) = s.materialize(Codec::Json);
        assert_eq!(c2, Codec::Json);
        assert_eq!(json_bytes.as_ref(), expect.to_compact().as_bytes());
    }

    #[test]
    fn materialize_mbf_from_resident_doc_roundtrips() {
        let mut s = Slate::empty();
        s.set_json(doc());
        let (bytes, codec) = s.materialize(Codec::Mbf);
        assert_eq!(codec, Codec::Mbf);
        assert_eq!(Json::from_mbf(&bytes).unwrap(), doc());
        // Cached: a second call returns the same buffer.
        let (again, _) = s.materialize(Codec::Mbf);
        assert_eq!(bytes.as_ptr(), again.as_ptr());
    }

    #[test]
    fn raw_payloads_are_never_transcoded() {
        // Counter text stays raw under either requested codec.
        let mut s = Slate::empty();
        s.incr_counter(7);
        let (bytes, codec) = s.materialize(Codec::Mbf);
        assert_eq!((bytes.as_ref(), codec), (&b"7"[..], Codec::Json));
        let (bytes, codec) = s.materialize(Codec::Json);
        assert_eq!((bytes.as_ref(), codec), (&b"7"[..], Codec::Json));
    }

    #[test]
    fn replaced_mbf_bytes_are_sniffed_and_usable() {
        // replaceSlate with an MBF payload (e.g. copied from an MBF event
        // value): materialize tags it correctly and accessors decode it.
        let mbf = doc().to_mbf().unwrap();
        let mut s = Slate::empty();
        s.replace(mbf.clone());
        let (bytes, codec) = s.materialize(Codec::Mbf);
        assert_eq!((bytes.as_ref(), codec), (mbf.as_slice(), Codec::Mbf));
        assert_eq!(s.as_json().unwrap(), doc());
        assert_eq!(s.ensure_json().unwrap(), &doc());
    }

    #[test]
    fn corrupt_mbf_payload_degrades_to_opaque_bytes() {
        let mut mbf = doc().to_mbf().unwrap();
        mbf.truncate(mbf.len() - 1);
        let mut s = Slate::from_stored(mbf.clone(), Codec::Mbf);
        assert!(s.ensure_json().is_none());
        assert_eq!(s.version(), 0);
        // Text boundary falls back to the raw payload; MBF boundary
        // returns it verbatim.
        assert_eq!(s.bytes(), mbf.as_slice());
        let (bytes, codec) = s.materialize(Codec::Mbf);
        assert_eq!((bytes.as_ref(), codec), (mbf.as_slice(), Codec::Mbf));
    }

    #[test]
    fn from_stored_empty_mbf_is_empty() {
        let s = Slate::from_stored(Vec::new(), Codec::Mbf);
        assert!(s.is_empty());
        assert_eq!(s.materialize(Codec::Mbf).0.len(), 0);
    }

    #[test]
    fn codec_counters_split_by_codec() {
        let before = codec_counters();
        let mut s = Slate::from_stored(doc().to_mbf().unwrap(), Codec::Mbf);
        s.json_mut().unwrap().set("count", Json::num(9));
        let _ = s.materialize(Codec::Mbf);
        let _ = s.materialize(Codec::Json);
        let after = codec_counters();
        assert!(after.mbf_decodes > before.mbf_decodes);
        assert!(after.mbf_encodes > before.mbf_encodes);
        assert!(after.json_serializations > before.json_serializations);
        assert_eq!(
            (after.json_parses, after.json_serializations),
            repr_counters(),
            "repr_counters stays the JSON view"
        );
    }
}
