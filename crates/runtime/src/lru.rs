//! An intrusive-list LRU map used by the slate caches.
//!
//! Slot-based doubly-linked list over a `Vec` (no per-node allocation, no
//! unsafe): `get`/`insert`/`pop_lru` are O(1) expected. Generic so it can be
//! tested independently of slate semantics.

use std::collections::HashMap;
use std::hash::Hash;

use muppet_core::hash::FxBuildHasher;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// An LRU-ordered hash map.
#[derive(Debug)]
pub struct LruMap<K, V> {
    map: HashMap<K, usize, FxBuildHasher>,
    nodes: Vec<Option<Node<K, V>>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl<K: Eq + Hash + Clone, V> Default for LruMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        LruMap {
            map: HashMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    // Intrusive-list invariant (whole impl): every index reached via
    // `map`, `head`, `tail`, or a node's `prev`/`next` refers to an
    // occupied slot — freed slots are unlinked first and only reachable
    // through `free`. The `expect`/`unwrap` calls below assert exactly
    // that; there is no error to surface.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            // lint: allow(no-unwrap-in-prod) — intrusive-list invariant, see above
            let n = self.nodes[idx].as_ref().expect("linked node exists");
            (n.prev, n.next)
        };
        if prev != NIL {
            // lint: allow(no-unwrap-in-prod) — intrusive-list invariant, see above
            self.nodes[prev].as_mut().unwrap().next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            // lint: allow(no-unwrap-in-prod) — intrusive-list invariant, see above
            self.nodes[next].as_mut().unwrap().prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        {
            // lint: allow(no-unwrap-in-prod) — intrusive-list invariant, see above
            let n = self.nodes[idx].as_mut().expect("node exists");
            n.prev = NIL;
            n.next = self.head;
        }
        if self.head != NIL {
            // lint: allow(no-unwrap-in-prod) — intrusive-list invariant, see above
            self.nodes[self.head].as_mut().unwrap().prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Get and mark as most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        self.nodes[idx].as_ref().map(|n| &n.value)
    }

    /// Get mutably and mark as most-recently-used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        self.nodes[idx].as_mut().map(|n| &mut n.value)
    }

    /// Peek without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.nodes[idx].as_ref().map(|n| &n.value)
    }

    /// Insert or replace; the entry becomes most-recently-used. Returns the
    /// previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(&idx) = self.map.get(&key) {
            // lint: allow(no-unwrap-in-prod) — intrusive-list invariant, see `unlink`
            let old = std::mem::replace(&mut self.nodes[idx].as_mut().unwrap().value, value);
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return Some(old);
        }
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.nodes.push(None);
                self.nodes.len() - 1
            }
        };
        self.nodes[idx] = Some(Node { key: key.clone(), value, prev: NIL, next: NIL });
        self.map.insert(key, idx);
        self.push_front(idx);
        None
    }

    /// Remove a specific key.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        self.free.push(idx);
        self.nodes[idx].take().map(|n| n.value)
    }

    /// Remove and return the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.unlink(idx);
        // lint: allow(no-unwrap-in-prod) — intrusive-list invariant, see `unlink`
        let node = self.nodes[idx].take().expect("tail node exists");
        self.map.remove(&node.key);
        self.free.push(idx);
        Some((node.key, node.value))
    }

    /// The least-recently-used entry without removing it.
    pub fn peek_lru(&self) -> Option<(&K, &V)> {
        if self.tail == NIL {
            return None;
        }
        self.nodes[self.tail].as_ref().map(|n| (&n.key, &n.value))
    }

    /// Iterate entries from most- to least-recently-used.
    pub fn iter(&self) -> LruIter<'_, K, V> {
        LruIter { lru: self, cursor: self.head }
    }
}

/// MRU→LRU iterator over an [`LruMap`].
pub struct LruIter<'a, K, V> {
    lru: &'a LruMap<K, V>,
    cursor: usize,
}

impl<'a, K: Eq + Hash + Clone, V> Iterator for LruIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        // lint: allow(no-unwrap-in-prod) — intrusive-list invariant, see `unlink`
        let node = self.lru.nodes[self.cursor].as_ref().expect("cursor node exists");
        self.cursor = node.next;
        Some((&node.key, &node.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_updates_recency() {
        let mut lru = LruMap::new();
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("c", 3);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.peek_lru(), Some((&"a", &1)));
        // Touch "a": "b" becomes LRU.
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.peek_lru(), Some((&"b", &2)));
        assert_eq!(lru.pop_lru(), Some(("b", 2)));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn replace_keeps_single_entry() {
        let mut lru = LruMap::new();
        assert_eq!(lru.insert("k", 1), None);
        assert_eq!(lru.insert("k", 2), Some(1));
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&"k"), Some(&2));
    }

    #[test]
    fn remove_and_slot_reuse() {
        let mut lru = LruMap::new();
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.remove(&"a"), Some(1));
        assert_eq!(lru.remove(&"a"), None);
        lru.insert("c", 3); // reuses the freed slot
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"c"), Some(&3));
        assert_eq!(lru.get(&"b"), Some(&2));
    }

    #[test]
    fn pop_order_is_lru() {
        let mut lru = LruMap::new();
        for i in 0..5 {
            lru.insert(i, i * 10);
        }
        lru.get(&0); // 0 now MRU; order: 1,2,3,4,0
        let mut popped = Vec::new();
        while let Some((k, _)) = lru.pop_lru() {
            popped.push(k);
        }
        assert_eq!(popped, vec![1, 2, 3, 4, 0]);
        assert!(lru.is_empty());
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut lru = LruMap::new();
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.peek(&"a"), Some(&1));
        assert_eq!(lru.peek_lru(), Some((&"a", &1)), "peek must not promote");
    }

    #[test]
    fn iter_runs_mru_to_lru() {
        let mut lru = LruMap::new();
        for i in 0..4 {
            lru.insert(i, ());
        }
        let keys: Vec<i32> = lru.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![3, 2, 1, 0]);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut lru = LruMap::new();
        lru.insert("k", vec![1]);
        lru.get_mut(&"k").unwrap().push(2);
        assert_eq!(lru.peek(&"k"), Some(&vec![1, 2]));
    }

    #[test]
    fn single_entry_edge_cases() {
        let mut lru = LruMap::new();
        lru.insert("only", 1);
        assert_eq!(lru.get(&"only"), Some(&1)); // head == idx path
        assert_eq!(lru.pop_lru(), Some(("only", 1)));
        assert!(lru.is_empty());
        lru.insert("again", 2);
        assert_eq!(lru.peek_lru(), Some((&"again", &2)));
    }

    #[test]
    fn large_churn_consistency() {
        let mut lru = LruMap::new();
        let mut model = std::collections::HashMap::new();
        for i in 0..10_000u64 {
            let k = i % 257;
            lru.insert(k, i);
            model.insert(k, i);
            if i % 3 == 0 {
                let dead = (i * 7) % 257;
                assert_eq!(lru.remove(&dead), model.remove(&dead));
            }
        }
        assert_eq!(lru.len(), model.len());
        for (k, v) in &model {
            assert_eq!(lru.peek(k), Some(v));
        }
    }
}
