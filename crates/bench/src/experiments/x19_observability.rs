//! X19 — what observability costs: the metrics registry, sampled stage
//! spans, and the hot-key sketch on the per-event hot path.
//!
//! §5's operational stories (hot-spot diagnosis, loss accounting after a
//! failure) all presuppose that the engine can *see itself* — but
//! telemetry that taxes the hot path defeats the purpose of a low-latency
//! engine. Three arms run the identical Zipf-keyed counter workload on
//! the identical in-process 3-machine engine:
//!
//! * `metrics-off`   — registry still registered (counters are plain
//!   relaxed atomics either way) but stage spans and the hot-key sketch
//!   disabled (`metrics: false`);
//! * `metrics-1in64` — the shipped default: stage latency spans sampled
//!   1-in-64, per-shard space-saving hot-key sketches fed by the same
//!   sampler;
//! * `metrics-1in1`  — every event carries a span and feeds the sketch,
//!   the worst-case telemetry tax.
//!
//! Wall-clock overhead is advisory on shared runners; CI gates on the
//! deterministic surface instead: the `/metrics` exposition parses, its
//! counters equal the engine's own [`EngineStats`], nothing is lost, and
//! the sketch pins the true Zipf head key. The committed full-scale
//! numbers live in `BENCH_x19.json`, stamped with before/after registry
//! snapshots.

use std::time::{Duration, Instant};

use muppet_core::event::Event;
use muppet_core::json::Json;
use muppet_core::operator::{Emitter, FnUpdater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use muppet_obs::parse_exposition;
use muppet_runtime::engine::{Engine, EngineConfig, EngineStats, OperatorSet};
use muppet_runtime::overflow::OverflowPolicy;

use crate::harness::{keyed_events, snapshot_json, RegistrySnapshot};
use crate::table::{rate, Table};
use crate::Scale;

const MACHINES: usize = 3;
const WORKERS: usize = 2;
const KEYS: usize = 10_000;
const SKEW: f64 = 1.2;

fn workflow() -> Workflow {
    let mut b = Workflow::builder("obs-probe");
    b.external_stream("S1");
    b.updater("U1", &["S1"]);
    b.build().unwrap()
}

fn ops() -> OperatorSet {
    OperatorSet::new().updater(FnUpdater::new(
        "U1",
        |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        },
    ))
}

struct Outcome {
    elapsed: Duration,
    stats: EngineStats,
    /// `family{labels}` → value, parsed back from the `/metrics` text.
    scraped: Vec<(String, f64)>,
    /// Top ⟨updater, key, est, err⟩ from the hot-key sketches.
    hot: Vec<(String, muppet_core::event::Key, u64, u64)>,
    registry_before: RegistrySnapshot,
    registry_after: RegistrySnapshot,
}

impl Outcome {
    fn scraped_value(&self, flat: &str) -> Option<f64> {
        self.scraped.iter().find(|(name, _)| name == flat).map(|(_, v)| *v)
    }
}

fn run_arm(events: &[Event], metrics: bool, sample_n: u64) -> Outcome {
    let cfg = EngineConfig {
        machines: MACHINES,
        workers_per_machine: WORKERS,
        queue_capacity: 1 << 14,
        // Loss-free so every arm does identical work.
        overflow: OverflowPolicy::SourceThrottle,
        metrics,
        latency_sample_n: sample_n,
        ..EngineConfig::default()
    };
    let engine = Engine::start(workflow(), ops(), cfg, None).unwrap();
    let registry_before = engine.registry().snapshot();
    let t0 = Instant::now();
    for ev in events {
        engine.submit(ev.clone()).expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(180)), "arm did not drain");
    let elapsed = t0.elapsed();
    // The scrape CI gates on: render the exposition exactly as `GET
    // /metrics` serves it, parse it back, flatten to `family{labels}`.
    let text = engine.metrics_text();
    let scraped = parse_exposition(&text)
        .expect("/metrics must serve parseable Prometheus text")
        .into_iter()
        .map(|s| {
            let flat = if s.labels.is_empty() {
                s.name.clone()
            } else {
                let ls: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{}{{{}}}", s.name, ls.join(","))
            };
            (flat, s.value)
        })
        .collect();
    let hot = engine.hot_keys(5);
    let registry_after = engine.registry().snapshot();
    let stats = engine.shutdown();
    Outcome { elapsed, stats, scraped, hot, registry_before, registry_after }
}

fn arm_json(name: &str, n: usize, o: &Outcome, base: &Outcome) -> Json {
    let secs = o.elapsed.as_secs_f64().max(1e-9);
    let overhead = o.elapsed.as_secs_f64() / base.elapsed.as_secs_f64().max(1e-9) - 1.0;
    Json::obj([
        ("arm", Json::str(name)),
        ("events", Json::num(n as f64)),
        ("processed", Json::num(o.stats.processed as f64)),
        ("wall_ms", Json::num(o.elapsed.as_secs_f64() * 1e3)),
        ("events_per_sec", Json::num(n as f64 / secs)),
        ("overhead_vs_off_pct", Json::num((overhead * 1e4).round() / 1e2)),
        ("p50_e2e_us", Json::num(o.stats.latency.p50_us as f64)),
        ("p99_e2e_us", Json::num(o.stats.latency.p99_us as f64)),
        ("metrics_series_scraped", Json::num(o.scraped.len() as f64)),
        (
            "top_hot_keys",
            Json::arr(o.hot.iter().map(|(op, key, est, err)| {
                Json::obj([
                    ("op", Json::str(op)),
                    ("key", Json::str(String::from_utf8_lossy(key.as_bytes()).into_owned())),
                    ("estimate", Json::num(*est as f64)),
                    ("err_bound", Json::num(*err as f64)),
                ])
            })),
        ),
        (
            "registry",
            Json::obj([
                ("before", snapshot_json(&o.registry_before)),
                ("after", snapshot_json(&o.registry_after)),
            ]),
        ),
    ])
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X19",
        "the observability tax: registry counters, sampled spans, hot-key sketch",
        "§5 operational visibility; DESIGN.md §10",
    );
    let n = scale.events(200_000);
    let events = keyed_events("S1", n, KEYS, SKEW, 19);

    // Warm-up pass: the first engine to run pays the page-cache and
    // allocator cold-start, which would otherwise be billed to the
    // metrics-off baseline.
    let _ = run_arm(&events, false, 64);
    let off = run_arm(&events, false, 64);
    let sampled = run_arm(&events, true, 64);
    let full = run_arm(&events, true, 1);
    let arms = [("metrics-off", &off), ("metrics-1in64", &sampled), ("metrics-1in1", &full)];

    let mut table =
        Table::new(["arm", "events", "wall time", "events/s", "overhead", "series", "top hot key"]);
    for (name, o) in arms {
        let overhead = o.elapsed.as_secs_f64() / off.elapsed.as_secs_f64().max(1e-9) - 1.0;
        table.row([
            name.to_string(),
            n.to_string(),
            format!("{:.2?}", o.elapsed),
            rate(n, o.elapsed),
            format!("{:+.1}%", overhead * 100.0),
            o.scraped.len().to_string(),
            o.hot
                .first()
                .map(|(_, k, est, _)| format!("{} (~{est})", String::from_utf8_lossy(k.as_bytes())))
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    table.print();

    let sampled_overhead =
        (sampled.elapsed.as_secs_f64() / off.elapsed.as_secs_f64().max(1e-9) - 1.0) * 100.0;
    println!(
        "\nshape check: 1-in-64 sampling costs {sampled_overhead:+.1}% wall clock vs metrics-off \
         (target <3%); the sketch pinned the Zipf head key with {} series on /metrics",
        sampled.scraped.len(),
    );

    // --- deterministic CI gates (wall time is advisory on shared runners) ---
    for (name, o) in arms {
        assert_eq!(o.stats.submitted, n as u64, "{name}: every event submitted");
        assert_eq!(o.stats.processed, n as u64, "{name}: loss-free arms process everything");
        assert_eq!(
            o.stats.lost_machine_failure + o.stats.lost_in_queues + o.stats.dropped_overflow,
            0,
            "{name}: nothing may be lost"
        );
        // The scrape is the same registry `/metrics` renders: its counters
        // must agree exactly with the engine's own stats view.
        assert_eq!(
            o.scraped_value("muppet_events_submitted_total"),
            Some(n as f64),
            "{name}: scraped submitted counter matches"
        );
        assert_eq!(
            o.scraped_value("muppet_events_processed_total"),
            Some(o.stats.processed as f64),
            "{name}: scraped processed counter matches"
        );
        assert_eq!(
            o.scraped_value("muppet_cache_hits_total"),
            Some(o.stats.cache.hits as f64),
            "{name}: scraped cache hits match"
        );
    }
    // The sketch is off when metrics are off, and pins the true Zipf head
    // key (space-saving never undercounts a key it tracks) when on.
    assert!(off.hot.is_empty(), "metrics-off must not feed the hot-key sketch");
    for (name, o) in [("metrics-1in64", &sampled), ("metrics-1in1", &full)] {
        assert!(!o.hot.is_empty(), "{name}: hot-key sketch must surface keys");
        assert!(
            o.hot.iter().any(|(_, k, _, _)| k.as_bytes() == b"key-000000"),
            "{name}: the Zipf head key must rank in the top 5"
        );
    }
    // Stage histograms appear on /metrics only when metrics are on.
    let has_stages = |o: &Outcome| {
        o.scraped.iter().any(|(name, _)| name.starts_with("muppet_stage_latency_us_count"))
    };
    assert!(has_stages(&sampled) && has_stages(&full), "stage spans must be exported");
    let stage_count = |o: &Outcome| {
        o.scraped
            .iter()
            .filter(|(name, _)| name.starts_with("muppet_stage_latency_us_count"))
            .map(|(_, v)| *v as u64)
            .sum::<u64>()
    };
    assert!(
        stage_count(&full) > stage_count(&sampled),
        "1-in-1 sampling must record more spans than 1-in-64"
    );

    let doc = Json::obj([
        ("experiment", Json::str("x19")),
        ("workload", Json::str("Zipf-keyed counter updater, empty payloads")),
        ("machines", Json::num(MACHINES as f64)),
        ("workers_per_machine", Json::num(WORKERS as f64)),
        ("events", Json::num(n as f64)),
        ("keys", Json::num(KEYS as f64)),
        ("zipf_skew", Json::num(SKEW)),
        ("sampled_overhead_pct", Json::num((sampled_overhead * 1e2).round() / 1e2)),
        ("arms", Json::arr(arms.iter().map(|(name, o)| arm_json(name, n, o, &off)))),
    ]);
    std::fs::write("BENCH_x19.json", doc.to_pretty() + "\n")
        .unwrap_or_else(|e| eprintln!("could not write BENCH_x19.json: {e}"));
    println!("\nwrote BENCH_x19.json");
}
