//! Application configuration files.
//!
//! "To write a MapUpdate application, a developer writes the necessary map
//! and update functions, then a configuration file that includes the
//! workflow graph" (§3). The config also carries the Muppet deployment
//! knobs the paper describes: cluster size, queue limits, slate-cache size,
//! the flush interval ("immediate write-through" … "only when evicted",
//! §4.2), the store quorum (ONE/QUORUM/ALL), and per-updater TTLs.
//!
//! The file format is JSON (parsed with [`crate::json`]).

use crate::error::{Error, Result};
use crate::json::Json;
use crate::workflow::Workflow;

/// When dirty slates are flushed from the cache to the key-value store
/// (§4.2 "the application can set the flushing interval, ranging from
/// 'immediate write-through' to 'only when evicted from cache'").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushSpec {
    /// Write every slate mutation to the store immediately.
    WriteThrough,
    /// Flush dirty slates at most every `ms` milliseconds (background I/O).
    IntervalMs(u64),
    /// Write a slate only when the cache evicts it.
    OnEvict,
}

impl Default for FlushSpec {
    fn default() -> Self {
        FlushSpec::IntervalMs(100)
    }
}

/// Quorum required for store reads/writes (§4.2: "any single machine ... a
/// majority of replicas ... or all of the replicas").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConsistencySpec {
    /// Any single replica suffices.
    One,
    /// A majority of replicas.
    #[default]
    Quorum,
    /// Every replica.
    All,
}

/// Per-operator declaration inside the config file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpSpec {
    /// Operator name.
    pub name: String,
    /// Streams subscribed to.
    pub subscribe: Vec<String>,
    /// Streams declared as outputs.
    pub publish: Vec<String>,
    /// Slate TTL in seconds (updaters only).
    pub ttl_secs: Option<u64>,
}

/// The workflow portion of the config file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkflowSpec {
    /// External input streams.
    pub external_streams: Vec<String>,
    /// Extra internal streams (outputs are auto-declared from `publish`).
    pub streams: Vec<String>,
    /// Map functions.
    pub mappers: Vec<OpSpec>,
    /// Update functions.
    pub updaters: Vec<OpSpec>,
}

/// A full Muppet application configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct AppConfig {
    /// Application name.
    pub name: String,
    /// Number of (simulated) machines in the cluster.
    pub machines: usize,
    /// Worker threads per machine (Muppet 2.0: "as large a number of
    /// threads as the parallelization of the application code allows").
    pub workers_per_machine: usize,
    /// Per-worker input queue capacity (events); exceeding it triggers the
    /// overflow mechanism of §4.3.
    pub queue_capacity: usize,
    /// Machine-wide slate cache capacity (number of slates).
    pub slate_cache_capacity: usize,
    /// Flush policy for dirty slates.
    pub flush: FlushSpec,
    /// Store quorum.
    pub consistency: ConsistencySpec,
    /// Store replication factor.
    pub replication: usize,
    /// The workflow graph.
    pub workflow: WorkflowSpec,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            name: "muppet-app".into(),
            machines: 4,
            workers_per_machine: 4,
            queue_capacity: 4096,
            slate_cache_capacity: 100_000,
            flush: FlushSpec::default(),
            consistency: ConsistencySpec::default(),
            replication: 3,
            workflow: WorkflowSpec::default(),
        }
    }
}

impl AppConfig {
    /// Parse a configuration from JSON text.
    pub fn from_json_str(text: &str) -> Result<AppConfig> {
        let root = Json::parse(text)?;
        Self::from_json(&root)
    }

    /// Parse a configuration from a JSON value.
    pub fn from_json(root: &Json) -> Result<AppConfig> {
        let mut cfg = AppConfig::default();
        let obj =
            root.as_obj().ok_or_else(|| Error::Config("top level must be an object".into()))?;
        for (key, value) in obj {
            match key.as_str() {
                "name" => {
                    cfg.name = value
                        .as_str()
                        .ok_or_else(|| Error::Config("name must be a string".into()))?
                        .to_string();
                }
                "machines" => cfg.machines = usize_field(value, "machines")?,
                "workers_per_machine" => {
                    cfg.workers_per_machine = usize_field(value, "workers_per_machine")?
                }
                "queue_capacity" => cfg.queue_capacity = usize_field(value, "queue_capacity")?,
                "slate_cache_capacity" => {
                    cfg.slate_cache_capacity = usize_field(value, "slate_cache_capacity")?
                }
                "replication" => cfg.replication = usize_field(value, "replication")?,
                "flush" => cfg.flush = parse_flush(value)?,
                "consistency" => cfg.consistency = parse_consistency(value)?,
                "workflow" => cfg.workflow = parse_workflow(value)?,
                other => return Err(Error::Config(format!("unknown config key: {other}"))),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Serialize back to JSON (stable field order).
    pub fn to_json(&self) -> Json {
        let flush = match self.flush {
            FlushSpec::WriteThrough => Json::obj([("policy", Json::str("write_through"))]),
            FlushSpec::IntervalMs(ms) => {
                Json::obj([("policy", Json::str("interval")), ("ms", Json::num(ms as f64))])
            }
            FlushSpec::OnEvict => Json::obj([("policy", Json::str("on_evict"))]),
        };
        let consistency = match self.consistency {
            ConsistencySpec::One => "one",
            ConsistencySpec::Quorum => "quorum",
            ConsistencySpec::All => "all",
        };
        let op_to_json = |op: &OpSpec| {
            let mut fields = vec![
                ("name".to_string(), Json::str(op.name.clone())),
                (
                    "subscribe".to_string(),
                    Json::arr(op.subscribe.iter().map(|s| Json::str(s.clone()))),
                ),
            ];
            if !op.publish.is_empty() {
                fields.push((
                    "publish".to_string(),
                    Json::arr(op.publish.iter().map(|s| Json::str(s.clone()))),
                ));
            }
            if let Some(ttl) = op.ttl_secs {
                fields.push(("ttl_secs".to_string(), Json::num(ttl as f64)));
            }
            Json::Obj(fields)
        };
        Json::obj([
            ("name", Json::str(self.name.clone())),
            ("machines", Json::num(self.machines as f64)),
            ("workers_per_machine", Json::num(self.workers_per_machine as f64)),
            ("queue_capacity", Json::num(self.queue_capacity as f64)),
            ("slate_cache_capacity", Json::num(self.slate_cache_capacity as f64)),
            ("replication", Json::num(self.replication as f64)),
            ("flush", flush),
            ("consistency", Json::str(consistency)),
            (
                "workflow",
                Json::obj([
                    (
                        "external_streams",
                        Json::arr(
                            self.workflow.external_streams.iter().map(|s| Json::str(s.clone())),
                        ),
                    ),
                    (
                        "streams",
                        Json::arr(self.workflow.streams.iter().map(|s| Json::str(s.clone()))),
                    ),
                    ("mappers", Json::arr(self.workflow.mappers.iter().map(op_to_json))),
                    ("updaters", Json::arr(self.workflow.updaters.iter().map(op_to_json))),
                ]),
            ),
        ])
    }

    /// Build the validated [`Workflow`] graph from this config.
    pub fn build_workflow(&self) -> Result<Workflow> {
        let mut b = Workflow::builder(self.name.clone());
        for s in &self.workflow.external_streams {
            b.external_stream(s);
        }
        for s in &self.workflow.streams {
            b.stream(s);
        }
        // Mappers first, then updaters: OpId order matches declaration order
        // in the config file.
        for m in &self.workflow.mappers {
            let subs: Vec<&str> = m.subscribe.iter().map(String::as_str).collect();
            let pubs: Vec<&str> = m.publish.iter().map(String::as_str).collect();
            b.mapper_publishing(&m.name, &subs, &pubs);
        }
        for u in &self.workflow.updaters {
            let subs: Vec<&str> = u.subscribe.iter().map(String::as_str).collect();
            let pubs: Vec<&str> = u.publish.iter().map(String::as_str).collect();
            b.updater_full(&u.name, &subs, &pubs, u.ttl_secs);
        }
        b.build()
    }

    fn validate(&self) -> Result<()> {
        if self.machines == 0 {
            return Err(Error::Config("machines must be >= 1".into()));
        }
        if self.workers_per_machine == 0 {
            return Err(Error::Config("workers_per_machine must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(Error::Config("queue_capacity must be >= 1".into()));
        }
        if self.replication == 0 {
            return Err(Error::Config("replication must be >= 1".into()));
        }
        Ok(())
    }
}

fn usize_field(value: &Json, name: &str) -> Result<usize> {
    value
        .as_u64()
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| Error::Config(format!("{name} must be a non-negative integer")))
}

fn parse_flush(value: &Json) -> Result<FlushSpec> {
    let policy = value
        .get("policy")
        .and_then(Json::as_str)
        .ok_or_else(|| Error::Config("flush.policy must be a string".into()))?;
    match policy {
        "write_through" => Ok(FlushSpec::WriteThrough),
        "on_evict" => Ok(FlushSpec::OnEvict),
        "interval" => {
            let ms = value
                .get("ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| Error::Config("flush.ms must be a non-negative integer".into()))?;
            Ok(FlushSpec::IntervalMs(ms))
        }
        other => Err(Error::Config(format!("unknown flush policy: {other}"))),
    }
}

fn parse_consistency(value: &Json) -> Result<ConsistencySpec> {
    match value.as_str() {
        Some("one") => Ok(ConsistencySpec::One),
        Some("quorum") => Ok(ConsistencySpec::Quorum),
        Some("all") => Ok(ConsistencySpec::All),
        _ => Err(Error::Config("consistency must be one|quorum|all".into())),
    }
}

fn parse_workflow(value: &Json) -> Result<WorkflowSpec> {
    let mut spec = WorkflowSpec::default();
    let obj = value.as_obj().ok_or_else(|| Error::Config("workflow must be an object".into()))?;
    for (key, v) in obj {
        match key.as_str() {
            "external_streams" => spec.external_streams = string_list(v, "external_streams")?,
            "streams" => spec.streams = string_list(v, "streams")?,
            "mappers" => spec.mappers = op_list(v, "mappers")?,
            "updaters" => spec.updaters = op_list(v, "updaters")?,
            other => return Err(Error::Config(format!("unknown workflow key: {other}"))),
        }
    }
    Ok(spec)
}

fn string_list(value: &Json, name: &str) -> Result<Vec<String>> {
    let items = value.as_arr().ok_or_else(|| Error::Config(format!("{name} must be an array")))?;
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| Error::Config(format!("{name} entries must be strings")))
        })
        .collect()
}

fn op_list(value: &Json, name: &str) -> Result<Vec<OpSpec>> {
    let items = value.as_arr().ok_or_else(|| Error::Config(format!("{name} must be an array")))?;
    items
        .iter()
        .map(|v| {
            let mut op = OpSpec::default();
            let obj = v
                .as_obj()
                .ok_or_else(|| Error::Config(format!("{name} entries must be objects")))?;
            for (key, field) in obj {
                match key.as_str() {
                    "name" => {
                        op.name = field
                            .as_str()
                            .ok_or_else(|| Error::Config("operator name must be a string".into()))?
                            .to_string()
                    }
                    "subscribe" => op.subscribe = string_list(field, "subscribe")?,
                    "publish" => op.publish = string_list(field, "publish")?,
                    "ttl_secs" => {
                        op.ttl_secs = Some(field.as_u64().ok_or_else(|| {
                            Error::Config("ttl_secs must be a non-negative integer".into())
                        })?)
                    }
                    other => return Err(Error::Config(format!("unknown operator key: {other}"))),
                }
            }
            if op.name.is_empty() {
                return Err(Error::Config(format!("{name} entry missing name")));
            }
            Ok(op)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
    {
        "name": "retailer-count",
        "machines": 3,
        "workers_per_machine": 2,
        "queue_capacity": 512,
        "slate_cache_capacity": 1000,
        "replication": 3,
        "flush": {"policy": "interval", "ms": 50},
        "consistency": "quorum",
        "workflow": {
            "external_streams": ["S1"],
            "streams": [],
            "mappers": [{"name": "M1", "subscribe": ["S1"], "publish": ["S2"]}],
            "updaters": [{"name": "U1", "subscribe": ["S2"], "ttl_secs": 86400}]
        }
    }
    "#;

    #[test]
    fn parses_full_example() {
        let cfg = AppConfig::from_json_str(EXAMPLE).unwrap();
        assert_eq!(cfg.name, "retailer-count");
        assert_eq!(cfg.machines, 3);
        assert_eq!(cfg.workers_per_machine, 2);
        assert_eq!(cfg.queue_capacity, 512);
        assert_eq!(cfg.flush, FlushSpec::IntervalMs(50));
        assert_eq!(cfg.consistency, ConsistencySpec::Quorum);
        assert_eq!(cfg.workflow.mappers.len(), 1);
        assert_eq!(cfg.workflow.updaters[0].ttl_secs, Some(86_400));
    }

    #[test]
    fn builds_workflow_from_config() {
        let cfg = AppConfig::from_json_str(EXAMPLE).unwrap();
        let wf = cfg.build_workflow().unwrap();
        assert!(wf.is_external("S1"));
        assert!(wf.has_stream("S2"));
        assert_eq!(wf.op_id("M1"), Some(0));
        assert_eq!(wf.op_id("U1"), Some(1));
        // The config's per-updater TTL lands on the workflow declaration.
        assert_eq!(wf.op(1).ttl_secs, Some(86_400));
    }

    #[test]
    fn json_roundtrip_preserves_config() {
        let cfg = AppConfig::from_json_str(EXAMPLE).unwrap();
        let text = cfg.to_json().to_pretty();
        let back = AppConfig::from_json_str(&text).unwrap();
        // ttl_secs is carried through the roundtrip.
        assert_eq!(back.workflow.updaters[0].ttl_secs, Some(86_400));
        assert_eq!(back, cfg);
    }

    #[test]
    fn defaults_apply_for_missing_fields() {
        let cfg = AppConfig::from_json_str(r#"{"name": "minimal"}"#).unwrap();
        assert_eq!(cfg.machines, AppConfig::default().machines);
        assert_eq!(cfg.flush, FlushSpec::IntervalMs(100));
    }

    #[test]
    fn flush_policy_variants() {
        for (text, want) in [
            (r#"{"flush": {"policy": "write_through"}}"#, FlushSpec::WriteThrough),
            (r#"{"flush": {"policy": "on_evict"}}"#, FlushSpec::OnEvict),
            (r#"{"flush": {"policy": "interval", "ms": 0}}"#, FlushSpec::IntervalMs(0)),
        ] {
            assert_eq!(AppConfig::from_json_str(text).unwrap().flush, want, "{text}");
        }
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        assert!(AppConfig::from_json_str(r#"{"bogus": 1}"#).is_err());
        assert!(AppConfig::from_json_str(r#"{"machines": 0}"#).is_err());
        assert!(AppConfig::from_json_str(r#"{"machines": -1}"#).is_err());
        assert!(AppConfig::from_json_str(r#"{"consistency": "most"}"#).is_err());
        assert!(AppConfig::from_json_str(r#"{"flush": {"policy": "sometimes"}}"#).is_err());
        assert!(AppConfig::from_json_str(r#"{"workflow": {"mappers": [{}]}}"#).is_err());
        assert!(AppConfig::from_json_str(r#"[1,2]"#).is_err());
    }

    #[test]
    fn consistency_variants() {
        for (text, want) in [
            (r#"{"consistency": "one"}"#, ConsistencySpec::One),
            (r#"{"consistency": "quorum"}"#, ConsistencySpec::Quorum),
            (r#"{"consistency": "all"}"#, ConsistencySpec::All),
        ] {
            assert_eq!(AppConfig::from_json_str(text).unwrap().consistency, want);
        }
    }
}
