//! Hot-topic detection — Example 2 / Example 5 / Figure 1(c).
//!
//! Workflow: `S1 (tweets) → M1 → S2 → U1 → S3 → U2 → S4 (hot topics)`.
//!
//! * **M1** classifies each tweet into topics; for each topic `v` at
//!   minute-of-day `m` it publishes an event with key `"v m"` to S2.
//! * **U1** counts events per `⟨topic, minute⟩` key. The paper's U1
//!   publishes the count "after a minute"; a timer has no place in a
//!   deterministic event model, so this port publishes the *running* count
//!   with each event — the final event of a minute carries the full count,
//!   and U2's threshold test is monotone, so hot minutes are detected
//!   identically (just incrementally). The slate resets when the key
//!   recurs on a later day.
//! * **U2** keeps, per `⟨topic, minute⟩` key, the running average count of
//!   that minute across previous days (`total_count` and `days` in the
//!   paper, Example 5). When `count / avg_count` exceeds the threshold it
//!   publishes the key to S4, at most once per day.

use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use muppet_core::operator::{Emitter, Mapper, Updater};
use muppet_core::slate::Slate;
use muppet_core::time::{day_index, minute_of_day};
use muppet_core::workflow::Workflow;

/// External tweet stream.
pub const TWEET_STREAM: &str = "S1";
/// M1 → U1 stream of ⟨topic minute⟩ mentions.
pub const TOPIC_MINUTE_STREAM: &str = "S2";
/// U1 → U2 stream of ⟨topic minute, count⟩.
pub const COUNT_STREAM: &str = "S3";
/// Output stream of hot ⟨topic, minute⟩ pairs.
pub const HOT_STREAM: &str = "S4";
/// M1's name.
pub const TOPIC_MAPPER: &str = "topic-mapper";
/// U1's name.
pub const MINUTE_COUNTER: &str = "minute-counter";
/// U2's name.
pub const HOT_DETECTOR: &str = "hot-detector";

/// Figure 1(c): the three-stage pipeline.
pub fn workflow() -> Workflow {
    let mut b = Workflow::builder("hot-topics");
    b.external_stream(TWEET_STREAM);
    b.mapper_publishing(TOPIC_MAPPER, &[TWEET_STREAM], &[TOPIC_MINUTE_STREAM]);
    b.updater_publishing(MINUTE_COUNTER, &[TOPIC_MINUTE_STREAM], &[COUNT_STREAM]);
    b.updater_publishing(HOT_DETECTOR, &[COUNT_STREAM], &[HOT_STREAM]);
    b.build().expect("static workflow is valid")
}

/// Compose the `"<topic> <minute>"` key of Example 5.
pub fn topic_minute_key(topic: &str, minute: u32) -> Key {
    Key::from(format!("{topic} {minute}"))
}

/// M1: classify tweets into topics, emit per ⟨topic, minute⟩.
pub struct TopicMapper {
    name: String,
}

impl TopicMapper {
    /// Default-named mapper.
    pub fn new() -> Self {
        TopicMapper { name: TOPIC_MAPPER.to_string() }
    }
}

impl Default for TopicMapper {
    fn default() -> Self {
        Self::new()
    }
}

impl Mapper for TopicMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, ctx: &mut dyn Emitter, event: &Event) {
        let Ok(v) = Json::from_payload(&event.value) else { return };
        let Some(topics) = v.get("topics").and_then(Json::as_arr) else { return };
        let m = minute_of_day(event.ts);
        for topic in topics {
            if let Some(topic) = topic.as_str() {
                // Carry the event ts in the payload so downstream slates
                // can detect day rollover.
                let payload = Json::obj([("ts", Json::num(event.ts as f64))]).to_compact();
                ctx.publish(TOPIC_MINUTE_STREAM, topic_minute_key(topic, m), payload.into_bytes());
            }
        }
    }
}

/// U1: per ⟨topic, minute⟩ running count within the current day.
pub struct MinuteCounter {
    name: String,
}

impl MinuteCounter {
    /// Default-named updater.
    pub fn new() -> Self {
        MinuteCounter { name: MINUTE_COUNTER.to_string() }
    }
}

impl Default for MinuteCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl Updater for MinuteCounter {
    fn name(&self) -> &str {
        &self.name
    }

    fn update(&self, ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        let ts = Json::from_payload(&event.value)
            .ok()
            .and_then(|v| v.get("ts").and_then(Json::as_u64))
            .unwrap_or(event.ts);
        let day = day_index(ts);
        // Resident slate: parsed once per cache fault, mutated in place,
        // serialized only at byte boundaries (flush/handoff/HTTP).
        let state = slate
            .obj_mut_or(|| Json::obj([("count", Json::num(0)), ("day", Json::num(day as f64))]));
        let mut count = state.get("count").and_then(Json::as_u64).unwrap_or(0);
        let slate_day = state.get("day").and_then(Json::as_u64).unwrap_or(day);
        if slate_day != day {
            // Same minute key on a new day: fresh window (Example 5 counts
            // "the number of tweets per topic" per minute of *each* day).
            count = 0;
        }
        count += 1;
        state.set("count", Json::num(count as f64));
        state.set("day", Json::num(day as f64));
        // Publish the running count (see module docs for why not a timer).
        let out = Json::obj([("count", Json::num(count as f64)), ("ts", Json::num(ts as f64))]);
        ctx.publish(COUNT_STREAM, event.key.clone(), out.to_compact().into_bytes());
    }
}

/// U2: compare today's count against the historical per-day average for
/// this ⟨topic, minute⟩; emit to S4 when `count / avg > threshold`.
pub struct HotDetector {
    name: String,
    threshold: f64,
}

impl HotDetector {
    /// Detector with the given hotness threshold (Example 5's
    /// "pre-specified threshold").
    pub fn new(threshold: f64) -> Self {
        HotDetector { name: HOT_DETECTOR.to_string(), threshold }
    }
}

impl Updater for HotDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn update(&self, ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        let v = match Json::from_payload(&event.value) {
            Ok(v) => v,
            Err(_) => return,
        };
        let count = v.get("count").and_then(Json::as_u64).unwrap_or(0);
        let ts = v.get("ts").and_then(Json::as_u64).unwrap_or(event.ts);
        let day = day_index(ts);

        // Slate: Example 5's two summaries (total_count, days) plus the
        // bookkeeping to fold a finished day into them. Resident: parsed
        // at most once, mutated in place below.
        let state = slate.obj_mut_or(|| {
            Json::obj([
                ("total_count", Json::num(0)),
                ("days", Json::num(0)),
                ("last_day", Json::num(day as f64)),
                ("today_count", Json::num(0)),
                ("emitted_day", Json::Null),
            ])
        });
        let mut total = state.get("total_count").and_then(Json::as_u64).unwrap_or(0);
        let mut days = state.get("days").and_then(Json::as_u64).unwrap_or(0);
        let mut last_day = state.get("last_day").and_then(Json::as_u64).unwrap_or(day);
        let mut today_count = state.get("today_count").and_then(Json::as_u64).unwrap_or(0);
        let mut emitted_day = state.get("emitted_day").and_then(Json::as_u64);

        if day != last_day {
            // The previous day's final running count becomes history.
            total += today_count;
            days += 1;
            today_count = 0;
            last_day = day;
        }
        today_count = today_count.max(count);

        // avg_count_v_m per Example 5.
        if days > 0 {
            let avg = total as f64 / days as f64;
            if avg > 0.0 && (count as f64 / avg) > self.threshold && emitted_day != Some(day) {
                // "U2 publishes an event with key v m to a new stream S4,
                // indicating that topic v is hot in the minute m."
                let out = Json::obj([("count", Json::num(count as f64)), ("avg", Json::num(avg))]);
                ctx.publish(HOT_STREAM, event.key.clone(), out.to_compact().into_bytes());
                emitted_day = Some(day);
            }
        }

        state.set("total_count", Json::num(total as f64));
        state.set("days", Json::num(days as f64));
        state.set("last_day", Json::num(last_day as f64));
        state.set("today_count", Json::num(today_count as f64));
        state.set("emitted_day", emitted_day.map(|d| Json::num(d as f64)).unwrap_or(Json::Null));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::reference::ReferenceExecutor;
    use muppet_core::time::{MICROS_PER_DAY, MICROS_PER_MIN};

    fn tweet(ts: u64, topic: &str) -> Event {
        let value = Json::obj([
            ("user", Json::str("u1")),
            ("text", Json::str(format!("about {topic}"))),
            ("topics", Json::arr([Json::str(topic)])),
        ]);
        Event::new(TWEET_STREAM, ts, Key::from("u1"), value.to_compact().into_bytes())
    }

    fn executor(wf: &Workflow, threshold: f64) -> ReferenceExecutor<'_> {
        let mut exec = ReferenceExecutor::new(wf);
        exec.record_stream(HOT_STREAM);
        exec.register_mapper(TopicMapper::new());
        exec.register_updater(MinuteCounter::new());
        exec.register_updater(HotDetector::new(threshold));
        exec
    }

    #[test]
    fn mapper_keys_are_topic_space_minute() {
        use muppet_core::operator::VecEmitter;
        let m = TopicMapper::new();
        let mut em = VecEmitter::new();
        m.map(&mut em, &tweet(14 * MICROS_PER_MIN + 30, "sports"));
        let recs = em.take();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].key, Key::from("sports 14"), "Example 5: key = v m");
    }

    #[test]
    fn minute_counter_counts_per_topic_minute() {
        let wf = workflow();
        let mut exec = executor(&wf, 1e18); // threshold never trips here
                                            // 3 sports tweets in minute 5, 2 in minute 6, 1 music in minute 5.
        for i in 0..3 {
            exec.push_external(TWEET_STREAM, tweet(5 * MICROS_PER_MIN + i, "sports"));
        }
        for i in 0..2 {
            exec.push_external(TWEET_STREAM, tweet(6 * MICROS_PER_MIN + i, "sports"));
        }
        exec.push_external(TWEET_STREAM, tweet(5 * MICROS_PER_MIN + 9, "music"));
        exec.run_to_completion().unwrap();
        let count = |key: Key| -> u64 {
            exec.slate(MINUTE_COUNTER, &key)
                .and_then(Slate::as_json)
                .and_then(|v| v.get("count").and_then(Json::as_u64))
                .unwrap_or(0)
        };
        assert_eq!(count(topic_minute_key("sports", 5)), 3);
        assert_eq!(count(topic_minute_key("sports", 6)), 2);
        assert_eq!(count(topic_minute_key("music", 5)), 1);
        assert!(exec.recorded(HOT_STREAM).is_empty(), "nothing hot at absurd threshold");
    }

    #[test]
    fn hot_topic_fires_when_count_exceeds_historical_average() {
        let wf = workflow();
        let mut exec = executor(&wf, 3.0);
        // Day 0, minute 10: baseline of 2 sports tweets.
        for i in 0..2 {
            exec.push_external(TWEET_STREAM, tweet(10 * MICROS_PER_MIN + i, "sports"));
        }
        // Day 1, minute 10: 10 sports tweets — 5× the average of 2.
        for i in 0..10 {
            exec.push_external(
                TWEET_STREAM,
                tweet(MICROS_PER_DAY + 10 * MICROS_PER_MIN + i, "sports"),
            );
        }
        exec.run_to_completion().unwrap();
        let hot = exec.recorded(HOT_STREAM);
        assert_eq!(hot.len(), 1, "exactly one hot emission per key per day");
        assert_eq!(hot[0].key, topic_minute_key("sports", 10));
        let payload = Json::from_payload(&hot[0].value).unwrap();
        assert!(payload.get("count").and_then(Json::as_u64).unwrap() > 6);
    }

    #[test]
    fn no_hot_emission_without_history() {
        // Day 0 only: no average exists yet, so nothing can be "hot".
        let wf = workflow();
        let mut exec = executor(&wf, 1.0);
        for i in 0..50 {
            exec.push_external(TWEET_STREAM, tweet(3 * MICROS_PER_MIN + i, "tech"));
        }
        exec.run_to_completion().unwrap();
        assert!(exec.recorded(HOT_STREAM).is_empty());
    }

    #[test]
    fn steady_traffic_is_not_hot() {
        let wf = workflow();
        let mut exec = executor(&wf, 3.0);
        // Three days of ~identical traffic at minute 7.
        for day in 0..3u64 {
            for i in 0..5 {
                exec.push_external(
                    TWEET_STREAM,
                    tweet(day * MICROS_PER_DAY + 7 * MICROS_PER_MIN + i, "food"),
                );
            }
        }
        exec.run_to_completion().unwrap();
        assert!(
            exec.recorded(HOT_STREAM).is_empty(),
            "5 vs avg 5 is a ratio of 1.0 < threshold 3.0"
        );
    }

    #[test]
    fn minute_counter_resets_across_days() {
        let wf = workflow();
        let mut exec = executor(&wf, 1e18);
        exec.push_external(TWEET_STREAM, tweet(MICROS_PER_MIN, "music"));
        exec.push_external(TWEET_STREAM, tweet(MICROS_PER_DAY + MICROS_PER_MIN, "music"));
        exec.run_to_completion().unwrap();
        let slate = exec.slate(MINUTE_COUNTER, &topic_minute_key("music", 1)).unwrap();
        let v = slate.as_json().unwrap();
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(1), "fresh count on day 1");
        assert_eq!(v.get("day").and_then(Json::as_u64), Some(1));
    }
}
