//! X5 — §4.5: Muppet 2.0 vs 1.0 under a hot key.
//!
//! The paper's hotspot story, verbatim: in 1.0, "if [a worker] is
//! overloaded by a huge number of events with key k1 already in its queue,
//! a long time may pass before the worker gets around to processing events
//! with some key k2. Hence, Muppet 2.0 allows events with key k2 to be
//! placed into the queue of a second worker."
//!
//! Reproduction: dump a large burst of hot-key events (the "huge number
//! ... already in its queue"), then, while the backlog drains, probe with
//! paced *cold* keys and measure their latency (recorded updater-side from
//! a submit timestamp embedded in each probe). In 1.0 every cold key that
//! hashes to the hot worker waits out the entire backlog; in 2.0 the
//! two-choice dispatcher routes it to the significantly-shorter secondary
//! queue.

use std::sync::Arc;
use std::time::{Duration, Instant};

use muppet_core::event::{Event, Key};
use muppet_core::operator::{Emitter, FnMapper, FnUpdater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind, OperatorSet};
use muppet_runtime::metrics::Histogram;

use crate::table::{us, Table};
use crate::Scale;

const HOT_KEY: &str = "key-hot";
const COST_US: u64 = 30;

fn workflow() -> Workflow {
    let mut b = Workflow::builder("hotspot");
    b.external_stream("S1");
    b.mapper_publishing("M1", &["S1"], &["S2"]);
    b.updater("U1", &["S2"]);
    b.build().unwrap()
}

fn ops(epoch: Instant, cold: Arc<Histogram>) -> OperatorSet {
    OperatorSet::new()
        .mapper(FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        }))
        .updater(FnUpdater::new("U1", move |_: &mut dyn Emitter, ev: &Event, slate: &mut Slate| {
            // Fixed per-event cost (the paper's updaters do real work).
            let deadline = Instant::now() + Duration::from_micros(COST_US);
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
            slate.incr_counter(1);
            // Cold probes carry their submit time; record their latency.
            if ev.key.as_str() != Some(HOT_KEY) && ev.value.len() == 8 {
                let submitted_us = u64::from_le_bytes(ev.value.as_ref().try_into().unwrap());
                let now_us = epoch.elapsed().as_micros() as u64;
                cold.record(now_us.saturating_sub(submitted_us));
            }
        }))
}

/// A probe is "stalled" if it waited this long behind the hot backlog.
const STALL_THRESHOLD_US: u64 = 20_000;

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X5",
        "Muppet 1.0 vs 2.0: cold keys behind a hot-key backlog",
        "§4.5 (two-choice dispatch vs single-owner workers)",
    );
    let burst = scale.events(10_000);
    let probes = 1_000usize.min(burst / 4).max(50);

    let mut table = Table::new([
        "engine",
        "hot backlog drain",
        "cold mean",
        "cold p50",
        "stalled probes (>20ms)",
    ]);
    let mut drains = Vec::new();
    let mut p50s = Vec::new();
    let mut stalled_fracs = Vec::new();
    for kind in [EngineKind::Muppet1, EngineKind::Muppet2] {
        let cold_hist = Arc::new(Histogram::new());
        let epoch = Instant::now();
        let cfg = EngineConfig {
            kind,
            machines: 1,
            // Eight queues: the hot key's primary/secondary pair covers at
            // most two, so ~6 stay free in 2.0. In 1.0, one of the eight
            // workers owns the hot key and every cold key it owns (1/8 of
            // them) queues behind the backlog.
            workers_per_machine: 8,
            workers_per_op: 8,
            queue_capacity: 1 << 16,
            ..EngineConfig::default()
        };
        let engine = Engine::start(workflow(), ops(epoch, Arc::clone(&cold_hist)), cfg, None)
            .expect("engine");
        // 1. The hot burst: a huge number of hot-key events hit the queue
        //    at once ("overloaded by a huge number of events with key k1").
        let t0 = Instant::now();
        for i in 0..burst {
            engine.submit(Event::new("S1", i as u64, Key::from(HOT_KEY), Vec::new())).unwrap();
        }
        // 2. Many cold probes over many distinct keys, paced, while the
        //    backlog drains. Many keys ⟹ the trapped fraction concentrates
        //    around its expectation instead of depending on a few hashes.
        for i in 0..probes {
            let stamp = epoch.elapsed().as_micros() as u64;
            let key = Key::from(format!("key-cold-{:04}", i % 500));
            engine
                .submit(Event::new("S1", (burst + i) as u64, key, stamp.to_le_bytes().to_vec()))
                .unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(engine.drain(Duration::from_secs(300)));
        let drain = t0.elapsed();
        engine.shutdown();
        let cold = cold_hist.summary();
        // Count stalled probes from the histogram tail.
        let stalled = cold.count - count_below(&cold_hist, STALL_THRESHOLD_US);
        let frac = stalled as f64 / cold.count.max(1) as f64;
        drains.push(drain);
        p50s.push(cold.p50_us.max(1));
        stalled_fracs.push(frac);
        table.row([
            format!("{kind:?}"),
            format!("{drain:.2?}"),
            us(cold.mean_us),
            us(cold.p50_us),
            format!("{stalled}/{} ({:.1}%)", cold.count, frac * 100.0),
        ]);
    }
    table.print();
    let drain_speedup = drains[0].as_secs_f64() / drains[1].as_secs_f64();
    println!(
        "\nshape check: the skewed burst drains {drain_speedup:.1}× faster on 2.0 — its workers run\n\
         any function and the secondary queue shares the hot key's load (bounded at two\n\
         workers per slate), while 1.0 serializes the burst through single-owner workers.\n\
         Typical (p50) cold-key latency: {} (1.0) vs {} (2.0). The stalled-probe\n\
         fraction ({:.1}% vs {:.1}%) depends on which cold keys the flooded workers happen\n\
         to own — a hash artifact the paper's Example 6 splitting addresses (X12).",
        crate::table::us(p50s[0]),
        crate::table::us(p50s[1]),
        stalled_fracs[0] * 100.0,
        stalled_fracs[1] * 100.0
    );
    assert!(drain_speedup > 1.2, "2.0 must drain the skewed burst faster than 1.0");
}

/// Number of samples strictly below `threshold_us` (bucket-resolution).
fn count_below(h: &Histogram, threshold_us: u64) -> u64 {
    // The histogram is power-of-two bucketed; percentile search gives us an
    // equivalent: walk percentiles until the bucket bound exceeds the
    // threshold. Simpler: binary-search quantiles.
    let total = h.summary().count;
    if total == 0 {
        return 0;
    }
    let (mut lo, mut hi) = (0u64, total);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let q = mid as f64 / total as f64;
        if h.percentile_us(q) <= threshold_us {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}
