//! §5 "Bulk Reading of Slates": dumping many slates without knowing the
//! keys in advance — from the live caches (`Engine::dump_slates`, HTTP
//! `/keys/`) and from the durable store (`StoreCluster::scan_column`).

use std::sync::Arc;
use std::time::Duration;

use muppet::apps::retailer::{self, Counter, RetailerMapper};
use muppet::prelude::*;
use muppet::runtime::http::{http_get, percent_decode};
use muppet::slatestore::util::TempDir;
use muppet::workloads::checkins::CheckinGenerator;

fn run_engine_with_store(
    flush: FlushPolicy,
    events: Vec<Event>,
) -> (TempDir, Arc<StoreCluster>, Engine) {
    let dir = TempDir::new("bulk").unwrap();
    let store = Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).unwrap());
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 2,
        workers_per_machine: 2,
        flush,
        overflow: OverflowPolicy::SourceThrottle,
        ..EngineConfig::default()
    };
    let engine = Engine::start(
        retailer::workflow(),
        OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new()),
        cfg,
        Some(Arc::clone(&store)),
    )
    .unwrap();
    for ev in events {
        engine.submit(ev).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(60)));
    (dir, store, engine)
}

#[test]
fn engine_dump_covers_every_retailer_with_exact_counts() {
    let mut gen = CheckinGenerator::new(21, 500, 1000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, 4000);
    let truth = CheckinGenerator::expected_retailer_counts(&events);
    let (_dir, _store, engine) = run_engine_with_store(FlushPolicy::OnEvict, events);

    let dump = engine.dump_slates(retailer::COUNTER);
    assert_eq!(dump.len(), truth.len(), "one slate per retailer seen");
    for (key, bytes) in &dump {
        let retailer_name = key.as_str().unwrap();
        let count: u64 = String::from_utf8(bytes.clone()).unwrap().parse().unwrap();
        assert_eq!(count, truth[retailer_name], "{retailer_name}");
    }
    // Dump is key-sorted and duplicate-free.
    for w in dump.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
    engine.shutdown();
}

#[test]
fn store_scan_column_recovers_dump_after_shutdown() {
    let mut gen = CheckinGenerator::new(22, 500, 1000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, 3000);
    let truth = CheckinGenerator::expected_retailer_counts(&events);
    let (_dir, store, engine) = run_engine_with_store(FlushPolicy::WriteThrough, events);
    let now = engine.now_us();
    engine.shutdown();

    // The engine is gone; the store alone can enumerate every slate of the
    // column (update function), §5's second bulk-read option.
    let rows = store.scan_column(retailer::COUNTER, now + 1).unwrap();
    assert_eq!(rows.len(), truth.len());
    for (row, value) in rows {
        let retailer_name = String::from_utf8(row.to_vec()).unwrap();
        let count: u64 = String::from_utf8(value.to_vec()).unwrap().parse().unwrap();
        assert_eq!(count, truth[&retailer_name], "{retailer_name}");
    }
    // Scanning an unknown column yields nothing.
    assert!(store.scan_column("no-such-updater", now + 1).unwrap().is_empty());
}

#[test]
fn http_keys_endpoint_enumerates_slates_for_fetching() {
    let mut gen = CheckinGenerator::new(23, 200, 1000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, 2000);
    let truth = CheckinGenerator::expected_retailer_counts(&events);
    let (_dir, _store, engine) = run_engine_with_store(FlushPolicy::OnEvict, events);
    let engine = Arc::new(engine);
    let server = HttpSlateServer::serve(Arc::clone(&engine) as _).unwrap();

    // 1. Enumerate keys without prior knowledge.
    let (code, body) =
        http_get(&format!("{}/keys/{}", server.base_url(), retailer::COUNTER)).unwrap();
    assert_eq!(code, 200);
    let keys: Vec<Vec<u8>> = String::from_utf8(body)
        .unwrap()
        .lines()
        .map(|line| percent_decode(line).unwrap())
        .collect();
    assert_eq!(keys.len(), truth.len());
    // 2. Fetch each enumerated key.
    for key in keys {
        let enc = muppet::runtime::http::percent_encode(&key);
        let (code, body) =
            http_get(&format!("{}/slate/{}/{enc}", server.base_url(), retailer::COUNTER)).unwrap();
        assert_eq!(code, 200);
        let name = String::from_utf8(key).unwrap();
        let count: u64 = String::from_utf8(body).unwrap().parse().unwrap();
        assert_eq!(count, truth[&name], "{name}");
    }
    // Unknown updater lists nothing.
    let (code, body) = http_get(&format!("{}/keys/ghost", server.base_url())).unwrap();
    assert_eq!(code, 200);
    assert!(body.is_empty());
}
