//! F1a — Figure 1(a): a general MapUpdate workflow graph (cycles allowed)
//! executes deterministically.
//!
//! Builds a 6-node workflow in the shape of Figure 1(a) — multiple maps
//! and updates, fan-in, fan-out, and a cycle — runs it twice on the
//! reference executor, and verifies bit-identical slates; then runs it on
//! the Muppet 2.0 engine and verifies the commutative slate sums match.

use std::time::Duration;

use muppet_core::event::{Event, Key};
use muppet_core::operator::{Emitter, FnMapper, FnUpdater};
use muppet_core::reference::ReferenceExecutor;
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind, OperatorSet};
use muppet_runtime::overflow::OverflowPolicy;

use crate::table::Table;
use crate::Scale;

fn figure_1a_workflow() -> Workflow {
    // S1 → M1 → {S2, S3}; S2 → U1; S3 → M2 → S4 → U2 → S4 (cycle, bounded
    // by a countdown); {S2} also feeds U2 (fan-in).
    let mut b = Workflow::builder("figure-1a");
    b.external_stream("S1");
    b.mapper_publishing("M1", &["S1"], &["S2", "S3"]);
    b.mapper_publishing("M2", &["S3"], &["S4"]);
    b.updater("U1", &["S2"]);
    b.updater_publishing("U2", &["S2", "S4"], &["S4"]);
    b.build().expect("valid workflow")
}

fn operators() -> (Vec<&'static str>, OperatorSet) {
    let ops = OperatorSet::new()
        .mapper(FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
            ctx.publish("S3", ev.key.clone(), ev.value.to_vec());
        }))
        .mapper(FnMapper::new("M2", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S4", ev.key.clone(), ev.value.to_vec());
        }))
        .updater(FnUpdater::new("U1", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        }))
        .updater(FnUpdater::new("U2", |ctx: &mut dyn Emitter, ev: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
            // Countdown cycle: payload "n" republishes n-1 until zero.
            if let Some(n) = ev.value_str().and_then(|s| s.parse::<u32>().ok()) {
                if n > 0 {
                    ctx.publish("S4", ev.key.clone(), (n - 1).to_string().into_bytes());
                }
            }
        }));
    (vec!["M1", "M2", "U1", "U2"], ops)
}

fn reference_slates(events: &[Event]) -> Vec<(String, u64, u64)> {
    let wf = figure_1a_workflow();
    let mut exec = ReferenceExecutor::new(&wf);
    let (_, _ops) = operators();
    // The reference executor needs fresh instances (Box, not the set).
    exec.register_mapper(FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
        ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        ctx.publish("S3", ev.key.clone(), ev.value.to_vec());
    }));
    exec.register_mapper(FnMapper::new("M2", |ctx: &mut dyn Emitter, ev: &Event| {
        ctx.publish("S4", ev.key.clone(), ev.value.to_vec());
    }));
    exec.register_updater(FnUpdater::new(
        "U1",
        |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        },
    ));
    exec.register_updater(FnUpdater::new(
        "U2",
        |ctx: &mut dyn Emitter, ev: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
            if let Some(n) = ev.value_str().and_then(|s| s.parse::<u32>().ok()) {
                if n > 0 {
                    ctx.publish("S4", ev.key.clone(), (n - 1).to_string().into_bytes());
                }
            }
        },
    ));
    for ev in events {
        exec.push_external("S1", ev.clone());
    }
    exec.run_to_completion().expect("reference run");
    let mut rows = Vec::new();
    for key in ["a", "b", "c"] {
        let u1 = exec.slate("U1", &Key::from(key)).map(|s| s.counter()).unwrap_or(0);
        let u2 = exec.slate("U2", &Key::from(key)).map(|s| s.counter()).unwrap_or(0);
        rows.push((key.to_string(), u1, u2));
    }
    rows
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner("F1a", "general workflow graphs execute deterministically", "Figure 1(a), §3");
    let n = scale.events(300);
    let events: Vec<Event> = (0..n)
        .map(|i| {
            let key = ["a", "b", "c"][i % 3];
            // countdown seed 0..3 so cycles stay bounded
            Event::new("S1", i as u64, Key::from(key), (i % 4).to_string())
        })
        .collect();

    let wf = figure_1a_workflow();
    assert!(wf.has_declared_cycle(), "figure 1(a) shape includes a cycle");
    let ref1 = reference_slates(&events);
    let ref2 = reference_slates(&events);
    assert_eq!(ref1, ref2, "reference executor must be deterministic");

    // Engine run (zero loss) — commutative counts must match exactly.
    let (_, ops) = operators();
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 2,
        workers_per_machine: 2,
        overflow: OverflowPolicy::SourceThrottle,
        ..EngineConfig::default()
    };
    let engine = Engine::start(figure_1a_workflow(), ops, cfg, None).expect("engine");
    for ev in &events {
        engine.submit(ev.clone()).expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(120)));
    let mut table =
        Table::new(["key", "U1 (ref)", "U2 (ref)", "U1 (engine)", "U2 (engine)", "match"]);
    let mut all_match = true;
    for (key, u1, u2) in &ref1 {
        let e1 = crate::harness::read_counter(&engine, "U1", key);
        let e2 = crate::harness::read_counter(&engine, "U2", key);
        let ok = e1 == *u1 && e2 == *u2;
        all_match &= ok;
        table.row([
            key.clone(),
            u1.to_string(),
            u2.to_string(),
            e1.to_string(),
            e2.to_string(),
            if ok { "✓" } else { "✗" }.into(),
        ]);
    }
    engine.shutdown();
    table.print();
    println!("\nDOT export of the graph (Figure 1 rendering):");
    for line in figure_1a_workflow().to_dot().lines().take(6) {
        println!("  {line}");
    }
    println!("  ...");
    println!(
        "\nshape check: two reference runs identical = true; engine matches reference = {all_match}"
    );
    assert!(all_match);
}
