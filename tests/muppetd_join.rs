//! Elastic scale-out, end to end: a 3-node loopback cluster of real
//! `muppetd` OS processes (store service on node 0) accepts a 4th node
//! via `--join` *while events are flowing*. The joiner reserves an id at
//! the master's HTTP `/join`, starts with its listener live, announces
//! itself on the wire, and the master's epoch-stamped membership update
//! installs it everywhere — with the moved slates handed off through the
//! slate store. Zero events may be lost to the handoff: the only
//! permitted losses remain the documented §4.3 failure counters, and no
//! machine failed here.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use muppet::slatestore::util::TempDir;

struct Cluster {
    children: Vec<Option<Child>>,
    http_ports: Vec<u16>,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn http(method: &str, port: u16, path: &str, body: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(("127.0.0.1", port))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(&mut reader, &mut body)?;
    Ok((code, body))
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while !cond() {
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    true
}

/// Extract `"field":<number>` from a compact JSON body.
fn json_u64(body: &str, field: &str) -> Option<u64> {
    let at = body.find(&format!("\"{field}\":"))?;
    let rest = &body[at + field.len() + 3..];
    let end = rest.find(|c: char| !c.is_ascii_digit() && c != '.').unwrap_or(rest.len());
    rest[..end].split('.').next()?.parse().ok()
}

fn status_field(port: u16, field: &str) -> Option<u64> {
    match http("GET", port, "/status", b"") {
        Ok((200, body)) => json_u64(&String::from_utf8_lossy(&body), field),
        _ => None,
    }
}

fn start_cluster(store_dir: &str) -> Cluster {
    const ATTEMPTS: usize = 3;
    for attempt in 1..=ATTEMPTS {
        match try_start_cluster(store_dir, attempt) {
            Ok(cluster) => return cluster,
            Err(e) if attempt < ATTEMPTS => {
                eprintln!("cluster start attempt {attempt} failed ({e}); retrying on fresh ports");
            }
            Err(e) => panic!("cluster never became ready after {ATTEMPTS} attempts: {e}"),
        }
    }
    unreachable!()
}

fn try_start_cluster(store_dir: &str, attempt: usize) -> Result<Cluster, String> {
    let topology = muppet::net::Topology::loopback_ephemeral(3, true)
        .map_err(|e| format!("cannot probe free ports: {e}"))?;
    let http_ports: Vec<u16> = topology.nodes.iter().map(|n| n.http_port).collect();
    let peers = topology
        .nodes
        .iter()
        .map(|n| format!("{}:{}:{}", n.host, n.port, n.http_port))
        .collect::<Vec<_>>()
        .join(",");
    let children = (0..3)
        .map(|node| {
            Some(
                Command::new(env!("CARGO_BIN_EXE_muppetd"))
                    .args([
                        "--peers",
                        &peers,
                        "--node",
                        &node.to_string(),
                        "--app",
                        "hot_topics",
                        "--store-host",
                        "0",
                        "--data-dir",
                        &format!("{store_dir}/attempt-{attempt}"),
                    ])
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
                    .expect("spawn muppetd"),
            )
        })
        .collect();
    let mut cluster = Cluster { children, http_ports };
    for node in 0..3 {
        let port = cluster.http_ports[node];
        let ready = wait_until(Duration::from_secs(20), || {
            if let Some(child) = cluster.children[node].as_mut() {
                if let Ok(Some(status)) = child.try_wait() {
                    eprintln!("muppetd node {node} exited early: {status}");
                    return true; // break the wait; the http check below fails
                }
            }
            matches!(http("GET", port, "/status", b""), Ok((200, _)))
        });
        if !ready || !matches!(http("GET", port, "/status", b""), Ok((200, _))) {
            return Err(format!("node {node} on http port {port} never became ready"));
        }
    }
    Ok(cluster)
}

#[test]
fn fourth_muppetd_joins_a_running_cluster_with_zero_handoff_loss() {
    let store_dir = TempDir::new("muppetd-join-store").unwrap();
    let mut cluster = start_cluster(&store_dir.path().display().to_string());
    let [a, _b, c] = [cluster.http_ports[0], cluster.http_ports[1], cluster.http_ports[2]];

    const TOPICS: usize = 24;
    let mut submitted = 0u64;
    let mut ingest = |port: u16, n: usize| {
        for _ in 0..n {
            let topic = format!("t{}", submitted as usize % TOPICS);
            let tweet = format!(r#"{{"topics":["{topic}"]}}"#);
            let (code, body) =
                http("POST", port, &format!("/submit/S1/tw-{submitted}"), tweet.as_bytes())
                    .unwrap();
            assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
            submitted += 1;
        }
    };

    // Pre-join traffic: every machine owns some ⟨topic, minute⟩ arcs.
    ingest(a, 72);
    assert!(
        wait_until(Duration::from_secs(20), || {
            status_field(a, "epoch") == Some(0)
                && (0..3)
                    .map(|n| status_field(cluster.http_ports[n], "processed").unwrap_or(0))
                    .sum::<u64>()
                    >= 72
        }),
        "pre-join traffic never processed"
    );

    // Grow the cluster: reserve ports for node 3 and start it with
    // --join while traffic keeps flowing (events are in flight during
    // the reserve → announce → prepare → commit window).
    let (d_port, d_http) = {
        let hold_a = TcpListener::bind("127.0.0.1:0").unwrap();
        let hold_b = TcpListener::bind("127.0.0.1:0").unwrap();
        (hold_a.local_addr().unwrap().port(), hold_b.local_addr().unwrap().port())
    };
    let joiner = Command::new(env!("CARGO_BIN_EXE_muppetd"))
        .args([
            "--join",
            &format!("127.0.0.1:{a}"),
            "--listen",
            &format!("127.0.0.1:{d_port}:{d_http}"),
            "--app",
            "hot_topics",
            "--store-host",
            "0",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn joining muppetd");
    cluster.children.push(Some(joiner));
    cluster.http_ports.push(d_http);

    // Keep ingesting through the join window.
    let joined = wait_until(Duration::from_secs(30), || {
        ingest(a, 8);
        let epoch_everywhere = [a, c, d_http]
            .iter()
            .all(|&p| status_field(p, "epoch").map(|e| e >= 1).unwrap_or(false));
        epoch_everywhere && status_field(a, "machines") == Some(4)
    });
    assert!(joined, "epoch 1 never installed on master, survivor, and joiner");

    // Post-join traffic — some of it now lands on the new machine.
    ingest(a, 72);
    let all_processed = wait_until(Duration::from_secs(30), || {
        (0..4).map(|n| status_field(cluster.http_ports[n], "processed").unwrap_or(0)).sum::<u64>()
            >= submitted * 3 // mapper + minute-counter + hot-detector per tweet
    });
    assert!(all_processed, "cluster never processed all {submitted} tweets");

    // The joiner is doing real work: it processed events (forwarded or
    // routed directly once senders installed the epoch).
    assert!(
        wait_until(Duration::from_secs(10), || status_field(d_http, "processed").unwrap_or(0) > 0),
        "the joined machine never processed an event"
    );

    // Zero loss: sum the per-⟨topic, minute⟩ counts over every node's
    // view (reads for moved keys fall back to the store if the new owner
    // has not faulted them in yet). Counts must equal submissions.
    let mut total = 0u64;
    for t in 0..TOPICS {
        let mut per_topic = 0u64;
        for minute in 0..5u32 {
            if let Ok((200, body)) =
                http("GET", c, &format!("/slate/minute-counter/t{t}%20{minute}"), b"")
            {
                per_topic += json_u64(&String::from_utf8_lossy(&body), "count").unwrap_or(0);
            }
        }
        total += per_topic;
    }
    assert_eq!(total, submitted, "per-topic counts must sum to every submitted tweet");

    // The only permitted losses are the §4.3 failure counters — and no
    // machine failed, so every loss counter must be zero, on every node.
    for (n, &port) in cluster.http_ports.iter().enumerate() {
        assert_eq!(status_field(port, "lost_machine_failure"), Some(0), "node {n}");
        assert_eq!(status_field(port, "lost_in_queues"), Some(0), "node {n}");
        assert_eq!(status_field(port, "dropped_overflow"), Some(0), "node {n}");
        let (code, body) = http("GET", port, "/status", b"").unwrap();
        assert_eq!(code, 200);
        assert!(
            String::from_utf8_lossy(&body).contains("\"failed_machines\":[]"),
            "node {n}: no machine may be marked failed by a clean join"
        );
    }

    // /membership reflects the grown cluster everywhere.
    let (code, body) = http("GET", c, "/membership", b"").unwrap();
    assert_eq!(code, 200);
    let body = String::from_utf8_lossy(&body).to_string();
    assert!(json_u64(&body, "epoch").unwrap_or(0) >= 1, "{body}");
    assert_eq!(body.matches("\"id\":").count(), 4, "{body}");
}
