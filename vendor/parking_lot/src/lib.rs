//! Offline stand-in for `parking_lot`: `Mutex`, `RwLock`, and `Condvar`
//! with parking_lot's API shape (no lock poisoning, no `Result`s) backed by
//! `std::sync`. Poisoned std locks are recovered transparently, which
//! matches parking_lot's behaviour of never poisoning.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual exclusion lock. `lock()` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock. `read()`/`write()` never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let mut guard = pair.0.lock();
        let res = pair.1.wait_for(&mut guard, Duration::from_millis(10));
        assert!(res.timed_out());
        drop(guard);

        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let mut g = pair2.0.lock();
            while !*g {
                let r = pair2.1.wait_for(&mut g, Duration::from_secs(5));
                if r.timed_out() {
                    return false;
                }
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        assert!(t.join().unwrap());
    }
}
