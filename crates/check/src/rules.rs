//! The deny rules. Each rule pattern-matches the code-only projection
//! produced by [`crate::lexer`], consults `// lint: allow(rule) — reason`
//! annotations in the raw text, and yields [`Finding`]s.
//!
//! Rules are repo-specific by design: this is not a general Rust linter,
//! it encodes THIS workspace's invariants (see DESIGN.md §12).

use crate::lexer::{has_word, LineInfo};

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `no-raw-lock`.
    pub rule: &'static str,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// `file:line: rule: message` — the clickable diagnostic format.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// All rule identifiers, for `--help` and fixture enumeration.
pub const RULES: [&str; 4] =
    ["no-raw-lock", "no-unwrap-in-prod", "no-wallclock-in-deterministic", "lock-across-io"];

/// Is line `idx` (0-based) excused from `rule` by an annotation on the
/// same line or the line above? The annotation must carry a reason:
/// `// lint: allow(rule-name) — why this is fine`.
fn allowed(rule: &str, lines: &[LineInfo], idx: usize) -> bool {
    let carries = |raw: &str| -> bool {
        let Some(at) = raw.find("lint: allow(") else {
            return false;
        };
        let rest = &raw[at + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            return false;
        };
        if rest[..close].trim() != rule {
            return false;
        }
        // Require a non-empty reason after a dash.
        let after = &rest[close + 1..];
        let reason = after.trim_start().trim_start_matches(['—', '–', '-', ' ']).trim();
        !reason.is_empty()
    };
    carries(&lines[idx].raw) || (idx > 0 && carries(&lines[idx - 1].raw))
}

/// `no-raw-lock`: every `Mutex`/`RwLock`/`Condvar` must come from
/// `muppet_core::sync`, never from `parking_lot` or `std::sync` directly —
/// otherwise the lock is invisible to the `lock-audit` order graph and the
/// sched harness. (`vendor/` and the shim itself are path-exempt in the
/// driver, not here.)
pub fn no_raw_lock(file: &str, lines: &[LineInfo]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let raw_parking = has_word(code, "parking_lot");
        let raw_std = std_sync_lock(code);
        if (raw_parking || raw_std) && !allowed("no-raw-lock", lines, idx) {
            let which = if raw_parking { "parking_lot" } else { "std::sync" };
            out.push(Finding {
                rule: "no-raw-lock",
                file: file.to_string(),
                line: idx + 1,
                message: format!(
                    "raw {which} lock; use muppet_core::sync so the lock participates \
                     in lock-audit order tracking"
                ),
            });
        }
    }
    out
}

/// Does this line name a lock type out of `std::sync`? Only the lock
/// types are banned — `std::sync::{mpsc, atomic, Arc, Weak, Once}` are
/// fine, so the probe inspects what actually follows each `std::sync`
/// path, not whether `Mutex` appears anywhere on the line (the shim's
/// own `Mutex<std::sync::mpsc::Receiver<…>>` must not trip it).
fn std_sync_lock(code: &str) -> bool {
    const LOCKS: [&str; 3] = ["Mutex", "RwLock", "Condvar"];
    let mut rest = code;
    while let Some(at) = rest.find("std::sync") {
        let tail = &rest[at + "std::sync".len()..];
        if LOCKS.iter().any(|t| tail.starts_with(&format!("::{t}"))) {
            return true;
        }
        // Grouped import: `use std::sync::{Arc, Mutex}`.
        if let Some(group) = tail.strip_prefix("::{") {
            let group = group.split('}').next().unwrap_or(group);
            if LOCKS.iter().any(|t| has_word(group, t)) {
                return true;
            }
        }
        rest = tail;
    }
    false
}

/// `no-unwrap-in-prod`: `.unwrap()` / `.expect(` outside `#[cfg(test)]`
/// in the serving crates is a latent panic on a production path — return
/// an error or annotate why the value is infallible.
pub fn no_unwrap_in_prod(file: &str, lines: &[LineInfo]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let hit = if code.contains(".unwrap()") {
            Some(".unwrap()")
        } else if code.contains(".expect(") {
            Some(".expect(…)")
        } else {
            None
        };
        if let Some(what) = hit {
            if !allowed("no-unwrap-in-prod", lines, idx) {
                out.push(Finding {
                    rule: "no-unwrap-in-prod",
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "{what} on a production path; surface an error (or annotate: \
                         `// lint: allow(no-unwrap-in-prod) — <why infallible>`)"
                    ),
                });
            }
        }
    }
    out
}

/// `no-wallclock-in-deterministic`: `core` (the reference executor,
/// the MBF codec — whose byte output must be a pure function of the
/// document — and everything else replay depends on) and the workload
/// generators must be wall-clock free — determinism is the repo's
/// exactness invariant.
pub fn no_wallclock_in_deterministic(file: &str, lines: &[LineInfo]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for probe in ["Instant::now", "SystemTime::now"] {
            if code.contains(probe) && !allowed("no-wallclock-in-deterministic", lines, idx) {
                out.push(Finding {
                    rule: "no-wallclock-in-deterministic",
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "{probe} in a deterministic path; thread a logical clock through \
                         instead (core::time)"
                    ),
                });
            }
        }
    }
    out
}

/// A guard binding live in some enclosing block.
struct LiveGuard {
    name: String,
    depth: usize,
    line: usize,
}

/// `lock-across-io`: a lock guard bound with `let` and still live when
/// the same scope performs blocking IO (`fsync`/`write_all`/`send`
/// family) serializes IO latency behind the lock. Annotate the sites
/// where that *is* the design (group commit) and restructure the rest.
pub fn lock_across_io(file: &str, lines: &[LineInfo]) -> Vec<Finding> {
    const IO_CALLS: [&str; 6] =
        ["sync_all(", "sync_data(", "fsync(", "write_all(", ".send(", "send_to("];
    let mut out = Vec::new();
    let mut guards: Vec<LiveGuard> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        // Scope closes kill guards bound deeper than where we are now.
        // (`depth_start`, not `depth_end`: on the `}` line itself the
        // guard is still live; it dies on the first line after.)
        guards.retain(|g| g.depth <= line.depth_start);
        // Explicit early drop.
        if let Some(at) = code.find("drop(") {
            let arg = code[at + "drop(".len()..].trim_start();
            guards.retain(|g| !arg.starts_with(g.name.as_str()));
        }
        let io_hit = IO_CALLS.iter().find(|c| code.contains(**c));
        if let Some(io) = io_hit {
            if !guards.is_empty() && !allowed("lock-across-io", lines, idx) {
                let held: Vec<String> =
                    guards.iter().map(|g| format!("`{}` (line {})", g.name, g.line)).collect();
                out.push(Finding {
                    rule: "lock-across-io",
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "{} while lock guard{} {} live; move the IO outside the \
                         critical section or annotate the design",
                        io.trim_end_matches('('),
                        if held.len() == 1 { " is" } else { "s are" },
                        held.join(", "),
                    ),
                });
            }
        }
        if let Some(guard) = guard_binding(code) {
            guards.push(LiveGuard {
                name: guard,
                depth: line.depth_end.max(line.depth_start),
                line: idx + 1,
            });
        }
    }
    out
}

/// If this line binds a lock guard with `let`, return the binding name.
/// Recognized shapes: `let [mut] g = ….lock();` (also `.read()` /
/// `.write()`), and `[if] let Some([mut] g) = ….try_lock()`.
fn guard_binding(code: &str) -> Option<String> {
    let trimmed = code.trim();
    let after_let = trimmed.find("let ").map(|at| trimmed[at + 4..].trim_start())?;
    let ends_with_acquire = |s: &str| {
        let s = s.trim_end().trim_end_matches(['{', ';']).trim_end();
        let s = s.strip_suffix('?').unwrap_or(s);
        s.ends_with(".lock()") || s.ends_with(".read()") || s.ends_with(".write()")
    };
    if let Some(after_some) = after_let.strip_prefix("Some(") {
        if code.contains(".try_lock()") {
            let inner = after_some.split(')').next()?;
            return Some(inner.trim().trim_start_matches("mut ").to_string());
        }
        return None;
    }
    if !ends_with_acquire(after_let) {
        return None;
    }
    let name = after_let.trim_start_matches("mut ").split([' ', ':', '=']).next()?;
    let name = name.trim();
    (!name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_'))
        .then(|| name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn raw_lock_flagged_and_allowed() {
        let f = no_raw_lock("f.rs", &scan("use parking_lot::Mutex;\n"));
        assert_eq!(f.len(), 1);
        let f = no_raw_lock("f.rs", &scan("use std::sync::{Arc, Mutex};\n"));
        assert_eq!(f.len(), 1);
        let f =
            no_raw_lock("f.rs", &scan("use std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\n"));
        assert!(f.is_empty(), "Arc/atomics are fine: {f:?}");
        let f = no_raw_lock("f.rs", &scan("release: Mutex<std::sync::mpsc::Receiver<()>>,\n"));
        assert!(f.is_empty(), "shim Mutex over an mpsc type is fine: {f:?}");
        let f = no_raw_lock("f.rs", &scan("let g: std::sync::MutexGuard<u8>;\n"));
        assert_eq!(f.len(), 1, "direct std::sync lock paths still flagged");
        let f = no_raw_lock(
            "f.rs",
            &scan("// lint: allow(no-raw-lock) — bootstrap before shim exists\nuse parking_lot::Mutex;\n"),
        );
        assert!(f.is_empty());
        // An annotation without a reason does not count.
        let f = no_raw_lock("f.rs", &scan("use parking_lot::Mutex; // lint: allow(no-raw-lock)\n"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn unwrap_in_prod_flagged_test_exempt() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); z.expect(\"ok\"); }\n}\n";
        let f = no_unwrap_in_prod("f.rs", &scan(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = no_unwrap_in_prod("f.rs", &scan("let x = v.unwrap_or(0).unwrap_or_default();\n"));
        assert!(f.is_empty());
    }

    #[test]
    fn wallclock_flagged() {
        let f = no_wallclock_in_deterministic("f.rs", &scan("let t = Instant::now();\n"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn guard_across_io_flagged_drop_clears() {
        let src = "fn f() {\n    let mut w = self.writer.lock();\n    file.write_all(&buf);\n}\n";
        let f = lock_across_io("f.rs", &scan(src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains('w'));

        let src = "fn f() {\n    let w = self.writer.lock();\n    drop(w);\n    file.write_all(&buf);\n}\n";
        assert!(lock_across_io("f.rs", &scan(src)).is_empty());

        let src = "fn f() {\n    {\n        let w = self.writer.lock();\n    }\n    file.write_all(&buf);\n}\n";
        assert!(lock_across_io("f.rs", &scan(src)).is_empty(), "scope close kills the guard");
    }

    #[test]
    fn try_lock_guard_recognized() {
        let src = "fn f() {\n    if let Some(mut w) = self.writer.try_lock() {\n        out.sync_data();\n    }\n}\n";
        let f = lock_across_io("f.rs", &scan(src));
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn annotated_io_site_is_allowed() {
        let src = "fn f() {\n    let mut w = self.writer.lock();\n    // lint: allow(lock-across-io) — group commit by design\n    file.sync_all();\n}\n";
        assert!(lock_across_io("f.rs", &scan(src)).is_empty());
    }
}
