// lint-fixture-as: crates/runtime/src/fixture.rs
//! Fixture: an infallible unwrap excused by a reasoned annotation.

pub fn prod(head: [u8; 8]) -> u64 {
    // lint: allow(no-unwrap-in-prod) — 8-byte array, slice statically in bounds
    u64::from_be_bytes(head[0..8].try_into().expect("fixed header"))
}
