//! Hot-topic detection (Example 2 / Example 5 / Figure 1(c)): plant a
//! burst in the synthetic firehose and watch the three-stage MapUpdate
//! pipeline flag it — the paper's earthquake-monitoring motivation.
//!
//! ```sh
//! cargo run --example hot_topics
//! ```

use muppet::apps::hot_topics::{self, HotDetector, MinuteCounter, TopicMapper};
use muppet::prelude::*;
use muppet::workloads::tweets::{PlantedBurst, TweetGenerator};

fn main() {
    // Two days of traffic. Day 0 builds per-minute history; on day 1 we
    // plant an "earthquake" burst (so the topic spikes far above its
    // historical average) and expect S4 emissions for it.
    const MICROS_PER_MIN: u64 = 60 * 1_000_000;
    const MICROS_PER_DAY: u64 = 24 * 60 * MICROS_PER_MIN;

    let wf = hot_topics::workflow();
    let mut exec = ReferenceExecutor::new(&wf);
    exec.record_stream(hot_topics::HOT_STREAM);
    exec.register_mapper(TopicMapper::new());
    exec.register_updater(MinuteCounter::new());
    exec.register_updater(HotDetector::new(3.0));

    // Day 0: baseline traffic where "earthquake" appears at a background
    // rate, so the per-minute historical averages exist.
    println!("feeding day 0 (history building)...");
    let mut gen_day0 = TweetGenerator::new(8, 2_000, 40.0).with_burst(PlantedBurst {
        topic: "earthquake".into(),
        start_us: 0,
        end_us: MICROS_PER_DAY,
        boost: 0.5,
    });
    for ev in gen_day0.take(hot_topics::TWEET_STREAM, 60_000) {
        exec.push_external(hot_topics::TWEET_STREAM, ev);
    }

    // Day 1: same baseline plus a planted burst at minutes 10–12. (At 40
    // tweets/s, 60k events span ~25 virtual minutes, so the burst must sit
    // inside that window.)
    println!("feeding day 1 (with planted earthquake burst at minute 10)...");
    let burst_start = MICROS_PER_DAY + 10 * MICROS_PER_MIN;
    let mut gen_day1 = TweetGenerator::new(7, 2_000, 40.0)
        .with_burst(PlantedBurst {
            topic: "earthquake".into(),
            start_us: burst_start,
            end_us: burst_start + 2 * MICROS_PER_MIN,
            boost: 9.0,
        })
        .starting_at(MICROS_PER_DAY);
    for ev in gen_day1.take(hot_topics::TWEET_STREAM, 60_000) {
        exec.push_external(hot_topics::TWEET_STREAM, ev);
    }
    exec.run_to_completion().expect("pipeline runs");

    let hot = exec.recorded(hot_topics::HOT_STREAM);
    println!("\nhot ⟨topic, minute⟩ emissions on S4: {}", hot.len());
    let mut earthquake_hits = 0;
    for ev in hot {
        let key = ev.key.as_str().unwrap();
        let payload = Json::parse_bytes(&ev.value).unwrap();
        let count = payload.get("count").and_then(Json::as_u64).unwrap_or(0);
        let avg = payload.get("avg").and_then(Json::as_f64).unwrap_or(0.0);
        println!("  HOT {key:<18} count={count:<5} historical avg={avg:.1}");
        if key.starts_with("earthquake") {
            earthquake_hits += 1;
        }
    }
    assert!(earthquake_hits > 0, "the planted earthquake burst must be detected");
    println!("\n✓ planted burst detected ({earthquake_hits} hot minutes for 'earthquake')");
    println!("  (total slates: {} across {} updaters)", exec.slate_count(), 2);
}
