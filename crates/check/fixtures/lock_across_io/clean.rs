// lint-fixture-as: crates/slatestore/src/fixture.rs
//! Fixture: the sanctioned shapes — snapshot under the lock, IO outside
//! it (by scope close or explicit drop). No findings.

pub fn snapshot_then_write(file: &mut std::fs::File, state: &muppet_core::sync::Mutex<Vec<u8>>) {
    use std::io::Write;
    let snapshot = {
        let buf = state.lock();
        buf.clone()
    };
    file.write_all(&snapshot).ok();
    file.sync_all().ok();
}

pub fn drop_then_write(file: &mut std::fs::File, state: &muppet_core::sync::Mutex<Vec<u8>>) {
    use std::io::Write;
    let buf = state.lock();
    let snapshot = buf.clone();
    drop(buf);
    file.write_all(&snapshot).ok();
}
