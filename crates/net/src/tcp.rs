//! The TCP transport: real sockets between `muppetd` processes.
//!
//! Wire model (§4.1): workers pass events *directly* to the owning
//! machine's process; the master is only ever involved in the §4.3
//! failure frames. Each engine process owns exactly one machine of the
//! topology; a background listener accepts frames from peers and hands
//! them to the engine's [`ClusterHandler`].
//!
//! **The event path is batched and pipelined.** `send_event` enqueues
//! into a bounded per-peer outbox; a dedicated sender thread per peer
//! drains it, coalescing events into [`Frame::EventBatch`] frames under a
//! size/age policy ([`BatchConfig`]: flush at `batch_max` events or when
//! the oldest queued event is `flush_us` old, whichever first) and
//! writing them back-to-back over one persistent connection — no
//! per-event connection checkout, CRC, or syscall. A full outbox blocks
//! the enqueueing thread (real backpressure; the engine also folds
//! [`Transport::outbound_backlog`] into its source-throttle budget) —
//! the queue never grows unboundedly.
//!
//! Failure surfacing: a batch that cannot reach its peer — connection
//! refused, reset, peer FIN seen by the pre-write probe, or timed out,
//! after one reconnect attempt — is one traffic-driven §4.3 detection.
//! The sender marks the peer down, drains the outbox, and hands the
//! whole undelivered run (failed batch + everything queued behind it) to
//! [`ClusterHandler::handle_send_failure`], which reports to the master
//! and accounts every event individually (lost-and-logged, never
//! retried). Later `send_event` calls return [`NetError::Unreachable`]
//! synchronously. Events already buffered by the kernel when a peer dies
//! are silently lost — the paper's semantics, not a bug: detection is
//! traffic-driven and the undelivered window is bounded by the socket
//! buffer.
//!
//! Request/response frames (`SlateGet`, `StorePut`, …) and the §4.3
//! failure frames stay on the synchronous pooled path: per peer, a small
//! stack of idle connections; an exchange takes one exclusively (so
//! request/response frames never interleave), then returns it.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use muppet_core::sync::{Condvar, Mutex, RwLock};
use muppet_core::{Codec, CodecChoice};

use crate::frame::{
    self, Frame, MembershipPhase, MembershipUpdate, StoreGetItem, StorePutItem, WireEvent,
    CODEC_MBF, MAX_FRAME_BYTES,
};
use crate::topology::{NodeSpec, Topology};
use crate::transport::{ClusterHandler, HandlerSlot, MachineId, NetError, Transport};

/// Idle connections retained per peer.
const MAX_IDLE_PER_PEER: usize = 8;
/// Connect timeout (loopback and LAN latencies).
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
/// Read timeout for request/response exchanges, and write timeout on
/// every outbound connection (a hung peer cannot wedge a sender thread —
/// or, through it, shutdown's thread join).
const REPLY_TIMEOUT: Duration = Duration::from_secs(5);
/// Poll interval for the nonblocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Read timeout on inbound connections (bounds shutdown latency).
const SERVE_POLL: Duration = Duration::from_millis(200);
/// Idle/stop-flag poll for sender threads and blocked producers.
const OUTBOX_POLL: Duration = Duration::from_millis(20);
/// Soft cap on one batch frame's encoded size: flush early rather than
/// approach [`MAX_FRAME_BYTES`].
const BATCH_SOFT_BYTES: usize = 1 << 20;

/// Flush policy for the per-peer batching senders: a batch goes on the
/// wire when it holds `batch_max` events OR the oldest queued event is
/// `flush_us` microseconds old, whichever comes first.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Events coalesced into one frame at most.
    pub batch_max: usize,
    /// Age bound: a queued event never waits longer than this before its
    /// batch is flushed (0 = flush immediately, batching only what has
    /// already accumulated).
    pub flush_us: u64,
    /// Bounded outbox capacity per peer (events). A full outbox blocks
    /// the sender — backpressure, not buffering.
    pub queue_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { batch_max: 128, flush_us: 1_000, queue_capacity: 16_384 }
    }
}

/// Cumulative transport counters (all relaxed; cheap to snapshot).
#[derive(Debug, Default)]
pub struct TcpStats {
    /// Frames written to peers.
    pub frames_sent: AtomicU64,
    /// Frames received by the listener.
    pub frames_received: AtomicU64,
    /// Sends that failed after the reconnect attempt (§4.3 triggers).
    pub send_failures: AtomicU64,
    /// Fresh connections dialed.
    pub connects: AtomicU64,
    /// Multi-event frames written by the batching senders.
    pub batches_sent: AtomicU64,
    /// Events shipped through the batching path (any frame size).
    pub batched_events_sent: AtomicU64,
    /// Times a producer blocked on a full per-peer outbox (backpressure).
    pub queue_full_waits: AtomicU64,
    /// Gauge: events accepted but not yet written to (or failed off) the
    /// wire, across all peers.
    pub outbound_backlog: AtomicU64,
    /// Fresh connections whose hello/ack handshake negotiated MBF.
    pub mbf_connects: AtomicU64,
}

/// One outbound connection with its negotiated codec: `mbf` is true only
/// when this side offered MBF (a v5 hello) and the peer's `HelloAck`
/// confirmed it. Legacy peers and JSON-pinned transports never set it.
struct Conn {
    stream: TcpStream,
    mbf: bool,
}

struct PeerPool {
    addr: SocketAddr,
    idle: Mutex<Vec<Conn>>,
}

/// Outbox interior: the queued events plus flush bookkeeping.
struct OutboxQueue {
    events: VecDeque<WireEvent>,
    /// When the oldest queued event arrived (age-based flush).
    oldest_at: Option<Instant>,
}

/// One peer's outbound event queue + the state its sender thread needs.
/// Sender threads hold only this Arc (never the transport), so dropping
/// the transport can join them without a reference cycle.
struct PeerOutbox {
    dest: MachineId,
    local: MachineId,
    addr: SocketAddr,
    cfg: BatchConfig,
    codec: CodecChoice,
    queue: Mutex<OutboxQueue>,
    /// Signals both ways: producers on free room, the sender on new work.
    cv: Condvar,
    /// Set by the sender on wire failure; enqueues then refuse with
    /// `Unreachable` (§4.3: a dead machine never comes back).
    down: AtomicBool,
    /// Set on transport drop; the sender flushes what is queued and exits.
    stopping: AtomicBool,
    /// Lazy sender-thread spawn flag.
    started: AtomicBool,
    stats: Arc<TcpStats>,
    handler: Arc<HandlerSlot>,
}

/// Conservative over-estimate of one event's encoded size (flush-early
/// byte cap and the oversized-event refusal at enqueue). The slack must
/// exceed the true worst-case envelope — kind byte, flags, up to five
/// 10-byte varints (op, injected_us, ts, seq, thread hint) and three
/// length prefixes, under 90 bytes total — or an oversized event could
/// pass the enqueue check, fail at the socket, and be misread as a dead
/// peer.
fn wire_event_size_hint(ev: &WireEvent) -> usize {
    ev.event.key.as_bytes().len() + ev.event.value.len() + ev.event.stream.as_str().len() + 128
}

/// A [`Transport`] over real TCP sockets. One instance per `muppetd`
/// process; `local` is the machine this process runs.
///
/// The peer table grows at runtime ([`TcpTransport::add_peer`]) — elastic
/// membership appends nodes to a running cluster; ids are never reused
/// and the master role never moves.
pub struct TcpTransport {
    topology: RwLock<Topology>,
    local: MachineId,
    /// The master role's machine id (pinned at cluster creation).
    master: MachineId,
    batch: BatchConfig,
    /// Wire-codec policy: `Auto`/`Mbf` dial with a v5 hello offering MBF
    /// and read the peer's `HelloAck`; `Json` dials a byte-identical v4
    /// legacy hello (no ack read) and pins every connection to JSON.
    codec: CodecChoice,
    handler: Arc<HandlerSlot>,
    /// Indexed by machine id; `None` at `local`. Grows via `add_peer`.
    pools: RwLock<Vec<Option<Arc<PeerPool>>>>,
    /// Per-peer batching outboxes; `None` at `local`. Grows via
    /// `add_peer`.
    outboxes: RwLock<Vec<Option<Arc<PeerOutbox>>>>,
    /// Lazily spawned per-peer sender threads (joined on drop).
    sender_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stats: Arc<TcpStats>,
}

impl TcpTransport {
    /// Build the transport for `local` within `topology` with the default
    /// [`BatchConfig`] (addresses are resolved eagerly so
    /// misconfiguration fails fast).
    pub fn new(topology: Topology, local: MachineId) -> Result<Arc<TcpTransport>, String> {
        TcpTransport::new_with_batching(topology, local, BatchConfig::default())
    }

    /// Build the transport with an explicit batching/flush policy.
    pub fn new_with_batching(
        topology: Topology,
        local: MachineId,
        batch: BatchConfig,
    ) -> Result<Arc<TcpTransport>, String> {
        TcpTransport::new_with_codec(topology, local, batch, CodecChoice::Auto)
    }

    /// Build the transport with explicit batching and wire-codec policies.
    pub fn new_with_codec(
        topology: Topology,
        local: MachineId,
        batch: BatchConfig,
        codec: CodecChoice,
    ) -> Result<Arc<TcpTransport>, String> {
        topology.validate()?;
        if local >= topology.len() {
            return Err(format!("local machine {local} is not in the topology"));
        }
        let transport = Arc::new(TcpTransport {
            master: topology.master,
            local,
            codec,
            batch: BatchConfig {
                batch_max: batch.batch_max.max(1),
                queue_capacity: batch.queue_capacity.max(1),
                ..batch
            },
            handler: Arc::new(HandlerSlot::default()),
            pools: RwLock::new(Vec::new()),
            outboxes: RwLock::new(Vec::new()),
            sender_threads: Mutex::new(Vec::new()),
            stats: Arc::new(TcpStats::default()),
            topology: RwLock::new(Topology { nodes: Vec::new(), master: topology.master }),
        });
        for node in &topology.nodes {
            transport.add_peer(node)?;
        }
        Ok(transport)
    }

    /// Append one node to the peer table (or re-resolve a known id —
    /// idempotent for identical specs). Elastic joins call this when a
    /// membership update names a machine this transport has never seen;
    /// ids must arrive contiguously.
    pub fn add_peer(&self, node: &NodeSpec) -> Result<(), String> {
        let mut topology = self.topology.write();
        let mut pools = self.pools.write();
        let mut outboxes = self.outboxes.write();
        if node.id < topology.nodes.len() {
            if topology.nodes[node.id] == *node {
                return Ok(()); // idempotent re-announcement
            }
            return Err(format!("peer id {} already bound to a different address", node.id));
        }
        if node.id != topology.nodes.len() {
            return Err(format!(
                "peer ids must be contiguous (got {}, expected {})",
                node.id,
                topology.nodes.len()
            ));
        }
        if node.id == self.local {
            pools.push(None);
            outboxes.push(None);
        } else {
            let addr = node.addr()?;
            pools.push(Some(Arc::new(PeerPool { addr, idle: Mutex::new(Vec::new()) })));
            outboxes.push(Some(Arc::new(PeerOutbox {
                dest: node.id,
                local: self.local,
                addr,
                cfg: self.batch,
                codec: self.codec,
                queue: Mutex::new(OutboxQueue { events: VecDeque::new(), oldest_at: None }),
                cv: Condvar::new(),
                down: AtomicBool::new(false),
                stopping: AtomicBool::new(false),
                started: AtomicBool::new(false),
                stats: Arc::clone(&self.stats),
                handler: Arc::clone(&self.handler),
            })));
        }
        topology.nodes.push(node.clone());
        Ok(())
    }

    /// A snapshot of the (growable) topology this transport runs in.
    pub fn topology(&self) -> Topology {
        self.topology.read().clone()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &TcpStats {
        &self.stats
    }

    fn handler(&self) -> Option<Arc<dyn ClusterHandler>> {
        self.handler.get()
    }

    fn pool(&self, dest: MachineId) -> Result<Arc<PeerPool>, NetError> {
        self.pools.read().get(dest).and_then(|p| p.clone()).ok_or(NetError::NoRoute(dest))
    }

    fn outbox(&self, dest: MachineId) -> Result<Arc<PeerOutbox>, NetError> {
        self.outboxes.read().get(dest).and_then(|o| o.clone()).ok_or(NetError::NoRoute(dest))
    }

    /// Spawn `outbox`'s sender thread on first use (transports that only
    /// run request/response traffic never pay for idle threads).
    fn ensure_sender(&self, outbox: &Arc<PeerOutbox>) {
        if outbox.started.load(Ordering::Acquire) {
            return;
        }
        let mut threads = self.sender_threads.lock();
        if outbox.started.swap(true, Ordering::AcqRel) {
            return; // raced; the other enqueue spawned it
        }
        let ob = Arc::clone(outbox);
        threads.push(
            std::thread::Builder::new()
                .name(format!("muppet-send-{}-{}", self.local, outbox.dest))
                .spawn(move || sender_loop(ob))
                // lint: allow(no-unwrap-in-prod) — spawn fails only on OS thread exhaustion; fail fast
                .expect("spawn peer sender"),
        );
    }

    /// The batched event send path: put `ev` on `dest`'s outbox, blocking
    /// while the outbox is full (backpressure). `Unreachable` once the
    /// sender has declared the peer down; `Protocol` for events that could
    /// never fit a frame (a local error, not a dead peer — must not trip
    /// §4.3).
    fn enqueue_event(&self, dest: MachineId, ev: WireEvent) -> Result<(), NetError> {
        let size = wire_event_size_hint(&ev);
        if size > MAX_FRAME_BYTES {
            return Err(NetError::Protocol(format!(
                "event of ~{size} bytes exceeds the {MAX_FRAME_BYTES}-byte frame limit"
            )));
        }
        let outbox = self.outbox(dest)?;
        if outbox.down.load(Ordering::Acquire) {
            return Err(NetError::Unreachable(dest));
        }
        self.ensure_sender(&outbox);
        let mut q = outbox.queue.lock();
        loop {
            if outbox.down.load(Ordering::Acquire) {
                return Err(NetError::Unreachable(dest));
            }
            if q.events.len() < outbox.cfg.queue_capacity {
                let was_empty = q.events.is_empty();
                if was_empty {
                    q.oldest_at = Some(Instant::now());
                }
                q.events.push_back(ev);
                self.stats.outbound_backlog.fetch_add(1, Ordering::Relaxed);
                // Wake the sender only on the transitions it can act on:
                // new work after idle, or a batch crossing the size
                // trigger mid-age-wait. Steady-state pushes into a
                // part-filled batch stay notification-free (the sender's
                // age timeout covers them).
                if was_empty || q.events.len() >= outbox.cfg.batch_max {
                    outbox.cv.notify_all();
                }
                return Ok(());
            }
            // Full: wait for the sender to drain (or to declare the peer
            // down). The timeout re-checks stop/down flags.
            self.stats.queue_full_waits.fetch_add(1, Ordering::Relaxed);
            outbox.cv.wait_for(&mut q, OUTBOX_POLL);
        }
    }

    fn connect(&self, addr: SocketAddr) -> io::Result<Conn> {
        dial(addr, self.local, &self.stats, self.codec)
    }

    /// Run one frame exchange with `dest`: write `frame`, optionally read
    /// a reply, reusing a pooled connection with one reconnect retry.
    fn exchange(
        &self,
        dest: MachineId,
        frame: &Frame,
        want_reply: bool,
    ) -> Result<Option<Frame>, NetError> {
        let pool = self.pool(dest)?;
        // Size-check before touching the socket: an oversized frame is a
        // local protocol error, not a dead peer — it must not trip §4.3.
        // The check uses the as-is encoding; the per-connection JSON
        // downgrade (below) re-encodes only when the peer needs it.
        let payload = frame.encode_payload();
        if payload.len() > crate::frame::MAX_FRAME_BYTES {
            return Err(NetError::Protocol(format!(
                "frame of {} bytes exceeds the {}-byte limit",
                payload.len(),
                crate::frame::MAX_FRAME_BYTES
            )));
        }
        let pooled = pool.idle.lock().pop();
        let had_pooled = pooled.is_some();

        let attempt = |conn: Option<Conn>| -> io::Result<(Conn, Option<Frame>)> {
            let mut conn = match conn {
                Some(c) => c,
                None => self.connect(pool.addr)?,
            };
            // The payload is encoded for the negotiated codec: MBF
            // connections take the frame as built; JSON connections get
            // any MBF payload transcoded to JSON text first.
            let json_payload =
                if conn.mbf { None } else { frame.json_downgraded().map(|f| f.encode_payload()) };
            frame::write_payload(&mut conn.stream, json_payload.as_deref().unwrap_or(&payload))?;
            let reply = if want_reply { Some(Frame::read_from(&mut conn.stream)?) } else { None };
            Ok((conn, reply))
        };

        let outcome = match attempt(pooled) {
            Ok(done) => Ok(done),
            // A stale pooled connection (peer restarted, idle RST) gets one
            // fresh dial; a dead peer fails that too and surfaces §4.3.
            Err(_) if had_pooled => attempt(None),
            Err(e) => Err(e),
        };
        match outcome {
            Ok((conn, reply)) => {
                self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                let mut idle = pool.idle.lock();
                if idle.len() < MAX_IDLE_PER_PEER {
                    idle.push(conn);
                }
                Ok(reply)
            }
            Err(_) => {
                self.stats.send_failures.fetch_add(1, Ordering::Relaxed);
                Err(NetError::Unreachable(dest))
            }
        }
    }

    /// Bind this node's listener and start serving peer frames. Call after
    /// [`Transport::register`]. The returned handle stops the listener
    /// (and its connection threads) on drop.
    pub fn start_listener(self: &Arc<Self>) -> io::Result<TcpListenerHandle> {
        let (host, port) = {
            let topology = self.topology.read();
            let node = &topology.nodes[self.local];
            (node.host.clone(), node.port)
        };
        let listener = TcpListener::bind((host.as_str(), port))?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let transport = Arc::clone(self);
        let accept_thread = std::thread::Builder::new()
            .name(format!("muppet-net-{}", self.local))
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let transport = Arc::clone(&transport);
                            let stop = Arc::clone(&stop2);
                            std::thread::spawn(move || serve_connection(transport, stream, stop));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(TcpListenerHandle { stop, accept_thread: Some(accept_thread), port })
    }
}

impl Drop for TcpTransport {
    /// Stop the batching senders: each flushes whatever its outbox still
    /// holds (to live peers), then exits and is joined. Sender threads
    /// hold only their `PeerOutbox` Arc, so this cannot deadlock on the
    /// transport's own refcount.
    fn drop(&mut self) {
        for outbox in self.outboxes.read().iter().flatten() {
            outbox.stopping.store(true, Ordering::Release);
            outbox.cv.notify_all();
        }
        for t in self.sender_threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

/// Take the next batch off `outbox`: up to `batch_max` events (bounded by
/// [`BATCH_SOFT_BYTES`] encoded size), waiting until either the batch
/// fills or the oldest queued event reaches `flush_us` of age. `None`
/// when stopping with an empty queue.
fn collect_batch(outbox: &PeerOutbox) -> Option<Vec<WireEvent>> {
    let age_limit = Duration::from_micros(outbox.cfg.flush_us);
    let mut q = outbox.queue.lock();
    loop {
        if q.events.is_empty() {
            if outbox.stopping.load(Ordering::Acquire) {
                return None;
            }
            outbox.cv.wait_for(&mut q, OUTBOX_POLL);
            continue;
        }
        let age_done = q.oldest_at.map(|t| t.elapsed() >= age_limit).unwrap_or(true);
        if q.events.len() >= outbox.cfg.batch_max
            || age_done
            || outbox.stopping.load(Ordering::Acquire)
        {
            let mut batch = Vec::with_capacity(q.events.len().min(outbox.cfg.batch_max));
            let mut bytes = 0usize;
            while batch.len() < outbox.cfg.batch_max {
                let Some(ev) = q.events.pop_front() else { break };
                let size = wire_event_size_hint(&ev);
                if !batch.is_empty() && bytes + size > BATCH_SOFT_BYTES {
                    q.events.push_front(ev); // over budget: stays for the next batch
                    break;
                }
                bytes += size;
                batch.push(ev);
            }
            // The remainder's true oldest age is unknown (only the head's
            // was tracked); restarting the clock is safe — a still-full
            // queue flushes again immediately via the size trigger.
            q.oldest_at = if q.events.is_empty() { None } else { Some(Instant::now()) };
            return Some(batch);
        }
        // Wait out the remaining age, capped so stop/new-work signals are
        // never missed for long.
        let oldest = q.oldest_at.unwrap_or_else(Instant::now);
        let remaining = age_limit.saturating_sub(oldest.elapsed());
        outbox.cv.wait_for(&mut q, remaining.clamp(Duration::from_micros(50), OUTBOX_POLL));
    }
}

/// Map-side pre-aggregation: coalesce same-⟨op,key⟩ events in a drained
/// batch through the operator's declared combiner (surfaced via
/// [`ClusterHandler::combine_values`]) before framing. Runs of a hot key
/// collapse into one wire entry carrying the folded payload and the
/// absorbed count; first-occurrence order is preserved, and runs only
/// fold when they agree on every routing-relevant field (stream, key,
/// redirected/external flags, thread hint). Ops with no combiner — the
/// default — fold nothing and the batch frames byte-identically to the
/// uncombined wire.
fn fold_batch(outbox: &PeerOutbox, raw: Vec<WireEvent>) -> Vec<(WireEvent, u64)> {
    let handler = outbox.handler.get();
    let mut entries: Vec<(WireEvent, u64)> = Vec::with_capacity(raw.len());
    if raw.len() < 2 || handler.is_none() {
        entries.extend(raw.into_iter().map(|ev| (ev, 1)));
        return entries;
    }
    // lint: allow(no-unwrap-in-prod) — is_none() checked above
    let handler = handler.unwrap();
    // Open runs keyed by everything that must agree for two events to be
    // interchangeable under the combiner; values index into `entries`.
    type RunKey = (
        muppet_core::workflow::OpId,
        muppet_core::event::StreamId,
        muppet_core::event::Key,
        bool,
        bool,
        Option<usize>,
    );
    let mut open: std::collections::HashMap<RunKey, usize> = std::collections::HashMap::new();
    for ev in raw {
        let run = (
            ev.op,
            ev.event.stream.clone(),
            ev.event.key.clone(),
            ev.redirected,
            ev.external,
            ev.thread_hint,
        );
        if let Some(&at) = open.get(&run) {
            let (acc, count) = &mut entries[at];
            if let Some(folded) = handler.combine_values(ev.op, &acc.event.value, &ev.event.value) {
                // Fold into the open run: the carrier keeps the latest
                // timestamp/seq (output ts = input ts + 1 stays §3-legal
                // for the whole absorbed run), the earliest injection
                // stamp (latency is measured pessimistically), and the
                // largest forwarding debt.
                acc.event.value = folded.into();
                acc.event.ts = acc.event.ts.max(ev.event.ts);
                acc.event.seq = acc.event.seq.max(ev.event.seq);
                acc.injected_us = acc.injected_us.min(ev.injected_us);
                acc.forwards = acc.forwards.max(ev.forwards);
                *count += 1;
                continue;
            }
            // Veto (no combiner, or non-foldable payloads): this event
            // starts a fresh run so per-key order is preserved.
        }
        open.insert(run, entries.len());
        entries.push((ev, 1));
    }
    entries
}

/// Dial a peer, send the connection preamble, and negotiate the wire
/// codec. Both timeouts are set — the write timeout matters even on the
/// pooled request/response path: a failure report written from a sender
/// thread must not block forever on a stalled master, or
/// `TcpTransport::drop`'s join would wedge shutdown.
///
/// `Auto`/`Mbf` transports send a v5 hello offering MBF and block on the
/// peer's [`Frame::HelloAck`]; the connection speaks MBF only if the ack
/// grants it. `Json` transports send a byte-identical v4 legacy hello —
/// and read no ack, exactly like a real pre-MBF peer (v5 receivers only
/// ack v5 hellos).
fn dial(
    addr: SocketAddr,
    local: MachineId,
    stats: &TcpStats,
    codec: CodecChoice,
) -> io::Result<Conn> {
    let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(REPLY_TIMEOUT))?;
    stream.set_write_timeout(Some(REPLY_TIMEOUT))?;
    stats.connects.fetch_add(1, Ordering::Relaxed);
    let mut w = &stream;
    if !codec.offers_mbf() {
        Frame::hello_legacy(local).write_to(&mut w)?;
        return Ok(Conn { stream, mbf: false });
    }
    Frame::hello(local, true).write_to(&mut w)?;
    let mut r = &stream;
    let mbf = match Frame::read_from(&mut r)? {
        Frame::HelloAck { codecs } => codecs & CODEC_MBF != 0,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected HelloAck, got {other:?}"),
            ))
        }
    };
    if mbf {
        stats.mbf_connects.fetch_add(1, Ordering::Relaxed);
    }
    Ok(Conn { stream, mbf })
}

/// Dial `outbox`'s peer.
fn connect_outbox(outbox: &PeerOutbox) -> io::Result<Conn> {
    dial(outbox.addr, outbox.local, &outbox.stats, outbox.codec)
}

/// Check a reused event connection for a peer that has already closed:
/// events are one-way, so any readable state — EOF (FIN) or unexpected
/// bytes — means the connection is dead. Without this probe, the first
/// write after a graceful peer close "succeeds" into the kernel buffer
/// and a whole batch is silently lost; with it, detection is
/// deterministic once the close has propagated.
fn probe_peer_alive(stream: &TcpStream) -> io::Result<()> {
    stream.set_nonblocking(true)?;
    let mut probe = [0u8; 1];
    let mut reader = stream;
    let verdict = match reader.read(&mut probe) {
        Ok(0) => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")),
        Ok(_) => {
            Err(io::Error::new(io::ErrorKind::InvalidData, "unexpected data on event connection"))
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
        Err(e) => Err(e),
    };
    stream.set_nonblocking(false)?;
    verdict
}

/// Write one batch, reusing `conn` with one reconnect retry (a stale
/// persistent connection gets one fresh dial; a dead peer fails that
/// too). The batch is encoded per connection attempt — the negotiated
/// codec lives on the connection, and a reconnect may negotiate a
/// different one (e.g. the peer restarted JSON-pinned).
fn send_batch(
    outbox: &PeerOutbox,
    conn: &mut Option<Conn>,
    batch: &[(WireEvent, u64)],
) -> io::Result<()> {
    let reused = conn.is_some();
    let first = match conn.as_mut() {
        Some(c) => probe_peer_alive(&c.stream).and_then(|()| {
            let payload = frame::encode_combined_payload(batch, c.mbf);
            frame::write_payload(&mut c.stream, &payload)
        }),
        None => connect_outbox(outbox).and_then(|mut c| {
            let payload = frame::encode_combined_payload(batch, c.mbf);
            frame::write_payload(&mut c.stream, &payload)?;
            *conn = Some(c);
            Ok(())
        }),
    };
    match first {
        Ok(()) => Ok(()),
        Err(e) if !reused => {
            *conn = None;
            Err(e)
        }
        Err(e) if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock) => {
            // A write *timeout* on a live connection means the peer is
            // stalled, not gone — the frame may sit in kernel buffers and
            // still be delivered when the peer resumes. Re-sending it on
            // a fresh dial would double-deliver the whole batch, so no
            // retry: surface the failure (slow past the timeout is
            // treated as dead, loss over duplication).
            *conn = None;
            Err(e)
        }
        Err(_) => {
            // A connection-level error (reset, FIN seen by the probe,
            // broken pipe): the stale persistent connection gets one
            // fresh dial. Nothing of the failed write can be delivered —
            // the peer's socket is gone — so the resend cannot duplicate.
            *conn = None;
            let mut c = connect_outbox(outbox)?;
            let payload = frame::encode_combined_payload(batch, c.mbf);
            frame::write_payload(&mut c.stream, &payload)?;
            *conn = Some(c);
            Ok(())
        }
    }
}

/// One peer's dedicated sender: drain the outbox in batches, pipelining
/// frames over a persistent connection. On wire failure (after the one
/// reconnect retry) this is the §4.3 detection point — mark the peer
/// down, drain everything undelivered, and hand it to the engine.
fn sender_loop(outbox: Arc<PeerOutbox>) {
    let mut conn: Option<Conn> = None;
    while let Some(raw) = collect_batch(&outbox) {
        let batch = fold_batch(&outbox, raw);
        // Original (pre-fold) event count — what the backlog gauge and
        // loss ledgers are denominated in.
        let raw_count: u64 = batch.iter().map(|(_, count)| *count).sum();
        match send_batch(&outbox, &mut conn, &batch) {
            Ok(()) => {
                outbox.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                if batch.len() > 1 {
                    outbox.stats.batches_sent.fetch_add(1, Ordering::Relaxed);
                }
                // Wire entries actually framed — under combining this is
                // what shrinks while the backlog drains at raw scale.
                outbox.stats.batched_events_sent.fetch_add(batch.len() as u64, Ordering::Relaxed);
                outbox.stats.outbound_backlog.fetch_sub(raw_count, Ordering::Relaxed);
                outbox.cv.notify_all(); // room freed: wake blocked producers
            }
            Err(_) => {
                outbox.stats.send_failures.fetch_add(1, Ordering::Relaxed);
                outbox.down.store(true, Ordering::Release);
                // The loss ledger counts *original* events: a folded
                // carrier re-enters once per absorbed event so exactly-N
                // accounting survives combining (values are the folded
                // payload — the ledger only counts and logs, never
                // redelivers).
                let mut lost: Vec<WireEvent> = Vec::with_capacity(raw_count as usize);
                for (ev, count) in batch {
                    for _ in 1..count {
                        lost.push(ev.clone());
                    }
                    lost.push(ev);
                }
                {
                    let mut q = outbox.queue.lock();
                    lost.extend(q.events.drain(..));
                    q.oldest_at = None;
                }
                outbox.stats.outbound_backlog.fetch_sub(lost.len() as u64, Ordering::Relaxed);
                outbox.cv.notify_all(); // blocked producers see `down`
                if let Some(handler) = outbox.handler.get() {
                    handler.handle_send_failure(outbox.dest, lost);
                }
                return; // §4.3: a dead machine never comes back
            }
        }
    }
}

impl Transport for TcpTransport {
    fn register(&self, handler: Weak<dyn ClusterHandler>) {
        self.handler.register(handler);
    }

    fn is_local(&self, machine: MachineId) -> bool {
        machine == self.local
    }

    fn local_machine(&self) -> Option<MachineId> {
        Some(self.local)
    }

    fn send_event(&self, dest: MachineId, ev: WireEvent) -> Result<(), NetError> {
        if dest == self.local {
            return match self.handler() {
                Some(h) => h.deliver_event(dest, ev),
                None => Err(NetError::NoRoute(dest)),
            };
        }
        self.enqueue_event(dest, ev)
    }

    fn outbound_backlog(&self) -> usize {
        self.stats.outbound_backlog.load(Ordering::Relaxed) as usize
    }

    fn report_failure(&self, failed: MachineId, epoch: u64) {
        if self.master == self.local {
            if let Some(h) = self.handler() {
                h.handle_failure_report(failed, epoch);
            }
            return;
        }
        // Best effort: if the master itself is unreachable, apply the drop
        // locally so this node stops routing to the dead machine.
        if self.exchange(self.master, &Frame::FailureReport { failed, epoch }, false).is_err() {
            if let Some(h) = self.handler() {
                h.handle_failure_broadcast(failed, epoch);
            }
        }
    }

    fn broadcast_failure(&self, failed: MachineId, epoch: u64) {
        let nodes: Vec<MachineId> = self.topology.read().nodes.iter().map(|n| n.id).collect();
        for id in nodes {
            if id == failed {
                continue; // no point telling the dead machine
            }
            if id == self.local {
                if let Some(h) = self.handler() {
                    h.handle_failure_broadcast(failed, epoch);
                }
            } else {
                // Best effort; unreachable peers will detect via their own
                // traffic.
                let _ = self.exchange(id, &Frame::FailureBroadcast { failed, epoch }, false);
            }
        }
    }

    fn send_join(&self, master: MachineId, machine: MachineId) -> Result<(), NetError> {
        if master == self.local {
            return match self.handler() {
                Some(h) => {
                    h.handle_join(machine);
                    Ok(())
                }
                None => Err(NetError::NoRoute(machine)),
            };
        }
        self.exchange(master, &Frame::Join { machine }, false).map(|_| ())
    }

    fn send_membership(
        &self,
        dest: MachineId,
        update: &MembershipUpdate,
        want_ack: bool,
    ) -> Result<(), NetError> {
        if dest == self.local {
            return match self.handler() {
                Some(h) => {
                    let acked = h.handle_membership(update);
                    if want_ack && !acked {
                        return Err(NetError::Protocol(format!(
                            "membership epoch {} not acknowledged locally",
                            update.epoch
                        )));
                    }
                    Ok(())
                }
                None => Err(NetError::NoRoute(dest)),
            };
        }
        // Only the prepare phase replies on the wire (a one-way
        // commit/abort reply would poison the pooled connection with an
        // unread frame).
        debug_assert_eq!(
            want_ack,
            update.phase == MembershipPhase::Prepare,
            "acks belong to the prepare phase"
        );
        match self.exchange(dest, &Frame::Membership(update.clone()), want_ack)? {
            None => Ok(()),
            Some(Frame::MembershipAck { epoch }) if epoch == update.epoch => Ok(()),
            Some(Frame::MembershipNack { epoch }) => {
                Err(NetError::Protocol(format!("peer {dest} refused membership epoch {epoch}")))
            }
            other => Err(NetError::Protocol(format!("expected MembershipAck, got {other:?}"))),
        }
    }

    fn read_slate(
        &self,
        dest: MachineId,
        updater: &str,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, NetError> {
        if dest == self.local {
            return match self.handler() {
                Some(h) => Ok(h.read_local_slate(dest, updater, key)),
                None => Err(NetError::NoRoute(dest)),
            };
        }
        let request = Frame::SlateGet { updater: updater.to_string(), key: key.to_vec() };
        match self.exchange(dest, &request, true)? {
            Some(Frame::SlateValue { value }) => Ok(value),
            other => Err(NetError::Protocol(format!("expected SlateValue, got {other:?}"))),
        }
    }

    fn store_put(
        &self,
        dest: MachineId,
        updater: &str,
        key: &[u8],
        value: &[u8],
        codec: Codec,
        ttl_secs: Option<u64>,
        now_us: u64,
    ) -> Result<(), NetError> {
        if dest == self.local {
            return match self.handler() {
                Some(h) => {
                    h.backend_store(updater, key, value, codec, ttl_secs, now_us);
                    Ok(())
                }
                None => Err(NetError::NoRoute(dest)),
            };
        }
        // The unbatched put frame carries no codec tag: the value travels
        // raw and the serving side re-sniffs it (uncompressed payloads are
        // sniffable); a JSON-pinned connection transcodes in `exchange`.
        let request = Frame::StorePut {
            updater: updater.to_string(),
            key: key.to_vec(),
            value: value.to_vec(),
            ttl_secs,
            now_us,
        };
        match self.exchange(dest, &request, true)? {
            Some(Frame::StoreAck) => Ok(()),
            other => Err(NetError::Protocol(format!("expected StoreAck, got {other:?}"))),
        }
    }

    fn store_get(
        &self,
        dest: MachineId,
        updater: &str,
        key: &[u8],
        now_us: u64,
    ) -> Result<Option<Vec<u8>>, NetError> {
        if dest == self.local {
            return match self.handler() {
                Some(h) => Ok(h.backend_load(updater, key, now_us)),
                None => Err(NetError::NoRoute(dest)),
            };
        }
        let request = Frame::StoreGet { updater: updater.to_string(), key: key.to_vec(), now_us };
        match self.exchange(dest, &request, true)? {
            Some(Frame::StoreValue { value }) => Ok(value),
            other => Err(NetError::Protocol(format!("expected StoreValue, got {other:?}"))),
        }
    }

    fn store_put_many(
        &self,
        dest: MachineId,
        items: Vec<StorePutItem>,
        now_us: u64,
    ) -> Result<Vec<bool>, NetError> {
        if dest == self.local {
            return match self.handler() {
                Some(h) => Ok(h.backend_store_many(&items, now_us)),
                None => Err(NetError::NoRoute(dest)),
            };
        }
        // One framed round trip for the whole run — the flush tick's N
        // dirty slates cost one request frame and one reply, not N; the
        // owned items move straight into the frame (no payload re-copy).
        let sent = items.len();
        let request = Frame::StorePutBatch { items, now_us };
        match self.exchange(dest, &request, true)? {
            Some(Frame::StoreAckBatch { ok }) if ok.len() == sent => Ok(ok),
            Some(Frame::StoreAckBatch { ok }) => Err(NetError::Protocol(format!(
                "StoreAckBatch length mismatch: sent {sent}, acked {}",
                ok.len()
            ))),
            other => Err(NetError::Protocol(format!("expected StoreAckBatch, got {other:?}"))),
        }
    }

    fn store_get_many(
        &self,
        dest: MachineId,
        items: Vec<StoreGetItem>,
        now_us: u64,
    ) -> Result<Vec<Option<Vec<u8>>>, NetError> {
        if dest == self.local {
            return match self.handler() {
                Some(h) => Ok(h.backend_load_many(&items, now_us)),
                None => Err(NetError::NoRoute(dest)),
            };
        }
        let asked = items.len();
        let request = Frame::StoreGetBatch { items, now_us };
        match self.exchange(dest, &request, true)? {
            Some(Frame::StoreValueBatch { values }) if values.len() == asked => {
                // The trait's get path is untagged — decompressed values
                // are sniffable, so callers recover the codec from the
                // bytes themselves.
                Ok(values.into_iter().map(|v| v.map(|(bytes, _)| bytes)).collect())
            }
            Some(Frame::StoreValueBatch { values }) => Err(NetError::Protocol(format!(
                "StoreValueBatch length mismatch: asked {asked}, got {}",
                values.len()
            ))),
            other => Err(NetError::Protocol(format!("expected StoreValueBatch, got {other:?}"))),
        }
    }

    fn reintroduce(&self, dest: MachineId, machine: MachineId) -> Result<u64, NetError> {
        if dest == self.local {
            return match self.handler() {
                Some(h) => Ok(h.handle_reintroduce(machine)),
                None => Err(NetError::NoRoute(dest)),
            };
        }
        match self.exchange(dest, &Frame::Reintroduce { machine }, true)? {
            Some(Frame::ReintroduceAck { epoch }) => Ok(epoch),
            other => Err(NetError::Protocol(format!("expected ReintroduceAck, got {other:?}"))),
        }
    }

    fn revive_peer(&self, peer: MachineId) {
        // A declared-dead peer's outbox is permanently down and its sender
        // thread has exited (§4.3: "a dead machine never comes back").
        // Reintroduction is the one sanctioned resurrection: reset both
        // flags under the sender-threads lock so the next enqueue respawns
        // a sender instead of racing a half-dead one.
        let Ok(outbox) = self.outbox(peer) else { return };
        let _threads = self.sender_threads.lock();
        if outbox.down.swap(false, Ordering::AcqRel) {
            outbox.started.store(false, Ordering::Release);
        }
    }
}

/// A running frame listener; dropping it stops the node's inbound wire
/// (used by tests to "kill" a peer).
pub struct TcpListenerHandle {
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    port: u16,
}

impl TcpListenerHandle {
    /// The bound event port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Stop accepting and serving (idempotent; also runs on drop).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpListenerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Read exactly `buf.len()` bytes, retrying across read-timeout polls
/// (a frame may straddle a poll boundary; `read_exact` would discard the
/// partial prefix). Returns `Ok(false)` when `stop` was raised before any
/// byte of `buf` arrived.
fn read_full_polled(r: &mut impl io::Read, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut at = 0;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")),
            Ok(n) => at += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Acquire) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn serve_connection(transport: Arc<TcpTransport>, stream: TcpStream, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(SERVE_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut writer = stream;
    // Negotiated by the peer's hello: true only for a v5 hello offering
    // MBF on a transport that also offers it. Replies on a JSON
    // connection get their MBF payloads transcoded before the write.
    let mut peer_mbf = false;
    loop {
        if stop.load(Ordering::Acquire) {
            return; // closes both halves → peers see RST on next send
        }
        let mut head = [0u8; 8];
        match read_full_polled(&mut reader, &mut head, &stop) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        // lint: allow(no-unwrap-in-prod) — 8-byte header array, offsets statically in bounds
        let len = muppet_core::codec::get_u32(&head, 0).expect("fixed header") as usize;
        // lint: allow(no-unwrap-in-prod) — 8-byte header array, offsets statically in bounds
        let crc = muppet_core::codec::get_u32(&head, 4).expect("fixed header");
        if len > crate::frame::MAX_FRAME_BYTES {
            return;
        }
        let mut payload = vec![0u8; len];
        match read_full_polled(&mut reader, &mut payload, &stop) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        if muppet_core::codec::crc32c(&payload) != crc {
            return; // corrupt connection
        }
        let Some(frame) = Frame::decode_payload(&payload) else { return };
        transport.stats.frames_received.fetch_add(1, Ordering::Relaxed);
        let Some(handler) = transport.handler() else { return };
        let local = transport.local;
        let reply = match frame {
            Frame::Hello { version, codecs, .. } => {
                if version >= 5 {
                    // v5 dialers block on this ack right after their
                    // hello; pre-v5 dialers never read one (any byte on
                    // an event connection reads as a dead peer to them),
                    // so the ack is gated on the hello version.
                    let ours = transport.codec.offers_mbf();
                    peer_mbf = ours && codecs & CODEC_MBF != 0;
                    Some(Frame::HelloAck { codecs: if ours { CODEC_MBF } else { 0 } })
                } else {
                    peer_mbf = false;
                    None
                }
            }
            Frame::Event(ev) => {
                // Delivery failures here are local queue-policy outcomes;
                // the sender's §4.3 signal is the connection, not a NACK.
                let _ = handler.deliver_event(local, ev);
                None
            }
            Frame::EventBatch(events) => {
                for ev in events {
                    let _ = handler.deliver_event(local, ev);
                }
                None
            }
            Frame::CombinedBatch(entries) => {
                for (ev, absorbed) in entries {
                    let _ = handler.deliver_combined(local, ev, absorbed);
                }
                None
            }
            Frame::FailureReport { failed, epoch } => {
                handler.handle_failure_report(failed, epoch);
                None
            }
            Frame::FailureBroadcast { failed, epoch } => {
                handler.handle_failure_broadcast(failed, epoch);
                None
            }
            Frame::Join { machine } => {
                handler.handle_join(machine);
                None
            }
            Frame::Membership(update) => {
                // Prepare is a request/response (the flush-before-ack
                // barrier) — a refusal replies an explicit nack so the
                // master fails fast instead of burning a reply timeout.
                // Commit/abort are one-way so the pooled connection is
                // never left with an unread reply.
                let acked = handler.handle_membership(&update);
                match update.phase {
                    MembershipPhase::Prepare if acked => {
                        Some(Frame::MembershipAck { epoch: update.epoch })
                    }
                    MembershipPhase::Prepare => Some(Frame::MembershipNack { epoch: update.epoch }),
                    MembershipPhase::Commit | MembershipPhase::Abort => None,
                }
            }
            Frame::SlateGet { updater, key } => {
                Some(Frame::SlateValue { value: handler.read_local_slate(local, &updater, &key) })
            }
            Frame::StorePut { updater, key, value, ttl_secs, now_us } => {
                // The unbatched frame is untagged; the payload arrives
                // uncompressed, so its codec is recovered by sniffing.
                let codec = Codec::sniff(&value);
                handler.backend_store(&updater, &key, &value, codec, ttl_secs, now_us);
                Some(Frame::StoreAck)
            }
            Frame::StoreGet { updater, key, now_us } => {
                Some(Frame::StoreValue { value: handler.backend_load(&updater, &key, now_us) })
            }
            Frame::StorePutBatch { items, now_us } => {
                Some(Frame::StoreAckBatch { ok: handler.backend_store_many(&items, now_us) })
            }
            Frame::StoreGetBatch { items, now_us } => {
                let values = handler
                    .backend_load_many(&items, now_us)
                    .into_iter()
                    .map(|v| {
                        v.map(|bytes| {
                            let codec = Codec::sniff(&bytes);
                            (bytes, codec)
                        })
                    })
                    .collect();
                Some(Frame::StoreValueBatch { values })
            }
            Frame::Reintroduce { machine } => {
                // A restarted incarnation re-identified itself: forget our
                // send-side death state first so the handler's re-join
                // traffic can reach it, then let the engine clear its
                // ledger/rings.
                transport.revive_peer(machine);
                Some(Frame::ReintroduceAck { epoch: handler.handle_reintroduce(machine) })
            }
            // Reply kinds arriving as requests: protocol violation.
            Frame::HelloAck { .. }
            | Frame::SlateValue { .. }
            | Frame::StoreValue { .. }
            | Frame::StoreAck
            | Frame::StoreAckBatch { .. }
            | Frame::StoreValueBatch { .. }
            | Frame::MembershipAck { .. }
            | Frame::MembershipNack { .. }
            | Frame::ReintroduceAck { .. } => return,
        };
        if let Some(reply) = reply {
            let reply = if peer_mbf {
                reply
            } else {
                // JSON connection: replies must not carry MBF payloads.
                reply.json_downgraded().unwrap_or(reply)
            };
            if reply.write_to(&mut writer).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    type TaggedCells = std::collections::HashMap<Vec<u8>, (Vec<u8>, Codec)>;

    struct EchoHandler {
        delivered: AtomicUsize,
        reports: Mutex<Vec<(MachineId, u64)>>,
        broadcasts: Mutex<Vec<(MachineId, u64)>>,
        joins: Mutex<Vec<MachineId>>,
        memberships: Mutex<Vec<MembershipUpdate>>,
        send_failures: Mutex<Vec<(MachineId, usize)>>,
        store: Mutex<TaggedCells>,
    }

    impl EchoHandler {
        fn new() -> Arc<EchoHandler> {
            Arc::new(EchoHandler {
                delivered: AtomicUsize::new(0),
                reports: Mutex::new(Vec::new()),
                broadcasts: Mutex::new(Vec::new()),
                joins: Mutex::new(Vec::new()),
                memberships: Mutex::new(Vec::new()),
                send_failures: Mutex::new(Vec::new()),
                store: Mutex::new(Default::default()),
            })
        }
    }

    impl ClusterHandler for EchoHandler {
        fn deliver_event(&self, _dest: MachineId, _ev: WireEvent) -> Result<(), NetError> {
            self.delivered.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn handle_send_failure(&self, dest: MachineId, lost: Vec<WireEvent>) {
            self.send_failures.lock().push((dest, lost.len()));
        }
        fn handle_failure_report(&self, failed: MachineId, epoch: u64) {
            self.reports.lock().push((failed, epoch));
        }
        fn handle_failure_broadcast(&self, failed: MachineId, epoch: u64) {
            self.broadcasts.lock().push((failed, epoch));
        }
        fn handle_join(&self, machine: MachineId) {
            self.joins.lock().push(machine);
        }
        fn handle_membership(&self, update: &MembershipUpdate) -> bool {
            self.memberships.lock().push(update.clone());
            true
        }
        fn read_local_slate(&self, _dest: MachineId, updater: &str, key: &[u8]) -> Option<Vec<u8>> {
            (updater == "U1" && key == b"walmart").then(|| b"7".to_vec())
        }
        fn backend_store(
            &self,
            _u: &str,
            key: &[u8],
            value: &[u8],
            codec: Codec,
            _ttl: Option<u64>,
            _now: u64,
        ) {
            self.store.lock().insert(key.to_vec(), (value.to_vec(), codec));
        }
        fn backend_load(&self, _u: &str, key: &[u8], _now: u64) -> Option<Vec<u8>> {
            self.store.lock().get(key).map(|(v, _)| v.clone())
        }
    }

    fn pair() -> (
        Arc<TcpTransport>,
        Arc<TcpTransport>,
        Arc<EchoHandler>,
        Arc<EchoHandler>,
        TcpListenerHandle,
        TcpListenerHandle,
    ) {
        let topo = Topology::loopback_ephemeral(2, false).unwrap();
        let t0 = TcpTransport::new(topo.clone(), 0).unwrap();
        let t1 = TcpTransport::new(topo, 1).unwrap();
        let h0 = EchoHandler::new();
        let h1 = EchoHandler::new();
        t0.register(Arc::downgrade(&h0) as Weak<dyn ClusterHandler>);
        t1.register(Arc::downgrade(&h1) as Weak<dyn ClusterHandler>);
        let l0 = t0.start_listener().unwrap();
        let l1 = t1.start_listener().unwrap();
        (t0, t1, h0, h1, l0, l1)
    }

    fn wire_event() -> WireEvent {
        WireEvent {
            op: 0,
            event: muppet_core::event::Event::new("S", 1, muppet_core::event::Key::from("k"), "v"),
            injected_us: 0,
            redirected: false,
            external: true,
            thread_hint: None,
            forwards: 0,
        }
    }

    #[test]
    fn events_cross_the_wire() {
        let (t0, _t1, _h0, h1, _l0, _l1) = pair();
        for _ in 0..10 {
            t0.send_event(1, wire_event()).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h1.delivered.load(Ordering::Relaxed) < 10 {
            assert!(std::time::Instant::now() < deadline, "events not delivered");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The batching path accounts every event; the frame count may be
        // smaller (coalescing) but never zero.
        let stats = t0.stats();
        assert_eq!(stats.batched_events_sent.load(Ordering::Relaxed), 10);
        let frames = stats.frames_sent.load(Ordering::Relaxed);
        assert!((1..=10).contains(&frames), "got {frames} frames for 10 events");
        assert_eq!(stats.outbound_backlog.load(Ordering::Relaxed), 0, "backlog drains");
    }

    #[test]
    fn queued_events_coalesce_into_batches() {
        let topo = Topology::loopback_ephemeral(2, false).unwrap();
        // A long age bound so the first flush finds a full queue.
        let batch = BatchConfig { batch_max: 64, flush_us: 50_000, queue_capacity: 4096 };
        let t0 = TcpTransport::new_with_batching(topo.clone(), 0, batch).unwrap();
        let t1 = TcpTransport::new(topo, 1).unwrap();
        let h0 = EchoHandler::new();
        let h1 = EchoHandler::new();
        t0.register(Arc::downgrade(&h0) as Weak<dyn ClusterHandler>);
        t1.register(Arc::downgrade(&h1) as Weak<dyn ClusterHandler>);
        let _l1 = t1.start_listener().unwrap();
        for _ in 0..200 {
            t0.send_event(1, wire_event()).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h1.delivered.load(Ordering::Relaxed) < 200 {
            assert!(std::time::Instant::now() < deadline, "events not delivered");
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = t0.stats();
        let frames = stats.frames_sent.load(Ordering::Relaxed);
        assert!(frames < 200, "200 events must not take 200 frames (got {frames})");
        assert!(stats.batches_sent.load(Ordering::Relaxed) >= 1, "at least one multi-event frame");
    }

    #[test]
    fn full_outbox_blocks_instead_of_buffering_unboundedly() {
        let topo = Topology::loopback_ephemeral(2, false).unwrap();
        // Tiny queue + slow flush: the producer must hit the wall.
        let batch = BatchConfig { batch_max: 4, flush_us: 20_000, queue_capacity: 8 };
        let t0 = TcpTransport::new_with_batching(topo.clone(), 0, batch).unwrap();
        let t1 = TcpTransport::new(topo, 1).unwrap();
        let h0 = EchoHandler::new();
        let h1 = EchoHandler::new();
        t0.register(Arc::downgrade(&h0) as Weak<dyn ClusterHandler>);
        t1.register(Arc::downgrade(&h1) as Weak<dyn ClusterHandler>);
        let _l1 = t1.start_listener().unwrap();
        for _ in 0..100 {
            t0.send_event(1, wire_event()).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while h1.delivered.load(Ordering::Relaxed) < 100 {
            assert!(std::time::Instant::now() < deadline, "events not delivered");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            t0.stats().queue_full_waits.load(Ordering::Relaxed) > 0,
            "an 8-slot outbox fed 100 events must exert backpressure"
        );
        assert_eq!(t0.outbound_backlog(), 0);
    }

    #[test]
    fn failed_batch_is_one_detection_with_every_event_accounted() {
        let topo = Topology::loopback_ephemeral(2, false).unwrap();
        // Age bound long enough to park all events in the outbox first.
        let batch = BatchConfig { batch_max: 1024, flush_us: 400_000, queue_capacity: 4096 };
        let t0 = TcpTransport::new_with_batching(topo, 0, batch).unwrap();
        let h0 = EchoHandler::new();
        t0.register(Arc::downgrade(&h0) as Weak<dyn ClusterHandler>);
        // Peer 1 never exists: the flush's connect is refused and the
        // whole queued run must surface as one send failure.
        for _ in 0..17 {
            t0.send_event(1, wire_event()).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h0.send_failures.lock().is_empty() {
            assert!(std::time::Instant::now() < deadline, "send failure never surfaced");
            std::thread::sleep(Duration::from_millis(5));
        }
        let failures = h0.send_failures.lock();
        assert_eq!(failures.len(), 1, "one batch failure, not one per event");
        let (dest, lost) = &failures[0];
        assert_eq!(*dest, 1);
        assert_eq!(*lost, 17, "every queued event is in the lost set");
        drop(failures);
        assert_eq!(t0.outbound_backlog(), 0);
        // The peer is down for good: later sends fail synchronously.
        assert!(matches!(t0.send_event(1, wire_event()), Err(NetError::Unreachable(1))));
    }

    #[test]
    fn slate_and_store_requests_get_replies() {
        let (t0, t1, h0, _h1, _l0, _l1) = pair();
        assert_eq!(t0.read_slate(1, "U1", b"walmart").unwrap(), Some(b"7".to_vec()));
        assert_eq!(t0.read_slate(1, "U1", b"absent").unwrap(), None);
        // Store ops served by node 0's handler, called from node 1.
        t1.store_put(0, "U1", b"k1", b"v1", Codec::Json, None, 0).unwrap();
        assert_eq!(t1.store_get(0, "U1", b"k1", 0).unwrap(), Some(b"v1".to_vec()));
        assert_eq!(t1.store_get(0, "U1", b"nope", 0).unwrap(), None);
        assert_eq!(h0.store.lock().len(), 1);
    }

    #[test]
    fn store_batches_are_one_round_trip_each() {
        let (_t0, t1, h0, _h1, _l0, _l1) = pair();
        let before = t1.stats().frames_sent.load(Ordering::Relaxed);
        let items: Vec<StorePutItem> = (0..32)
            .map(|i| StorePutItem {
                updater: "U1".into(),
                key: format!("k{i}").into_bytes(),
                value: format!("v{i}").into_bytes().into(),
                ttl_secs: None,
                codec: Codec::Json,
            })
            .collect();
        let ok = t1.store_put_many(0, items, 5).unwrap();
        assert_eq!(ok, vec![true; 32]);
        assert_eq!(h0.store.lock().len(), 32, "every cell landed on the host");
        let gets: Vec<StoreGetItem> = (0..33)
            .map(|i| StoreGetItem { updater: "U1".into(), key: format!("k{i}").into_bytes() })
            .collect();
        let values = t1.store_get_many(0, gets, 6).unwrap();
        assert_eq!(values.len(), 33);
        for (i, v) in values.iter().take(32).enumerate() {
            assert_eq!(v.as_deref(), Some(format!("v{i}").as_bytes()));
        }
        assert_eq!(values[32], None, "unknown keys read as None");
        let frames = t1.stats().frames_sent.load(Ordering::Relaxed) - before;
        assert_eq!(frames, 2, "32 puts + 33 gets = exactly two wire round trips");
    }

    #[test]
    fn failure_report_routes_to_master_and_broadcast_fans_out() {
        let (t0, t1, h0, h1, _l0, _l1) = pair();
        // Node 1 reports to the master (node 0) over the wire, stamped
        // with its membership epoch.
        t1.report_failure(7, 3);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h0.reports.lock().is_empty() {
            assert!(std::time::Instant::now() < deadline, "report not received");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*h0.reports.lock(), vec![(7, 3)]);
        // Master broadcast reaches both nodes (local + remote).
        t0.broadcast_failure(7, 3);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h1.broadcasts.lock().is_empty() {
            assert!(std::time::Instant::now() < deadline, "broadcast not received");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*h0.broadcasts.lock(), vec![(7, 3)]);
        assert_eq!(*h1.broadcasts.lock(), vec![(7, 3)]);
    }

    #[test]
    fn join_and_membership_phases_cross_the_wire() {
        let (t0, t1, h0, h1, _l0, _l1) = pair();
        // Joiner → master announcement (delivery errors surface).
        t1.send_join(0, 2).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h0.joins.lock().is_empty() {
            assert!(std::time::Instant::now() < deadline, "join not received");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*h0.joins.lock(), vec![2]);
        // Prepare is a blocking request/response: the ack returns only
        // after the peer's handler ran (the flush barrier).
        let spec = NodeSpec { id: 2, host: "127.0.0.1".into(), port: 1, http_port: 0 };
        let prepare = MembershipUpdate {
            epoch: 1,
            phase: MembershipPhase::Prepare,
            joined: vec![2],
            members: vec![0, 1, 2],
            nodes: vec![spec.clone()],
        };
        t0.send_membership(1, &prepare, true).unwrap();
        assert_eq!(*h1.memberships.lock(), vec![prepare.clone()]);
        // Commit is one-way.
        let commit = MembershipUpdate { phase: MembershipPhase::Commit, ..prepare };
        t0.send_membership(1, &commit, false).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h1.memberships.lock().len() < 2 {
            assert!(std::time::Instant::now() < deadline, "commit not received");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(h1.memberships.lock()[1], commit);
    }

    #[test]
    fn add_peer_grows_a_running_transport() {
        // A 2-node cluster grows a 3rd peer at runtime; events to the new
        // id flow without rebuilding the transport.
        let grown = Topology::loopback_ephemeral(3, false).unwrap();
        let base = Topology { nodes: grown.nodes[..2].to_vec(), master: 0 };
        let t0 = TcpTransport::new(base, 0).unwrap();
        let t2 = TcpTransport::new(grown.clone(), 2).unwrap();
        let h0 = EchoHandler::new();
        let h2 = EchoHandler::new();
        t0.register(Arc::downgrade(&h0) as Weak<dyn ClusterHandler>);
        t2.register(Arc::downgrade(&h2) as Weak<dyn ClusterHandler>);
        let _l2 = t2.start_listener().unwrap();

        assert!(matches!(t0.send_event(2, wire_event()), Err(NetError::NoRoute(2))));
        t0.add_peer(&grown.nodes[2]).unwrap();
        t0.add_peer(&grown.nodes[2]).unwrap(); // idempotent re-announcement
        assert_eq!(t0.topology().len(), 3);
        assert!(t0.add_peer(&NodeSpec { id: 5, ..grown.nodes[2].clone() }).is_err(), "gapped id");
        t0.send_event(2, wire_event()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h2.delivered.load(Ordering::Relaxed) < 1 {
            assert!(std::time::Instant::now() < deadline, "event to grown peer not delivered");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn dead_peer_surfaces_unreachable() {
        let (t0, _t1, _h0, h1, _l0, l1) = pair();
        t0.send_event(1, wire_event()).unwrap();
        drop(l1); // "kill" node 1's inbound wire
                  // Buffered writes may still succeed; within a few sends the reset
                  // connection and refused reconnect must surface.
        let mut saw_unreachable = false;
        for _ in 0..50 {
            if matches!(t0.send_event(1, wire_event()), Err(NetError::Unreachable(1))) {
                saw_unreachable = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(saw_unreachable, "dead peer never surfaced as Unreachable");
        assert!(t0.stats().send_failures.load(Ordering::Relaxed) >= 1);
        let _ = h1;
    }

    fn mbf_value() -> Vec<u8> {
        muppet_core::Json::parse(r#"{"count":42,"loc":"walmart"}"#).unwrap().to_mbf().unwrap()
    }

    #[test]
    fn v5_peers_negotiate_mbf_and_tags_survive_the_wire() {
        let (_t0, t1, h0, _h1, _l0, _l1) = pair();
        let raw = mbf_value();
        let items = vec![
            StorePutItem {
                updater: "U1".into(),
                key: b"bin".to_vec(),
                value: raw.clone().into(),
                ttl_secs: None,
                codec: Codec::Mbf,
            },
            StorePutItem {
                updater: "U1".into(),
                key: b"txt".to_vec(),
                value: bytes::Bytes::from_static(b"7"),
                ttl_secs: None,
                codec: Codec::Json,
            },
        ];
        let ok = t1.store_put_many(0, items, 1).unwrap();
        assert_eq!(ok, vec![true, true]);
        assert!(t1.stats().mbf_connects.load(Ordering::Relaxed) >= 1, "handshake negotiated MBF");
        let store = h0.store.lock();
        assert_eq!(store.get(&b"bin"[..].to_vec()).unwrap(), &(raw.clone(), Codec::Mbf));
        assert_eq!(store.get(&b"txt"[..].to_vec()).unwrap(), &(b"7".to_vec(), Codec::Json));
        drop(store);
        // The tagged value batch carries the MBF bytes back verbatim.
        let gets = vec![
            StoreGetItem { updater: "U1".into(), key: b"bin".to_vec() },
            StoreGetItem { updater: "U1".into(), key: b"txt".to_vec() },
        ];
        let values = t1.store_get_many(0, gets, 2).unwrap();
        assert_eq!(values[0].as_deref(), Some(&raw[..]));
        assert_eq!(values[1].as_deref(), Some(&b"7"[..]));
    }

    #[test]
    fn json_pinned_dialer_acts_like_a_v4_peer() {
        // t1 is pinned to JSON: it dials legacy v4 hellos (no ack read)
        // and must transcode MBF payloads before they reach the wire —
        // the unit-level mixed-version scenario.
        let topo = Topology::loopback_ephemeral(2, false).unwrap();
        let t0 = TcpTransport::new(topo.clone(), 0).unwrap();
        let t1 = TcpTransport::new_with_codec(topo, 1, BatchConfig::default(), CodecChoice::Json)
            .unwrap();
        let h0 = EchoHandler::new();
        let h1 = EchoHandler::new();
        t0.register(Arc::downgrade(&h0) as Weak<dyn ClusterHandler>);
        t1.register(Arc::downgrade(&h1) as Weak<dyn ClusterHandler>);
        let _l0 = t0.start_listener().unwrap();

        let raw = mbf_value();
        let items = vec![StorePutItem {
            updater: "U1".into(),
            key: b"bin".to_vec(),
            value: raw.clone().into(),
            ttl_secs: None,
            codec: Codec::Mbf,
        }];
        let ok = t1.store_put_many(0, items, 1).unwrap();
        assert_eq!(ok, vec![true]);
        assert_eq!(t1.stats().mbf_connects.load(Ordering::Relaxed), 0);
        let store = h0.store.lock();
        let (stored, codec) = store.get(&b"bin"[..].to_vec()).unwrap().clone();
        drop(store);
        assert_eq!(codec, Codec::Json, "the downgrade strips the MBF tag");
        assert_eq!(
            std::str::from_utf8(&stored).unwrap(),
            r#"{"count":42,"loc":"walmart"}"#,
            "the payload crossed the wire as canonical JSON text"
        );
        // Event values downgrade the same way on the batching path.
        let mut ev = wire_event();
        ev.event.value = raw.into();
        t1.send_event(0, ev).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h0.delivered.load(Ordering::Relaxed) < 1 {
            assert!(std::time::Instant::now() < deadline, "event not delivered");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn mbf_dialer_against_json_pinned_server_falls_back_to_json() {
        // The server offers nothing (JSON-pinned), so the v5 dialer's
        // handshake negotiates JSON and MBF payloads are transcoded.
        let topo = Topology::loopback_ephemeral(2, false).unwrap();
        let t0 = TcpTransport::new_with_codec(
            topo.clone(),
            0,
            BatchConfig::default(),
            CodecChoice::Json,
        )
        .unwrap();
        let t1 = TcpTransport::new(topo, 1).unwrap();
        let h0 = EchoHandler::new();
        let h1 = EchoHandler::new();
        t0.register(Arc::downgrade(&h0) as Weak<dyn ClusterHandler>);
        t1.register(Arc::downgrade(&h1) as Weak<dyn ClusterHandler>);
        let _l0 = t0.start_listener().unwrap();

        let raw = mbf_value();
        t1.store_put(0, "U1", b"bin", &raw, Codec::Mbf, None, 1).unwrap();
        assert_eq!(t1.stats().mbf_connects.load(Ordering::Relaxed), 0, "ack granted nothing");
        let store = h0.store.lock();
        let (stored, codec) = store.get(&b"bin"[..].to_vec()).unwrap().clone();
        assert_eq!(codec, Codec::Json);
        assert_eq!(std::str::from_utf8(&stored).unwrap(), r#"{"count":42,"loc":"walmart"}"#);
    }

    /// A standalone outbox (no transport, no socket) for driving
    /// `collect_batch`/`fold_batch` directly.
    fn bare_outbox(cfg: BatchConfig) -> Arc<PeerOutbox> {
        Arc::new(PeerOutbox {
            dest: 1,
            local: 0,
            addr: "127.0.0.1:1".parse().unwrap(),
            cfg: BatchConfig {
                batch_max: cfg.batch_max.max(1),
                queue_capacity: cfg.queue_capacity.max(1),
                ..cfg
            },
            codec: CodecChoice::Auto,
            queue: Mutex::new(OutboxQueue { events: VecDeque::new(), oldest_at: None }),
            cv: Condvar::new(),
            down: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            started: AtomicBool::new(false),
            stats: Arc::new(TcpStats::default()),
            handler: Arc::new(HandlerSlot::default()),
        })
    }

    #[test]
    fn overgrown_queue_flushes_in_batch_max_sized_frames() {
        // Regression: a queue that grew past batch_max between flush
        // ticks (age- or stop-triggered) must drain as several
        // batch_max-sized frames, never one oversized frame.
        let ob = bare_outbox(BatchConfig { batch_max: 8, flush_us: 1, queue_capacity: 4096 });
        {
            let mut q = ob.queue.lock();
            for _ in 0..29 {
                q.events.push_back(wire_event());
            }
            q.oldest_at = Some(Instant::now());
        }
        ob.stopping.store(true, Ordering::Release);
        let (mut total, mut batches) = (0usize, 0usize);
        while let Some(batch) = collect_batch(&ob) {
            assert!(batch.len() <= 8, "flush emitted an oversized frame of {}", batch.len());
            total += batch.len();
            batches += 1;
        }
        assert_eq!(total, 29, "every queued event drained exactly once");
        assert_eq!(batches, 4, "29 events over batch_max=8 is 4 frames");
    }

    /// Handler whose op 1 declares a decimal-sum combiner; tracks the
    /// exact delivered total and absorbed counts.
    struct CombiningHandler {
        delivered_entries: AtomicUsize,
        absorbed: AtomicUsize,
        sum: AtomicUsize,
    }

    impl CombiningHandler {
        fn new() -> Arc<CombiningHandler> {
            Arc::new(CombiningHandler {
                delivered_entries: AtomicUsize::new(0),
                absorbed: AtomicUsize::new(0),
                sum: AtomicUsize::new(0),
            })
        }
    }

    impl ClusterHandler for CombiningHandler {
        fn deliver_event(&self, _dest: MachineId, ev: WireEvent) -> Result<(), NetError> {
            self.delivered_entries.fetch_add(1, Ordering::Relaxed);
            let n: usize =
                std::str::from_utf8(&ev.event.value).unwrap_or("0").trim().parse().unwrap_or(0);
            self.sum.fetch_add(n, Ordering::Relaxed);
            Ok(())
        }
        fn deliver_combined(
            &self,
            dest: MachineId,
            ev: WireEvent,
            absorbed: u64,
        ) -> Result<(), NetError> {
            self.absorbed.fetch_add(absorbed as usize, Ordering::Relaxed);
            self.deliver_event(dest, ev)
        }
        fn combine_values(
            &self,
            op: muppet_core::workflow::OpId,
            acc: &[u8],
            next: &[u8],
        ) -> Option<Vec<u8>> {
            if op != 1 {
                return None;
            }
            muppet_core::operator::combine_decimal_sum(acc, next)
        }
        fn handle_failure_report(&self, _failed: MachineId, _epoch: u64) {}
        fn handle_failure_broadcast(&self, _failed: MachineId, _epoch: u64) {}
        fn read_local_slate(&self, _d: MachineId, _u: &str, _k: &[u8]) -> Option<Vec<u8>> {
            None
        }
    }

    fn keyed_event(op: muppet_core::workflow::OpId, key: &str, value: &str) -> WireEvent {
        WireEvent {
            op,
            event: muppet_core::event::Event::new(
                "S",
                1,
                muppet_core::event::Key::from(key),
                value.as_bytes().to_vec(),
            ),
            injected_us: 7,
            redirected: false,
            external: true,
            thread_hint: None,
            forwards: 0,
        }
    }

    #[test]
    fn fold_batch_coalesces_same_key_runs_in_first_occurrence_order() {
        let ob = bare_outbox(BatchConfig::default());
        let h = CombiningHandler::new();
        ob.handler.register(Arc::downgrade(&h) as Weak<dyn ClusterHandler>);
        let raw = vec![
            keyed_event(1, "a", "1"),
            keyed_event(1, "b", "5"),
            keyed_event(1, "a", "2"),
            keyed_event(2, "a", "9"), // op 2 declares no combiner
            keyed_event(1, "a", "3"),
            keyed_event(2, "a", "9"),
        ];
        let entries = fold_batch(&ob, raw);
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].0.event.value.as_ref(), b"6", "1+2+3 folded");
        assert_eq!(entries[0].1, 3);
        assert_eq!(entries[1].0.event.value.as_ref(), b"5");
        assert_eq!(entries[1].1, 1);
        assert_eq!(entries[2].1, 1, "non-combining op never folds");
        assert_eq!(entries[3].1, 1);
    }

    #[test]
    fn fold_batch_without_handler_passes_through() {
        let ob = bare_outbox(BatchConfig::default());
        let raw = vec![keyed_event(1, "a", "1"), keyed_event(1, "a", "2")];
        let entries = fold_batch(&ob, raw);
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|(_, c)| *c == 1));
    }

    #[test]
    fn combined_runs_cross_the_wire_with_exact_totals() {
        let topo = Topology::loopback_ephemeral(2, false).unwrap();
        // A long age bound so the queue accumulates a foldable run.
        let batch = BatchConfig { batch_max: 128, flush_us: 50_000, queue_capacity: 4096 };
        let t0 = TcpTransport::new_with_batching(topo.clone(), 0, batch).unwrap();
        let t1 = TcpTransport::new(topo, 1).unwrap();
        let h0 = CombiningHandler::new();
        let h1 = CombiningHandler::new();
        t0.register(Arc::downgrade(&h0) as Weak<dyn ClusterHandler>);
        t1.register(Arc::downgrade(&h1) as Weak<dyn ClusterHandler>);
        let _l1 = t1.start_listener().unwrap();
        for _ in 0..50 {
            t0.send_event(1, keyed_event(1, "hot", "1")).unwrap();
        }
        t0.send_event(1, keyed_event(1, "cold", "1")).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while h1.sum.load(Ordering::Relaxed) < 51 {
            assert!(std::time::Instant::now() < deadline, "combined totals not delivered");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(h1.sum.load(Ordering::Relaxed), 51, "folded payloads preserve the total");
        let entries_framed = t0.stats().batched_events_sent.load(Ordering::Relaxed);
        assert!(
            entries_framed < 51,
            "same-key runs must fold before framing (framed {entries_framed} entries for 51 events)"
        );
        assert!(
            h1.absorbed.load(Ordering::Relaxed) >= 2,
            "receiver saw combined entries with their absorbed counts"
        );
        assert_eq!(t0.stats().outbound_backlog.load(Ordering::Relaxed), 0, "backlog is raw-count");
    }

    #[test]
    fn local_destination_bypasses_sockets() {
        let topo = Topology::loopback_ephemeral(1, false).unwrap();
        let t = TcpTransport::new(topo, 0).unwrap();
        let h = EchoHandler::new();
        t.register(Arc::downgrade(&h) as Weak<dyn ClusterHandler>);
        // No listener started at all: local sends still work.
        t.send_event(0, wire_event()).unwrap();
        assert_eq!(h.delivered.load(Ordering::Relaxed), 1);
        assert_eq!(t.read_slate(0, "U1", b"walmart").unwrap(), Some(b"7".to_vec()));
        assert!(t.is_local(0));
        assert_eq!(t.local_machine(), Some(0));
    }
}
