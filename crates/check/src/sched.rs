//! Deterministic-seed schedule perturbation.
//!
//! A thread cannot choose when the OS preempts it, but it can *offer*
//! preemption points. Each participating thread derives a private
//! splitmix64 stream from ⟨global seed, thread index⟩ and, at every
//! [`point`], draws from it to decide: continue, yield the CPU, or spin
//! briefly. Sweeping the seed space drives the same protocol code through
//! thousands of distinct interleavings — on a 1-core CI runner (where
//! threads otherwise run to quantum exhaustion and concurrency bugs
//! hide), the injected yields are what create interleaving diversity at
//! all.
//!
//! The decision *sequence* per thread is a pure function of the seed, so
//! a failing seed is rerunnable; the actual interleaving additionally
//! depends on the OS scheduler, so this is a probabilistic explorer, not
//! a model checker — the point is that each seed perturbs differently.
//!
//! Two entry styles:
//! * models call [`point`] explicitly at their protocol steps;
//! * under the `lock-audit` feature, [`hook`] can be installed via
//!   `muppet_core::sync::audit::set_sched_hook` so every *shim lock
//!   acquisition* in real code becomes a perturbation point too.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_SEED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static STREAM: Cell<u64> = const { Cell::new(0) };
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Set the seed for the next run. Threads registered afterwards derive
/// their streams from it.
pub fn install(seed: u64) {
    GLOBAL_SEED.store(seed, Ordering::SeqCst);
}

/// Join the current thread to the perturbation run as participant
/// `thread_idx`. Must be called by each model thread before its first
/// [`point`]; unregistered threads see every point as a no-op.
pub fn register(thread_idx: u64) {
    let mut s = GLOBAL_SEED.load(Ordering::SeqCst) ^ thread_idx.wrapping_mul(0xA076_1D64_78BD_642F);
    // Burn one draw so thread 0 with seed 0 is not the identity stream.
    splitmix(&mut s);
    STREAM.with(|c| c.set(s));
    ACTIVE.with(|c| c.set(true));
}

/// Leave the run (thread reuse hygiene for pooled executors).
pub fn deregister() {
    ACTIVE.with(|c| c.set(false));
}

/// A preemption offer: based on the thread's deterministic stream,
/// either continue immediately, yield to the OS scheduler, or spin.
pub fn point() {
    if !ACTIVE.with(|c| c.get()) {
        return;
    }
    let draw = STREAM.with(|c| {
        let mut s = c.get();
        let d = splitmix(&mut s);
        c.set(s);
        d
    });
    match draw % 10 {
        // 50%: run on — long undisturbed stretches matter too, or every
        // interleaving degenerates into lockstep.
        0..=4 => {}
        // 40%: give the scheduler a chance to run someone else here.
        5..=8 => std::thread::yield_now(),
        // 10%: burn a short, seed-sized window so another thread can
        // enter the code we just left.
        _ => {
            let spins = draw % 256;
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
    }
}

/// `fn()`-shaped adapter for `muppet_core::sync::audit::set_sched_hook`:
/// perturb at every shim lock acquisition of registered threads.
pub fn hook() {
    point();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed_and_thread() {
        let draws = |seed: u64, idx: u64| -> Vec<u64> {
            let mut s = seed ^ idx.wrapping_mul(0xA076_1D64_78BD_642F);
            splitmix(&mut s);
            (0..8).map(|_| splitmix(&mut s) % 10).collect()
        };
        assert_eq!(draws(7, 1), draws(7, 1));
        assert_ne!(draws(7, 1), draws(8, 1), "seed changes the stream");
        assert_ne!(draws(7, 1), draws(7, 2), "thread index changes the stream");
    }

    #[test]
    fn unregistered_threads_are_untouched() {
        deregister();
        point(); // must be a no-op, not a panic
    }
}
