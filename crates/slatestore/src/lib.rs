//! # muppet-slatestore — the durable slate store
//!
//! Muppet persists slates in Cassandra: "Muppet stores slate S(U,k) ... as a
//! value at row k and column U" (§4.2), compressed, with per-write TTLs,
//! quorum-configurable reads/writes, and write-buffered storage on SSDs.
//! This crate is a from-scratch reproduction of the slice of Cassandra that
//! Muppet actually uses:
//!
//! * an **LSM storage node** ([`node::StoreNode`]): commit log ([`wal`]),
//!   in-memory memtable ([`memtable`]), immutable **SSTables** on disk
//!   ([`sstable`]) with block indexes and bloom filters ([`bloom`]),
//!   size-tiered compaction ([`compaction`]), tombstones, and TTL expiry;
//! * **distribution** ([`cluster::StoreCluster`]): consistent-hash
//!   placement ([`ring`]) with N-way replication and per-operation
//!   consistency levels ONE / QUORUM / ALL, read repair, and node
//!   up/down handling;
//! * **value compression** ([`compress`]): an LZSS codec standing in for
//!   the paper's slate compression;
//! * a **storage device model** ([`device`]): per-I/O service times for
//!   SSD vs. spinning disk, so the §4.2 SSD experiments have a knob.
//!
//! Everything is synchronous and lock-protected; Muppet's background
//! flusher thread (in `muppet-runtime`) provides the asynchrony the paper
//! describes ("a thread to provide background I/O to the durable key-value
//! store", §4.5).

pub mod bloom;
pub mod cluster;
pub mod compaction;
pub mod compress;
pub mod device;
pub mod memtable;
pub mod node;
mod record;
pub mod ring;
pub mod sstable;
pub mod types;
pub mod util;
pub mod wal;

pub use cluster::{Consistency, StoreCluster, StoreConfig};
pub use node::{NodeConfig, StoreNode};
pub use types::{Cell, CellKey, StoreError, StoreResult};
