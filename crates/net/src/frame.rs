//! Wire frames.
//!
//! Every message on a muppet connection is one length-prefixed frame:
//!
//! ```text
//! [u32 LE payload length][u32 LE crc32c(payload)][payload]
//! payload = [u8 kind][kind-specific fields]
//! ```
//!
//! Fields reuse `muppet-core::codec` primitives (varints, length-prefixed
//! byte strings, the event wire encoding). The CRC catches corruption and
//! desynchronization; decoding is bounds-checked throughout and never
//! panics on malformed input.

use std::io::{self, Read, Write};

use bytes::Bytes;
use muppet_core::codec::{
    self, get_event, get_len_prefixed, get_varint, put_event, put_len_prefixed, put_varint,
};
use muppet_core::event::Event;
use muppet_core::workflow::OpId;

use crate::topology::NodeSpec;
use crate::transport::MachineId;

/// Refuse frames larger than this (corrupt length prefixes otherwise
/// trigger absurd allocations).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// An event in flight between machines, with the routing metadata the
/// receiving engine needs to finish delivery.
#[derive(Clone, Debug, PartialEq)]
pub struct WireEvent {
    /// Destination operator.
    pub op: OpId,
    /// The event itself.
    pub event: Event,
    /// Sender-engine-relative µs at external injection (approximate across
    /// processes; see DESIGN.md §5).
    pub injected_us: u64,
    /// Already redirected to an overflow stream once (no double redirects).
    pub redirected: bool,
    /// Originated from an external `submit` (overflow policy distinguishes
    /// external from internal events, §5).
    pub external: bool,
    /// Muppet 1.0: the destination worker thread resolved by the sender's
    /// op rings (the worker layout is deterministic, so the hint is valid
    /// cluster-wide). `None` for Muppet 2.0 two-choice dispatch at the
    /// receiver.
    pub thread_hint: Option<usize>,
    /// Times this event has been forwarded by a machine that no longer
    /// owned its key (elastic handoff / laggard rings). Capped at
    /// [`MAX_FORWARDS`] on the wire; receivers drop-and-log beyond it so
    /// disagreeing rings can never ping-pong an event forever.
    pub forwards: u8,
}

/// Hop bound for ownership forwarding (3 bits in the wire flags byte).
pub const MAX_FORWARDS: u8 = 7;

/// Which step of the membership protocol a [`MembershipUpdate`] carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipPhase {
    /// Stage the candidate rings and flush moved-away dirty slates, then
    /// ack (request/response — the handoff barrier).
    Prepare,
    /// Install the staged epoch (one-way).
    Commit,
    /// Discard the staged epoch: the join was aborted before commit
    /// (one-way). Prepared nodes revert to their committed rings; the
    /// already-flushed slates fault back in from the store.
    Abort,
}

/// An epoch-stamped membership change in flight between the master and
/// the workers (elastic scale-out; DESIGN.md §7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MembershipUpdate {
    /// The epoch this update creates (or, for an abort, discards).
    pub epoch: u64,
    /// Prepare, commit, or abort.
    pub phase: MembershipPhase,
    /// Machine ids entering the rings at this epoch.
    pub joined: Vec<MachineId>,
    /// The complete committed ring membership *after* this epoch — not
    /// just the delta. A worker that missed an earlier epoch heals from
    /// this: any member absent from its rings is (re-)added when the
    /// update stages, so one lost frame can never diverge membership
    /// forever.
    pub members: Vec<MachineId>,
    /// The full cluster node list (workers learn new peers' addresses
    /// from here; ids are contiguous and include not-yet-joined
    /// reservations).
    pub nodes: Vec<NodeSpec>,
}

/// One slate write inside a [`Frame::StorePutBatch`] — the wire image of
/// a dirty-slate snapshot headed for the store host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorePutItem {
    /// Update function (store column).
    pub updater: String,
    /// Event key (store row).
    pub key: Vec<u8>,
    /// Slate bytes — refcounted, so a flush snapshot moves from the
    /// slate cache into the frame without copying the payload.
    pub value: Bytes,
    /// Slate TTL, if the updater configured one.
    pub ttl_secs: Option<u64>,
}

/// One slate read inside a [`Frame::StoreGetBatch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreGetItem {
    /// Update function (store column).
    pub updater: String,
    /// Event key (store row).
    pub key: Vec<u8>,
}

/// One protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Connection preamble: protocol version + sender machine.
    Hello { sender: MachineId },
    /// Deliver an event (one-way; losses surface as connection errors).
    Event(WireEvent),
    /// Deliver a coalesced run of events (one-way). One frame header, one
    /// CRC, one syscall for the whole run — the amortization that makes
    /// the wire keep up with the firehose (§4.1). Semantically identical
    /// to the same events sent as individual [`Frame::Event`]s.
    EventBatch(Vec<WireEvent>),
    /// Worker → master: `failed` was unreachable on send (§4.3), observed
    /// under membership `epoch` (stale-epoch reports about a re-joined id
    /// are rejected by the master).
    FailureReport { failed: MachineId, epoch: u64 },
    /// Master → everyone: drop `failed` from all hash rings (§4.3),
    /// stamped with the epoch the failure was accepted under.
    FailureBroadcast { failed: MachineId, epoch: u64 },
    /// Joiner → master: machine `machine` (previously reserved via the
    /// HTTP `/join` admin call) is live and ready to enter the rings.
    Join { machine: MachineId },
    /// Master → workers: an epoch-stamped membership change (prepare or
    /// commit; see [`MembershipUpdate`]).
    Membership(MembershipUpdate),
    /// Worker → master reply to a [`Frame::Membership`] prepare: the
    /// epoch is staged; moved-away dirty slates were flushed before this
    /// ack.
    MembershipAck { epoch: u64 },
    /// Worker → master reply to a [`Frame::Membership`] prepare the
    /// worker refused (e.g. a newer epoch already staged). Lets the
    /// master fail fast instead of burning a reply timeout and
    /// misreading a healthy worker as dead.
    MembershipNack { epoch: u64 },
    /// Request the live cached slate of ⟨updater, key⟩ (§4.4 remote read).
    SlateGet { updater: String, key: Vec<u8> },
    /// Response to [`Frame::SlateGet`].
    SlateValue { value: Option<Vec<u8>> },
    /// Persist slate bytes on the store-hosting node.
    StorePut { updater: String, key: Vec<u8>, value: Vec<u8>, ttl_secs: Option<u64>, now_us: u64 },
    /// Load persisted slate bytes from the store-hosting node.
    StoreGet { updater: String, key: Vec<u8>, now_us: u64 },
    /// Response to [`Frame::StoreGet`].
    StoreValue { value: Option<Vec<u8>> },
    /// Response to [`Frame::StorePut`].
    StoreAck,
    /// Persist a run of slates on the store-hosting node in ONE framed
    /// round trip (the §4.2 write-behind flush: a tick's dirty set crosses
    /// the wire as one frame, one CRC, one syscall — the store-path twin
    /// of [`Frame::EventBatch`]). Semantically identical to the same cells
    /// sent as individual [`Frame::StorePut`]s, which remain accepted.
    StorePutBatch { items: Vec<StorePutItem>, now_us: u64 },
    /// Response to [`Frame::StorePutBatch`]: per-item success, in order
    /// (false = the store refused that cell; the sender keeps it dirty).
    StoreAckBatch { ok: Vec<bool> },
    /// Load a run of slates from the store-hosting node in one round trip.
    StoreGetBatch { items: Vec<StoreGetItem>, now_us: u64 },
    /// Response to [`Frame::StoreGetBatch`]: per-item values, in order.
    StoreValueBatch { values: Vec<Option<Vec<u8>>> },
    /// A restarted incarnation of `machine` re-identifying itself (crash
    /// recovery): the receiver clears its §4.3 death-ledger entry, marks
    /// the machine routable again, and — on the master — re-runs the
    /// join protocol so the returning node regains its ring position.
    Reintroduce { machine: usize },
    /// Response to [`Frame::Reintroduce`]: the receiver's membership
    /// epoch, so the returning node can fence itself.
    ReintroduceAck { epoch: u64 },
}

/// Protocol version carried in [`Frame::Hello`]. v4: restart
/// re-identification (`Reintroduce`/`ReintroduceAck`); v3 added batched
/// store frames (`StorePutBatch`/`StoreGetBatch` + responses); v2 added
/// epoch-stamped failure frames + the membership (elastic join) frames.
/// The unbatched store frames remain in the protocol and are still
/// accepted.
pub const PROTOCOL_VERSION: u64 = 4;

const KIND_HELLO: u8 = 1;
const KIND_EVENT: u8 = 2;
const KIND_FAILURE_REPORT: u8 = 3;
const KIND_FAILURE_BROADCAST: u8 = 4;
const KIND_SLATE_GET: u8 = 5;
const KIND_SLATE_VALUE: u8 = 6;
const KIND_STORE_PUT: u8 = 7;
const KIND_STORE_GET: u8 = 8;
const KIND_STORE_VALUE: u8 = 9;
const KIND_STORE_ACK: u8 = 10;
const KIND_EVENT_BATCH: u8 = 11;
const KIND_JOIN: u8 = 12;
const KIND_MEMBERSHIP: u8 = 13;
const KIND_MEMBERSHIP_ACK: u8 = 14;
const KIND_MEMBERSHIP_NACK: u8 = 15;
const KIND_STORE_PUT_BATCH: u8 = 16;
const KIND_STORE_ACK_BATCH: u8 = 17;
const KIND_STORE_GET_BATCH: u8 = 18;
const KIND_STORE_VALUE_BATCH: u8 = 19;
const KIND_REINTRODUCE: u8 = 20;
const KIND_REINTRODUCE_ACK: u8 = 21;

/// The encoded floor of one event inside a batch (op + injected_us +
/// flags + hint tag + the event's own fixed fields) — used to bound the
/// batch-vector pre-allocation against corrupt counts.
const MIN_WIRE_EVENT_BYTES: usize = 8;

fn put_opt_bytes(out: &mut Vec<u8>, value: &Option<Vec<u8>>) {
    match value {
        Some(bytes) => {
            out.push(1);
            put_len_prefixed(out, bytes);
        }
        None => out.push(0),
    }
}

fn get_opt_bytes(buf: &[u8]) -> Option<(Option<Vec<u8>>, usize)> {
    match *buf.first()? {
        0 => Some((None, 1)),
        1 => {
            let (bytes, n) = get_len_prefixed(&buf[1..])?;
            Some((Some(bytes.to_vec()), 1 + n))
        }
        _ => None,
    }
}

fn put_opt_varint(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        Some(v) => {
            out.push(1);
            put_varint(out, v);
        }
        None => out.push(0),
    }
}

fn get_opt_varint(buf: &[u8]) -> Option<(Option<u64>, usize)> {
    match *buf.first()? {
        0 => Some((None, 1)),
        1 => {
            let (v, n) = get_varint(&buf[1..])?;
            Some((Some(v), 1 + n))
        }
        _ => None,
    }
}

/// Encode one batched-path event's fields (shared by the `Event` and
/// `EventBatch` payloads).
fn put_wire_event(out: &mut Vec<u8>, ev: &WireEvent) {
    put_varint(out, ev.op as u64);
    put_varint(out, ev.injected_us);
    let mut flags = 0u8;
    if ev.redirected {
        flags |= 1;
    }
    if ev.external {
        flags |= 2;
    }
    // Bits 2..=4: the forwarding hop count, saturating at MAX_FORWARDS.
    flags |= ev.forwards.min(MAX_FORWARDS) << 2;
    out.push(flags);
    put_opt_varint(out, ev.thread_hint.map(|t| t as u64));
    put_event(out, &ev.event);
}

/// Decode one batched-path event's fields. Returns the event and the
/// bytes consumed; `None` on malformed input.
fn get_wire_event(buf: &[u8]) -> Option<(WireEvent, usize)> {
    let mut at = 0;
    let (op, n) = get_varint(buf)?;
    at += n;
    let (injected_us, n) = get_varint(&buf[at..])?;
    at += n;
    let flags = *buf.get(at)?;
    at += 1;
    let (hint, n) = get_opt_varint(&buf[at..])?;
    at += n;
    let (event, n) = get_event(&buf[at..])?;
    at += n;
    Some((
        WireEvent {
            op: op as OpId,
            event,
            injected_us,
            redirected: flags & 1 != 0,
            external: flags & 2 != 0,
            thread_hint: hint.map(|t| t as usize),
            forwards: (flags >> 2) & 0x07,
        },
        at,
    ))
}

fn put_node_spec(out: &mut Vec<u8>, node: &NodeSpec) {
    put_varint(out, node.id as u64);
    put_len_prefixed(out, node.host.as_bytes());
    put_varint(out, node.port as u64);
    put_varint(out, node.http_port as u64);
}

fn get_node_spec(buf: &[u8]) -> Option<(NodeSpec, usize)> {
    let mut at = 0;
    let (id, n) = get_varint(buf)?;
    at += n;
    let (host, n) = get_len_prefixed(&buf[at..])?;
    let host = std::str::from_utf8(host).ok()?.to_string();
    at += n;
    let (port, n) = get_varint(&buf[at..])?;
    if port > u16::MAX as u64 {
        return None;
    }
    at += n;
    let (http_port, n) = get_varint(&buf[at..])?;
    if http_port > u16::MAX as u64 {
        return None;
    }
    at += n;
    Some((
        NodeSpec { id: id as MachineId, host, port: port as u16, http_port: http_port as u16 },
        at,
    ))
}

/// Encode a run of events as the smallest equivalent payload: a plain
/// `Event` frame for a single event (byte-identical to the unbatched
/// wire), an `EventBatch` otherwise. Used by senders that hold the events
/// by reference and must not clone them just to build a `Frame` value.
pub fn encode_events_payload(events: &[WireEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * events.len().max(1));
    if let [only] = events {
        out.push(KIND_EVENT);
        put_wire_event(&mut out, only);
    } else {
        out.push(KIND_EVENT_BATCH);
        put_varint(&mut out, events.len() as u64);
        for ev in events {
            put_wire_event(&mut out, ev);
        }
    }
    out
}

impl Frame {
    /// Encode the payload (kind byte + fields), without the outer
    /// length/CRC header.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Frame::Hello { sender } => {
                out.push(KIND_HELLO);
                put_varint(&mut out, PROTOCOL_VERSION);
                put_varint(&mut out, *sender as u64);
            }
            Frame::Event(ev) => {
                out.push(KIND_EVENT);
                put_wire_event(&mut out, ev);
            }
            Frame::EventBatch(events) => {
                out.push(KIND_EVENT_BATCH);
                put_varint(&mut out, events.len() as u64);
                for ev in events {
                    put_wire_event(&mut out, ev);
                }
            }
            Frame::FailureReport { failed, epoch } => {
                out.push(KIND_FAILURE_REPORT);
                put_varint(&mut out, *failed as u64);
                put_varint(&mut out, *epoch);
            }
            Frame::FailureBroadcast { failed, epoch } => {
                out.push(KIND_FAILURE_BROADCAST);
                put_varint(&mut out, *failed as u64);
                put_varint(&mut out, *epoch);
            }
            Frame::Join { machine } => {
                out.push(KIND_JOIN);
                put_varint(&mut out, *machine as u64);
            }
            Frame::Membership(update) => {
                out.push(KIND_MEMBERSHIP);
                put_varint(&mut out, update.epoch);
                out.push(match update.phase {
                    MembershipPhase::Prepare => 0,
                    MembershipPhase::Commit => 1,
                    MembershipPhase::Abort => 2,
                });
                put_varint(&mut out, update.joined.len() as u64);
                for &id in &update.joined {
                    put_varint(&mut out, id as u64);
                }
                put_varint(&mut out, update.members.len() as u64);
                for &id in &update.members {
                    put_varint(&mut out, id as u64);
                }
                put_varint(&mut out, update.nodes.len() as u64);
                for node in &update.nodes {
                    put_node_spec(&mut out, node);
                }
            }
            Frame::MembershipAck { epoch } => {
                out.push(KIND_MEMBERSHIP_ACK);
                put_varint(&mut out, *epoch);
            }
            Frame::MembershipNack { epoch } => {
                out.push(KIND_MEMBERSHIP_NACK);
                put_varint(&mut out, *epoch);
            }
            Frame::SlateGet { updater, key } => {
                out.push(KIND_SLATE_GET);
                put_len_prefixed(&mut out, updater.as_bytes());
                put_len_prefixed(&mut out, key);
            }
            Frame::SlateValue { value } => {
                out.push(KIND_SLATE_VALUE);
                put_opt_bytes(&mut out, value);
            }
            Frame::StorePut { updater, key, value, ttl_secs, now_us } => {
                out.push(KIND_STORE_PUT);
                put_len_prefixed(&mut out, updater.as_bytes());
                put_len_prefixed(&mut out, key);
                put_len_prefixed(&mut out, value);
                put_opt_varint(&mut out, *ttl_secs);
                put_varint(&mut out, *now_us);
            }
            Frame::StoreGet { updater, key, now_us } => {
                out.push(KIND_STORE_GET);
                put_len_prefixed(&mut out, updater.as_bytes());
                put_len_prefixed(&mut out, key);
                put_varint(&mut out, *now_us);
            }
            Frame::StoreValue { value } => {
                out.push(KIND_STORE_VALUE);
                put_opt_bytes(&mut out, value);
            }
            Frame::StoreAck => out.push(KIND_STORE_ACK),
            Frame::StorePutBatch { items, now_us } => {
                out.push(KIND_STORE_PUT_BATCH);
                put_varint(&mut out, items.len() as u64);
                for item in items {
                    put_len_prefixed(&mut out, item.updater.as_bytes());
                    put_len_prefixed(&mut out, &item.key);
                    put_len_prefixed(&mut out, &item.value);
                    put_opt_varint(&mut out, item.ttl_secs);
                }
                put_varint(&mut out, *now_us);
            }
            Frame::StoreAckBatch { ok } => {
                out.push(KIND_STORE_ACK_BATCH);
                put_varint(&mut out, ok.len() as u64);
                for &b in ok {
                    out.push(u8::from(b));
                }
            }
            Frame::StoreGetBatch { items, now_us } => {
                out.push(KIND_STORE_GET_BATCH);
                put_varint(&mut out, items.len() as u64);
                for item in items {
                    put_len_prefixed(&mut out, item.updater.as_bytes());
                    put_len_prefixed(&mut out, &item.key);
                }
                put_varint(&mut out, *now_us);
            }
            Frame::StoreValueBatch { values } => {
                out.push(KIND_STORE_VALUE_BATCH);
                put_varint(&mut out, values.len() as u64);
                for value in values {
                    put_opt_bytes(&mut out, value);
                }
            }
            Frame::Reintroduce { machine } => {
                out.push(KIND_REINTRODUCE);
                put_varint(&mut out, *machine as u64);
            }
            Frame::ReintroduceAck { epoch } => {
                out.push(KIND_REINTRODUCE_ACK);
                put_varint(&mut out, *epoch);
            }
        }
        out
    }

    /// Decode a payload produced by [`Frame::encode_payload`]. `None` on
    /// malformed input.
    pub fn decode_payload(buf: &[u8]) -> Option<Frame> {
        let kind = *buf.first()?;
        let rest = &buf[1..];
        let frame = match kind {
            KIND_HELLO => {
                let (version, n) = get_varint(rest)?;
                if version != PROTOCOL_VERSION {
                    return None;
                }
                let (sender, m) = get_varint(&rest[n..])?;
                expect_consumed(rest, n + m)?;
                Frame::Hello { sender: sender as MachineId }
            }
            KIND_EVENT => {
                let (ev, n) = get_wire_event(rest)?;
                expect_consumed(rest, n)?;
                Frame::Event(ev)
            }
            KIND_EVENT_BATCH => {
                let (count, mut at) = get_varint(rest)?;
                // Cap the pre-allocation by what the buffer could possibly
                // hold: a corrupt count must not trigger a huge reserve.
                let possible = rest.len() / MIN_WIRE_EVENT_BYTES + 1;
                let mut events = Vec::with_capacity((count as usize).min(possible));
                for _ in 0..count {
                    let (ev, n) = get_wire_event(&rest[at..])?;
                    at += n;
                    events.push(ev);
                }
                expect_consumed(rest, at)?;
                Frame::EventBatch(events)
            }
            KIND_FAILURE_REPORT => {
                let (failed, n) = get_varint(rest)?;
                let (epoch, m) = get_varint(&rest[n..])?;
                expect_consumed(rest, n + m)?;
                Frame::FailureReport { failed: failed as MachineId, epoch }
            }
            KIND_FAILURE_BROADCAST => {
                let (failed, n) = get_varint(rest)?;
                let (epoch, m) = get_varint(&rest[n..])?;
                expect_consumed(rest, n + m)?;
                Frame::FailureBroadcast { failed: failed as MachineId, epoch }
            }
            KIND_JOIN => {
                let (machine, n) = get_varint(rest)?;
                expect_consumed(rest, n)?;
                Frame::Join { machine: machine as MachineId }
            }
            KIND_MEMBERSHIP => {
                let mut at = 0;
                let (epoch, n) = get_varint(rest)?;
                at += n;
                let phase = match *rest.get(at)? {
                    0 => MembershipPhase::Prepare,
                    1 => MembershipPhase::Commit,
                    2 => MembershipPhase::Abort,
                    _ => return None,
                };
                at += 1;
                let (joined_count, n) = get_varint(&rest[at..])?;
                at += n;
                // Cap pre-allocations by what the buffer could hold (one
                // byte per varint at minimum) — a corrupt count must not
                // trigger a huge reserve.
                let possible = rest.len() + 1;
                let mut joined = Vec::with_capacity((joined_count as usize).min(possible));
                for _ in 0..joined_count {
                    let (id, n) = get_varint(&rest[at..])?;
                    at += n;
                    joined.push(id as MachineId);
                }
                let (member_count, n) = get_varint(&rest[at..])?;
                at += n;
                let mut members = Vec::with_capacity((member_count as usize).min(possible));
                for _ in 0..member_count {
                    let (id, n) = get_varint(&rest[at..])?;
                    at += n;
                    members.push(id as MachineId);
                }
                let (node_count, n) = get_varint(&rest[at..])?;
                at += n;
                let possible = rest.len() / 4 + 1;
                let mut nodes = Vec::with_capacity((node_count as usize).min(possible));
                for _ in 0..node_count {
                    let (node, n) = get_node_spec(&rest[at..])?;
                    at += n;
                    nodes.push(node);
                }
                expect_consumed(rest, at)?;
                Frame::Membership(MembershipUpdate { epoch, phase, joined, members, nodes })
            }
            KIND_MEMBERSHIP_ACK => {
                let (epoch, n) = get_varint(rest)?;
                expect_consumed(rest, n)?;
                Frame::MembershipAck { epoch }
            }
            KIND_MEMBERSHIP_NACK => {
                let (epoch, n) = get_varint(rest)?;
                expect_consumed(rest, n)?;
                Frame::MembershipNack { epoch }
            }
            KIND_SLATE_GET => {
                let (updater, n) = get_len_prefixed(rest)?;
                let (key, m) = get_len_prefixed(&rest[n..])?;
                expect_consumed(rest, n + m)?;
                Frame::SlateGet {
                    updater: std::str::from_utf8(updater).ok()?.to_string(),
                    key: key.to_vec(),
                }
            }
            KIND_SLATE_VALUE => {
                let (value, n) = get_opt_bytes(rest)?;
                expect_consumed(rest, n)?;
                Frame::SlateValue { value }
            }
            KIND_STORE_PUT => {
                let mut at = 0;
                let (updater, n) = get_len_prefixed(rest)?;
                let updater = std::str::from_utf8(updater).ok()?.to_string();
                at += n;
                let (key, n) = get_len_prefixed(&rest[at..])?;
                let key = key.to_vec();
                at += n;
                let (value, n) = get_len_prefixed(&rest[at..])?;
                let value = value.to_vec();
                at += n;
                let (ttl_secs, n) = get_opt_varint(&rest[at..])?;
                at += n;
                let (now_us, n) = get_varint(&rest[at..])?;
                at += n;
                expect_consumed(rest, at)?;
                Frame::StorePut { updater, key, value, ttl_secs, now_us }
            }
            KIND_STORE_GET => {
                let mut at = 0;
                let (updater, n) = get_len_prefixed(rest)?;
                let updater = std::str::from_utf8(updater).ok()?.to_string();
                at += n;
                let (key, n) = get_len_prefixed(&rest[at..])?;
                let key = key.to_vec();
                at += n;
                let (now_us, n) = get_varint(&rest[at..])?;
                at += n;
                expect_consumed(rest, at)?;
                Frame::StoreGet { updater, key, now_us }
            }
            KIND_STORE_VALUE => {
                let (value, n) = get_opt_bytes(rest)?;
                expect_consumed(rest, n)?;
                Frame::StoreValue { value }
            }
            KIND_STORE_ACK => {
                expect_consumed(rest, 0)?;
                Frame::StoreAck
            }
            KIND_STORE_PUT_BATCH => {
                let (count, mut at) = get_varint(rest)?;
                // Cap the pre-allocation by what the buffer could possibly
                // hold (≥4 bytes per item: three length prefixes + the ttl
                // tag) — a corrupt count must not trigger a huge reserve.
                let possible = rest.len() / 4 + 1;
                let mut items = Vec::with_capacity((count as usize).min(possible));
                for _ in 0..count {
                    let (updater, n) = get_len_prefixed(&rest[at..])?;
                    let updater = std::str::from_utf8(updater).ok()?.to_string();
                    at += n;
                    let (key, n) = get_len_prefixed(&rest[at..])?;
                    let key = key.to_vec();
                    at += n;
                    let (value, n) = get_len_prefixed(&rest[at..])?;
                    let value = Bytes::copy_from_slice(value);
                    at += n;
                    let (ttl_secs, n) = get_opt_varint(&rest[at..])?;
                    at += n;
                    items.push(StorePutItem { updater, key, value, ttl_secs });
                }
                let (now_us, n) = get_varint(&rest[at..])?;
                at += n;
                expect_consumed(rest, at)?;
                Frame::StorePutBatch { items, now_us }
            }
            KIND_STORE_ACK_BATCH => {
                let (count, mut at) = get_varint(rest)?;
                let possible = rest.len() + 1;
                let mut ok = Vec::with_capacity((count as usize).min(possible));
                for _ in 0..count {
                    match *rest.get(at)? {
                        0 => ok.push(false),
                        1 => ok.push(true),
                        _ => return None,
                    }
                    at += 1;
                }
                expect_consumed(rest, at)?;
                Frame::StoreAckBatch { ok }
            }
            KIND_STORE_GET_BATCH => {
                let (count, mut at) = get_varint(rest)?;
                let possible = rest.len() / 2 + 1;
                let mut items = Vec::with_capacity((count as usize).min(possible));
                for _ in 0..count {
                    let (updater, n) = get_len_prefixed(&rest[at..])?;
                    let updater = std::str::from_utf8(updater).ok()?.to_string();
                    at += n;
                    let (key, n) = get_len_prefixed(&rest[at..])?;
                    let key = key.to_vec();
                    at += n;
                    items.push(StoreGetItem { updater, key });
                }
                let (now_us, n) = get_varint(&rest[at..])?;
                at += n;
                expect_consumed(rest, at)?;
                Frame::StoreGetBatch { items, now_us }
            }
            KIND_STORE_VALUE_BATCH => {
                let (count, mut at) = get_varint(rest)?;
                let possible = rest.len() + 1;
                let mut values = Vec::with_capacity((count as usize).min(possible));
                for _ in 0..count {
                    let (value, n) = get_opt_bytes(&rest[at..])?;
                    at += n;
                    values.push(value);
                }
                expect_consumed(rest, at)?;
                Frame::StoreValueBatch { values }
            }
            KIND_REINTRODUCE => {
                let (machine, n) = get_varint(rest)?;
                expect_consumed(rest, n)?;
                Frame::Reintroduce { machine: machine as usize }
            }
            KIND_REINTRODUCE_ACK => {
                let (epoch, n) = get_varint(rest)?;
                expect_consumed(rest, n)?;
                Frame::ReintroduceAck { epoch }
            }
            _ => return None,
        };
        Some(frame)
    }

    /// Write one complete frame (header + payload) to `w`. Errors with
    /// `InvalidData` on payloads over [`MAX_FRAME_BYTES`] — receivers
    /// would reject (and kill the connection over) anything larger, so
    /// surfacing it at the sender keeps the failure deterministic instead
    /// of looking like a dead peer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_payload(w, &self.encode_payload())
    }

    /// Read one complete frame from `r`. Errors with `InvalidData` on
    /// oversized lengths, CRC mismatches, or undecodable payloads.
    pub fn read_from(r: &mut impl Read) -> io::Result<Frame> {
        let mut head = [0u8; 8];
        r.read_exact(&mut head)?;
        // lint: allow(no-unwrap-in-prod) — 8-byte header array, offsets statically in bounds
        let len = codec::get_u32(&head, 0).expect("fixed header") as usize;
        // lint: allow(no-unwrap-in-prod) — 8-byte header array, offsets statically in bounds
        let crc = codec::get_u32(&head, 4).expect("fixed header");
        if len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds limit"),
            ));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        if codec::crc32c(&payload) != crc {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame CRC mismatch"));
        }
        Frame::decode_payload(&payload)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "undecodable frame payload"))
    }
}

/// Write an already-encoded payload with the frame header. Shared by
/// [`Frame::write_to`] and callers that pre-encode (e.g. to size-check
/// before touching the socket).
pub fn write_payload(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit", payload.len()),
        ));
    }
    let mut head = Vec::with_capacity(8 + payload.len());
    codec::put_u32(&mut head, payload.len() as u32);
    codec::put_u32(&mut head, codec::crc32c(payload));
    head.extend_from_slice(payload);
    w.write_all(&head)
}

fn expect_consumed(buf: &[u8], consumed: usize) -> Option<()> {
    if consumed == buf.len() {
        Some(())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::event::Key;

    fn sample_wire_event(seq: u64) -> WireEvent {
        let mut event = Event::new("S1", 99, Key::from("walmart"), b"checkin".to_vec());
        event.seq = seq;
        WireEvent {
            op: 4,
            event,
            injected_us: 123,
            redirected: true,
            external: false,
            thread_hint: Some(7),
            forwards: 3,
        }
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { sender: 2 },
            Frame::Event(sample_wire_event(3)),
            Frame::EventBatch(Vec::new()),
            Frame::EventBatch(vec![
                sample_wire_event(1),
                sample_wire_event(2),
                WireEvent {
                    op: 0,
                    event: Event::new("S2", 7, Key::from(""), Vec::new()),
                    injected_us: 0,
                    redirected: false,
                    external: true,
                    thread_hint: None,
                    forwards: 0,
                },
            ]),
            Frame::FailureReport { failed: 1, epoch: 4 },
            Frame::FailureBroadcast { failed: 0, epoch: 0 },
            Frame::Join { machine: 3 },
            Frame::Membership(MembershipUpdate {
                epoch: 2,
                phase: MembershipPhase::Prepare,
                joined: vec![3],
                members: vec![0, 1, 2, 3],
                nodes: vec![
                    NodeSpec { id: 0, host: "127.0.0.1".into(), port: 9100, http_port: 8100 },
                    NodeSpec { id: 3, host: "10.0.0.7".into(), port: 9103, http_port: 0 },
                ],
            }),
            Frame::Membership(MembershipUpdate {
                epoch: 5,
                phase: MembershipPhase::Commit,
                joined: Vec::new(),
                members: Vec::new(),
                nodes: Vec::new(),
            }),
            Frame::Membership(MembershipUpdate {
                epoch: 6,
                phase: MembershipPhase::Abort,
                joined: vec![4],
                members: Vec::new(),
                nodes: Vec::new(),
            }),
            Frame::MembershipAck { epoch: 2 },
            Frame::MembershipNack { epoch: 9 },
            Frame::SlateGet { updater: "counter".into(), key: b"best-buy".to_vec() },
            Frame::SlateValue { value: Some(b"42".to_vec()) },
            Frame::SlateValue { value: None },
            Frame::StorePut {
                updater: "counter".into(),
                key: b"k".to_vec(),
                value: vec![0, 1, 2],
                ttl_secs: Some(60),
                now_us: 1_000,
            },
            Frame::StoreGet { updater: "counter".into(), key: b"k".to_vec(), now_us: 5 },
            Frame::StoreValue { value: Some(vec![9]) },
            Frame::StoreAck,
            Frame::StorePutBatch { items: Vec::new(), now_us: 0 },
            Frame::StorePutBatch {
                items: vec![
                    StorePutItem {
                        updater: "counter".into(),
                        key: b"walmart".to_vec(),
                        value: Bytes::from_static(b"42"),
                        ttl_secs: Some(60),
                    },
                    StorePutItem {
                        updater: "topics".into(),
                        key: Vec::new(),
                        value: Bytes::new(),
                        ttl_secs: None,
                    },
                ],
                now_us: 9_000,
            },
            Frame::StoreAckBatch { ok: vec![true, false, true] },
            Frame::StoreAckBatch { ok: Vec::new() },
            Frame::StoreGetBatch {
                items: vec![
                    StoreGetItem { updater: "counter".into(), key: b"a".to_vec() },
                    StoreGetItem { updater: "counter".into(), key: b"b".to_vec() },
                ],
                now_us: 77,
            },
            Frame::StoreValueBatch { values: vec![Some(vec![1, 2]), None] },
            Frame::Reintroduce { machine: 3 },
            Frame::ReintroduceAck { epoch: 9 },
        ]
    }

    #[test]
    fn payload_roundtrip_every_kind() {
        for frame in sample_frames() {
            let payload = frame.encode_payload();
            assert_eq!(Frame::decode_payload(&payload), Some(frame.clone()), "{frame:?}");
        }
    }

    #[test]
    fn stream_roundtrip_through_io() {
        let mut buf = Vec::new();
        for frame in sample_frames() {
            frame.write_to(&mut buf).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for frame in sample_frames() {
            assert_eq!(Frame::read_from(&mut cursor).unwrap(), frame);
        }
    }

    #[test]
    fn forwards_roundtrip_and_saturate_on_the_wire() {
        let mut ev = sample_wire_event(1);
        ev.forwards = MAX_FORWARDS + 5; // encodes saturated, not wrapped
        let payload = Frame::Event(ev).encode_payload();
        match Frame::decode_payload(&payload) {
            Some(Frame::Event(back)) => assert_eq!(back.forwards, MAX_FORWARDS),
            other => panic!("expected an Event frame, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        Frame::FailureReport { failed: 3, epoch: 1 }.write_to(&mut buf).unwrap();
        // Flip a payload bit: CRC must catch it.
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = Frame::read_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_and_truncated_frames_error() {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, (MAX_FRAME_BYTES + 1) as u32);
        codec::put_u32(&mut buf, 0);
        assert!(Frame::read_from(&mut std::io::Cursor::new(buf)).is_err());

        let mut ok = Vec::new();
        Frame::StoreAck.write_to(&mut ok).unwrap();
        ok.truncate(ok.len() - 1);
        assert!(Frame::read_from(&mut std::io::Cursor::new(ok)).is_err());
    }

    #[test]
    fn trailing_garbage_in_payload_rejected() {
        let mut payload = Frame::StoreAck.encode_payload();
        payload.push(0xde);
        assert_eq!(Frame::decode_payload(&payload), None);
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(Frame::decode_payload(&[200]), None);
        assert_eq!(Frame::decode_payload(&[]), None);
    }

    #[test]
    fn encode_events_payload_matches_frame_encoding() {
        let one = [sample_wire_event(5)];
        assert_eq!(
            encode_events_payload(&one),
            Frame::Event(one[0].clone()).encode_payload(),
            "a single event must be byte-identical to the unbatched wire"
        );
        let many = vec![sample_wire_event(1), sample_wire_event(2)];
        assert_eq!(encode_events_payload(&many), Frame::EventBatch(many.clone()).encode_payload());
    }

    #[test]
    fn corrupt_batch_count_is_rejected_without_huge_allocation() {
        // A batch claiming u64::MAX events with a near-empty body must
        // fail cleanly (the per-event decode runs out of bytes) and the
        // pre-allocation is capped by the buffer length.
        let mut payload = vec![KIND_EVENT_BATCH];
        put_varint(&mut payload, u64::MAX);
        assert_eq!(Frame::decode_payload(&payload), None);
    }
}
