//! Storage device model.
//!
//! §4.2 argues at length for running the slate store on SSDs: cold-cache
//! startup floods the store with random reads, compaction competes for I/O,
//! and write buffering only pays off if the device can absorb the flush
//! bursts. We don't have the authors' hardware, so the device is a
//! *service-time model*: every logical read/write debits a configurable
//! latency (busy-waited so benchmark wall-clock shows the effect) and bumps
//! I/O counters. A zero-latency profile makes the model free for unit tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Per-operation service times, in microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Human-readable name ("ssd", "hdd", "null").
    pub name: &'static str,
    /// Latency of one random read (seek + transfer start).
    pub read_latency_us: u64,
    /// Latency of one write (into the device write buffer).
    pub write_latency_us: u64,
    /// Additional cost per 4 KiB transferred.
    pub per_4k_us: u64,
}

impl DeviceProfile {
    /// Free device for unit tests: counts I/O, costs nothing.
    pub const NULL: DeviceProfile =
        DeviceProfile { name: "null", read_latency_us: 0, write_latency_us: 0, per_4k_us: 0 };

    /// Flash storage: ~100 µs random read, cheap writes (buffered).
    pub const SSD: DeviceProfile =
        DeviceProfile { name: "ssd", read_latency_us: 100, write_latency_us: 20, per_4k_us: 10 };

    /// Spinning disk: ~8 ms seek per random read.
    pub const HDD: DeviceProfile =
        DeviceProfile { name: "hdd", read_latency_us: 8_000, write_latency_us: 500, per_4k_us: 50 };
}

/// Cumulative I/O counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Logical read operations.
    pub reads: u64,
    /// Logical write operations.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Total simulated service time charged, microseconds.
    pub service_us: u64,
}

/// A shared storage device: charge service time, count I/O.
#[derive(Debug)]
pub struct StorageDevice {
    profile: DeviceProfile,
    reads: AtomicU64,
    writes: AtomicU64,
    read_bytes: AtomicU64,
    write_bytes: AtomicU64,
    service_us: AtomicU64,
}

impl StorageDevice {
    /// Build a device with the given profile.
    pub fn new(profile: DeviceProfile) -> Self {
        StorageDevice {
            profile,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            read_bytes: AtomicU64::new(0),
            write_bytes: AtomicU64::new(0),
            service_us: AtomicU64::new(0),
        }
    }

    /// The device profile.
    pub fn profile(&self) -> DeviceProfile {
        self.profile
    }

    /// Charge one random read of `bytes`.
    pub fn charge_read(&self, bytes: usize) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.read_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let us = self.profile.read_latency_us + self.transfer_cost(bytes);
        self.spend(us);
    }

    /// Charge one write of `bytes`.
    pub fn charge_write(&self, bytes: usize) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.write_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let us = self.profile.write_latency_us + self.transfer_cost(bytes);
        self.spend(us);
    }

    fn transfer_cost(&self, bytes: usize) -> u64 {
        (bytes as u64).div_ceil(4096) * self.profile.per_4k_us
    }

    fn spend(&self, us: u64) {
        self.service_us.fetch_add(us, Ordering::Relaxed);
        if us == 0 {
            return;
        }
        if us >= 1000 {
            std::thread::sleep(Duration::from_micros(us));
        } else {
            // Sub-millisecond sleeps are unreliable; busy-wait for fidelity.
            let deadline = Instant::now() + Duration::from_micros(us);
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
            service_us: self.service_us.load(Ordering::Relaxed),
        }
    }

    /// Zero the counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.read_bytes.store(0, Ordering::Relaxed);
        self.write_bytes.store(0, Ordering::Relaxed);
        self.service_us.store(0, Ordering::Relaxed);
    }
}

impl Default for StorageDevice {
    fn default() -> Self {
        StorageDevice::new(DeviceProfile::NULL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_device_counts_without_cost() {
        let d = StorageDevice::new(DeviceProfile::NULL);
        let t0 = Instant::now();
        d.charge_read(8192);
        d.charge_write(100);
        assert!(t0.elapsed() < Duration::from_millis(5));
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.read_bytes, 8192);
        assert_eq!(s.write_bytes, 100);
        assert_eq!(s.service_us, 0);
    }

    #[test]
    fn hdd_reads_cost_more_than_ssd() {
        let ssd = StorageDevice::new(DeviceProfile::SSD);
        let hdd = StorageDevice::new(DeviceProfile::HDD);
        ssd.charge_read(4096);
        hdd.charge_read(4096);
        assert!(hdd.stats().service_us > ssd.stats().service_us * 10);
    }

    #[test]
    fn transfer_cost_scales_with_size() {
        let d = StorageDevice::new(DeviceProfile::SSD);
        d.charge_read(4096);
        let small = d.stats().service_us;
        d.reset_stats();
        d.charge_read(64 * 1024);
        let large = d.stats().service_us;
        assert!(large > small, "{large} vs {small}");
    }

    #[test]
    fn reset_clears_counters() {
        let d = StorageDevice::default();
        d.charge_write(1);
        d.reset_stats();
        assert_eq!(d.stats(), IoStats::default());
    }

    #[test]
    fn hdd_read_actually_waits() {
        let d = StorageDevice::new(DeviceProfile::HDD);
        let t0 = Instant::now();
        d.charge_read(4096);
        assert!(t0.elapsed() >= Duration::from_millis(7), "HDD seek should take ~8ms");
    }
}
