//! Bounded worker queues.
//!
//! "Each worker has its own queue for input events" (§4.1), with a
//! pre-specified size limit whose overflow triggers the §4.3 mechanisms.
//! `push` never blocks (the *sender* decides what to do on overflow —
//! that's the overflow policy's job); `pop_timeout` parks the worker thread
//! until an event or a shutdown check is due.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use muppet_core::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

/// A bounded MPSC-style queue (any thread may push; one worker pops).
#[derive(Debug)]
pub struct EventQueue<T> {
    inner: Mutex<VecDeque<T>>,
    nonempty: Condvar,
    capacity: usize,
    len_hint: AtomicUsize,
    /// Peak occupancy (the §4.5 status endpoint reports largest queues).
    high_water: AtomicUsize,
}

impl<T> EventQueue<T> {
    /// A queue refusing pushes beyond `capacity` (unless forced).
    pub fn new(capacity: usize) -> Self {
        EventQueue {
            inner: Mutex::new(VecDeque::new()),
            nonempty: Condvar::new(),
            capacity,
            len_hint: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Push respecting the capacity limit.
    pub fn push(&self, item: T) -> Result<(), QueueFull> {
        let mut q = self.inner.lock();
        if q.len() >= self.capacity {
            return Err(QueueFull);
        }
        q.push_back(item);
        let len = q.len();
        drop(q);
        self.after_push(len);
        Ok(())
    }

    /// Push ignoring the capacity limit — used by source-throttling mode
    /// for *internal* events, which must never block or drop (blocking
    /// mid-workflow deadlocks cyclic apps, §5).
    pub fn force_push(&self, item: T) {
        let mut q = self.inner.lock();
        q.push_back(item);
        let len = q.len();
        drop(q);
        self.after_push(len);
    }

    fn after_push(&self, len: usize) {
        self.len_hint.store(len, Ordering::Relaxed);
        self.high_water.fetch_max(len, Ordering::Relaxed);
        self.nonempty.notify_one();
    }

    /// Pop, waiting up to `timeout`. `None` on timeout.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut q = self.inner.lock();
        if q.is_empty() {
            self.nonempty.wait_for(&mut q, timeout);
        }
        let item = q.pop_front();
        self.len_hint.store(q.len(), Ordering::Relaxed);
        item
    }

    /// Pop up to `max` items in one lock acquisition, appending to `out`;
    /// waits up to `timeout` when the queue is empty. Returns the number
    /// of items popped (0 on timeout). This is the batch-drain fast path:
    /// a worker amortizes the mutex + condvar round-trip over a whole run
    /// of queued events instead of paying it per event. No added latency —
    /// the call returns whatever is queued, it never waits to fill `max`.
    pub fn pop_many(&self, out: &mut Vec<T>, max: usize, timeout: Duration) -> usize {
        if max == 0 {
            return 0;
        }
        let mut q = self.inner.lock();
        if q.is_empty() {
            self.nonempty.wait_for(&mut q, timeout);
        }
        let n = q.len().min(max);
        out.extend(q.drain(..n));
        self.len_hint.store(q.len(), Ordering::Relaxed);
        n
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut q = self.inner.lock();
        let item = q.pop_front();
        self.len_hint.store(q.len(), Ordering::Relaxed);
        item
    }

    /// Cheap (racy) length estimate for dispatch decisions — the two-choice
    /// dispatcher compares queue lengths without locking both queues.
    pub fn len_hint(&self) -> usize {
        self.len_hint.load(Ordering::Relaxed)
    }

    /// Exact current length.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Peak occupancy seen.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Remove and return everything (machine-crash simulation: "all events
    /// in its queue are also lost", §4.3).
    pub fn drain_all(&self) -> Vec<T> {
        let mut q = self.inner.lock();
        let items = q.drain(..).collect();
        self.len_hint.store(0, Ordering::Relaxed);
        items
    }

    /// Wake a parked worker (shutdown).
    pub fn notify(&self) {
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = EventQueue::new(10);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_is_enforced_for_push_only() {
        let q = EventQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(QueueFull));
        q.force_push(3); // throttling mode bypasses the cap
        assert_eq!(q.len(), 3);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn pop_timeout_waits_then_gives_up() {
        let q: EventQueue<u32> = EventQueue::new(4);
        let t0 = std::time::Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(30)), None);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn pop_timeout_wakes_on_push() {
        let q = Arc::new(EventQueue::new(4));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(42u32).unwrap();
        assert_eq!(waiter.join().unwrap(), Some(42));
    }

    #[test]
    fn pop_many_drains_up_to_max_in_order() {
        let q = EventQueue::new(100);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_many(&mut out, 4, Duration::from_millis(1)), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.len_hint(), 6);
        // Appends to the buffer; takes everything left when max exceeds it.
        assert_eq!(q.pop_many(&mut out, 100, Duration::from_millis(1)), 6);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
        // Empty queue: waits, then returns 0.
        let t0 = std::time::Instant::now();
        assert_eq!(q.pop_many(&mut out, 4, Duration::from_millis(20)), 0);
        assert!(t0.elapsed() >= Duration::from_millis(15));
        assert_eq!(q.pop_many(&mut out, 0, Duration::from_secs(5)), 0, "max=0 returns at once");
    }

    #[test]
    fn pop_many_wakes_on_push() {
        let q = Arc::new(EventQueue::new(8));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || {
            let mut out = Vec::new();
            let n = q2.pop_many(&mut out, 8, Duration::from_secs(5));
            (n, out)
        });
        std::thread::sleep(Duration::from_millis(20));
        q.push(7u32).unwrap();
        let (n, out) = waiter.join().unwrap();
        assert!(n >= 1);
        assert_eq!(out[0], 7);
    }

    #[test]
    fn high_water_tracks_peak() {
        let q = EventQueue::new(100);
        for i in 0..7 {
            q.push(i).unwrap();
        }
        for _ in 0..7 {
            q.try_pop();
        }
        assert_eq!(q.high_water(), 7);
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn drain_all_returns_everything() {
        let q = EventQueue::new(10);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let lost = q.drain_all();
        assert_eq!(lost, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn concurrent_pushers_one_popper() {
        let q = Arc::new(EventQueue::new(100_000));
        let mut handles = Vec::new();
        for t in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    q.push(t * 1000 + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = Vec::new();
        while let Some(v) = q.try_pop() {
            seen.push(v);
        }
        assert_eq!(seen.len(), 4000);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4000, "no duplicates, no losses");
    }
}
