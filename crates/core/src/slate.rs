//! Slates — the "memories" of update functions.
//!
//! A slate is the in-memory data structure that "summarizes all events with
//! key k that an update function U has seen so far" (§3). Each pair
//! ⟨updater, key⟩ uniquely determines a slate. Slates are:
//!
//! * updated in place by the updater on every event with the key;
//! * cached in the memory of the machine running the updater;
//! * persisted (compressed) to the key-value store at row `k`, column `U`;
//! * readable live over HTTP (§4.4);
//! * subject to a per-updater time-to-live after which they reset to empty.
//!
//! Following the paper's Java API (Figure 4), the canonical representation
//! is an opaque byte blob that the updater replaces wholesale
//! (`replaceSlate`). Convenience accessors cover the common encodings the
//! paper mentions: UTF-8 text counters and JSON objects.

use bytes::Bytes;

use crate::json::Json;

/// A slate: the per-⟨updater, key⟩ summary blob, plus bookkeeping the
/// runtime uses for cache/flush management.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Slate {
    data: Vec<u8>,
    /// Bumped on every mutation; lets caches detect dirtiness cheaply.
    version: u64,
}

impl Slate {
    /// A fresh, empty slate — what an updater receives "when [it] accesses a
    /// slate associated with a key k for the first time" (§3). The updater
    /// is responsible for initializing its variables.
    pub fn empty() -> Self {
        Slate::default()
    }

    /// Build a slate from raw bytes (e.g. loaded from the key-value store).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Slate { data, version: 0 }
    }

    /// True if no updater has written anything yet (or the slate expired).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw slate payload.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Byte length of the payload.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Payload as UTF-8 text, if valid. (Figure 4 stores a decimal counter
    /// as text.)
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.data).ok()
    }

    /// Decode the payload as JSON — "our applications often use JSON to
    /// encode slates for language independence and flexibility" (§4.2).
    pub fn as_json(&self) -> Option<Json> {
        if self.data.is_empty() {
            return None;
        }
        Json::parse(std::str::from_utf8(&self.data).ok()?).ok()
    }

    /// Replace the entire payload — the `replaceSlate` call of Figure 4.
    pub fn replace(&mut self, data: Vec<u8>) {
        self.data = data;
        self.version += 1;
    }

    /// Replace the payload with serialized JSON.
    pub fn replace_json(&mut self, value: &Json) {
        self.replace(value.to_string().into_bytes());
    }

    /// Reset to empty (TTL expiry / explicit deletion).
    pub fn clear(&mut self) {
        if !self.data.is_empty() {
            self.data.clear();
            self.version += 1;
        }
    }

    /// Monotone mutation counter; equal versions ⟹ byte-identical payloads
    /// for slates that share a lineage.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Clone the payload into a cheaply-shareable [`Bytes`] (used when
    /// handing the slate to the store writer thread).
    pub fn to_shared(&self) -> Bytes {
        Bytes::copy_from_slice(&self.data)
    }

    // --- typed counter helpers (the dominant slate shape in the paper's
    // examples: checkin counts, topic counts per minute) ---

    /// Read the payload as a decimal `u64` counter; 0 when empty/invalid
    /// (mirrors Figure 4's `NumberFormatException` fallback).
    pub fn counter(&self) -> u64 {
        self.as_str().and_then(|s| s.trim().parse().ok()).unwrap_or(0)
    }

    /// Increment the decimal counter payload by `delta` and return the new
    /// value.
    pub fn incr_counter(&mut self, delta: u64) -> u64 {
        let next = self.counter().saturating_add(delta);
        self.replace(next.to_string().into_bytes());
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_slate_is_empty() {
        let s = Slate::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.version(), 0);
        assert_eq!(s.counter(), 0);
        assert_eq!(s.as_json(), None);
    }

    #[test]
    fn replace_bumps_version() {
        let mut s = Slate::empty();
        s.replace(b"17".to_vec());
        assert_eq!(s.version(), 1);
        assert_eq!(s.as_str(), Some("17"));
        s.replace(b"18".to_vec());
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn counter_semantics_match_figure_4() {
        // Figure 4: parse failure ⟹ count = 0, then ++count.
        let mut s = Slate::from_bytes(b"not-a-number".to_vec());
        assert_eq!(s.counter(), 0);
        assert_eq!(s.incr_counter(1), 1);
        assert_eq!(s.incr_counter(1), 2);
        assert_eq!(s.as_str(), Some("2"));
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let mut s = Slate::from_bytes(u64::MAX.to_string().into_bytes());
        assert_eq!(s.incr_counter(5), u64::MAX);
    }

    #[test]
    fn json_roundtrip_through_slate() {
        let mut s = Slate::empty();
        let v = Json::parse(r#"{"count": 3, "days": 2}"#).unwrap();
        s.replace_json(&v);
        let back = s.as_json().unwrap();
        assert_eq!(back.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(back.get("days").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn clear_only_bumps_version_when_nonempty() {
        let mut s = Slate::empty();
        s.clear();
        assert_eq!(s.version(), 0);
        s.replace(b"x".to_vec());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn from_bytes_preserves_payload() {
        let s = Slate::from_bytes(vec![1, 2, 3]);
        assert_eq!(s.bytes(), &[1, 2, 3]);
        // Invalid UTF-8 payloads read as None:
        let t = Slate::from_bytes(vec![0xff, 0xfe]);
        assert_eq!(t.as_str(), None);
        assert_eq!(s.to_shared().as_ref(), &[1, 2, 3]);
    }
}
