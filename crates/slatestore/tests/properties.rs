//! Property-based tests for the slate store substrate.

use std::sync::Arc;

use muppet_slatestore::bloom::BloomFilter;
use muppet_slatestore::compress::{compress, decompress};
use muppet_slatestore::device::StorageDevice;
use muppet_slatestore::memtable::Memtable;
use muppet_slatestore::ring::ConsistentRing;
use muppet_slatestore::sstable::{SSTable, SSTableWriter};
use muppet_slatestore::types::{Cell, CellKey};
use muppet_slatestore::util::TempDir;
use proptest::prelude::*;

proptest! {
    // ---------- compression ----------

    #[test]
    fn compress_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = compress(&data);
        prop_assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn compress_roundtrips_repetitive_data(unit in proptest::collection::vec(any::<u8>(), 1..32),
                                           reps in 1usize..200) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let packed = compress(&data);
        prop_assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn compressed_size_is_bounded(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let packed = compress(&data);
        // Raw fallback bounds expansion: header is ≤ 13 bytes.
        prop_assert!(packed.len() <= data.len() + 13);
    }

    #[test]
    fn decompress_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decompress(&data);
    }

    // ---------- bloom ----------

    #[test]
    fn bloom_has_no_false_negatives(items in proptest::collection::hash_set("[a-z0-9]{1,16}", 1..200)) {
        let mut bf = BloomFilter::with_capacity(items.len(), 0.01);
        for item in &items {
            bf.insert(item.as_bytes());
        }
        for item in &items {
            prop_assert!(bf.may_contain(item.as_bytes()));
        }
        let back = BloomFilter::from_bytes(&bf.to_bytes()).unwrap();
        for item in &items {
            prop_assert!(back.may_contain(item.as_bytes()));
        }
    }

    // ---------- memtable vs model ----------

    #[test]
    fn memtable_equals_hashmap_model(ops in proptest::collection::vec(
        ("[a-d]", "[a-b]", any::<bool>(), 0u64..100), 0..100)) {
        let mut mt = Memtable::new();
        let mut model: std::collections::HashMap<(String, String), Cell> = Default::default();
        for (i, (row, col, tombstone, _)) in ops.iter().enumerate() {
            let cell = if *tombstone {
                Cell::tombstone(i as u64)
            } else {
                Cell::live(format!("v{i}"), i as u64, None)
            };
            mt.put(CellKey::new(row.as_str(), col.as_str()), cell.clone());
            model.insert((row.clone(), col.clone()), cell);
        }
        prop_assert_eq!(mt.len(), model.len());
        for ((row, col), cell) in &model {
            prop_assert_eq!(mt.get(&CellKey::new(row.as_str(), col.as_str())), Some(cell));
        }
        // Drain is sorted.
        let drained = mt.drain_sorted();
        for w in drained.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    // ---------- ring ----------

    #[test]
    fn ring_owner_survives_unrelated_removal(nodes in 3usize..10, dead in 0usize..10,
                                             hashes in proptest::collection::vec(any::<u64>(), 1..50)) {
        let dead = dead % nodes;
        let mut ring = ConsistentRing::new(nodes, 16);
        let before: Vec<usize> = hashes.iter().map(|&h| ring.owner(h).unwrap()).collect();
        ring.remove(dead);
        for (h, owner) in hashes.iter().zip(before) {
            let now = ring.owner(*h).unwrap();
            if owner != dead {
                prop_assert_eq!(now, owner, "only the dead node's keys may move");
            } else {
                prop_assert_ne!(now, dead);
            }
        }
    }

    #[test]
    fn ring_replica_sets_are_distinct(nodes in 1usize..8, rf in 1usize..8, h in any::<u64>()) {
        let ring = ConsistentRing::new(nodes, 16);
        let owners = ring.owners(h, rf);
        prop_assert_eq!(owners.len(), rf.min(nodes));
        let mut dedup = owners.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), owners.len());
    }
}

// SSTable write→read equivalence gets fewer cases (touches the filesystem).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sstable_read_equals_written(entries in proptest::collection::btree_map(
        ("[a-z]{1,12}", "[A-Z]{1,4}"),
        (proptest::collection::vec(any::<u8>(), 0..256), 0u64..1000, proptest::option::of(0u64..100)),
        1..100,
    )) {
        let dir = TempDir::new("prop-sst").unwrap();
        let device = Arc::new(StorageDevice::default());
        let mut w = SSTableWriter::create(dir.file("t.sst"), Arc::clone(&device), entries.len()).unwrap();
        let mut expected = Vec::new();
        for ((row, col), (value, ts, ttl)) in &entries {
            let key = CellKey::new(row.as_str(), col.as_str());
            let cell = Cell::live(value.clone(), *ts, *ttl);
            w.add(&key, &cell).unwrap();
            expected.push((key, cell));
        }
        let table = w.finish().unwrap();
        // Point reads find every entry.
        for (key, cell) in &expected {
            let got = table.get(key).unwrap().unwrap();
            prop_assert_eq!(&got, cell);
        }
        // Scan returns exactly the written set in order.
        let scanned = table.scan().unwrap();
        prop_assert_eq!(scanned, expected);
        // Reopen from disk and spot-check.
        let reopened = SSTable::open(dir.file("t.sst"), device).unwrap();
        prop_assert_eq!(reopened.entry_count() as usize, entries.len());
    }
}
