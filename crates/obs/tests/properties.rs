//! Property tests for the observability substrate: counter exactness
//! under concurrency, and heavy-hitter sketch accuracy on a Zipf stream
//! against exact counts.

use std::collections::HashMap;
use std::sync::Arc;

use muppet_obs::{Registry, SpaceSaving};
use muppet_workloads::zipf::Zipf;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The registry's counters are plain shared atomics: concurrent
    /// increments from any number of threads sum exactly — no sampling,
    /// no loss, no double counting.
    #[test]
    fn concurrent_increments_sum_exactly(
        per_thread in proptest::collection::vec(1u64..2_000, 2..8),
    ) {
        let reg = Registry::new();
        let counter = reg.counter("prop_events_total", "property-test counter");
        let handles: Vec<_> = per_thread
            .iter()
            .map(|&n| {
                let c = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..n {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(counter.get(), per_thread.iter().sum::<u64>());
        // The rendered exposition sees the same exact value.
        let text = reg.render();
        let parsed = muppet_obs::parse_exposition(&text).unwrap();
        let sample = parsed.iter().find(|s| s.name == "prop_events_total").unwrap();
        prop_assert_eq!(sample.value as u64, counter.get());
    }

    /// Labeled series are independent cells: concurrent traffic on one
    /// never bleeds into its siblings.
    #[test]
    fn labeled_series_stay_independent(a in 1u64..5_000, b in 1u64..5_000) {
        let reg = Arc::new(Registry::new());
        let ca = reg.counter_with("prop_ops_total", "", &[("op", "a")]);
        let cb = reg.counter_with("prop_ops_total", "", &[("op", "b")]);
        let ta = { let c = ca.clone(); std::thread::spawn(move || for _ in 0..a { c.inc() }) };
        let tb = { let c = cb.clone(); std::thread::spawn(move || for _ in 0..b { c.inc() }) };
        ta.join().unwrap();
        tb.join().unwrap();
        prop_assert_eq!(ca.get(), a);
        prop_assert_eq!(cb.get(), b);
    }

    /// Space-saving on a Zipf stream: every reported count is within the
    /// classic `N / m` bound of the exact count, never undercounts, and
    /// the guaranteed heavy hitters (true count > N / m) are all present.
    #[test]
    fn sketch_tracks_zipf_within_error_bound(
        seed in 0u64..1_000,
        skew in 8u32..20, // exponent = skew / 10 ∈ [0.8, 2.0)
        capacity in 16usize..64,
    ) {
        let n_events = 20_000u64;
        let universe = 5_000;
        let zipf = Zipf::new(universe, skew as f64 / 10.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sketch = SpaceSaving::new(capacity);
        let mut exact: HashMap<usize, u64> = HashMap::new();
        for _ in 0..n_events {
            let rank = zipf.sample(&mut rng);
            *exact.entry(rank).or_default() += 1;
            sketch.offer(rank);
        }
        prop_assert_eq!(sketch.offered(), n_events);
        let bound = sketch.error_bound();
        prop_assert_eq!(bound, n_events / capacity as u64);
        for hh in sketch.top(capacity) {
            let true_count = exact.get(&hh.key).copied().unwrap_or(0);
            // Never undercounts; overshoot within the sketch's own err,
            // which itself respects the global bound.
            prop_assert!(hh.count >= true_count,
                "key {} reported {} < true {}", hh.key, hh.count, true_count);
            prop_assert!(hh.count - true_count <= hh.err,
                "key {} overshoot {} exceeds tracked err {}",
                hh.key, hh.count - true_count, hh.err);
            prop_assert!(hh.err <= bound, "err {} above N/m bound {}", hh.err, bound);
        }
        // Completeness: every key with true count above N/m is tracked.
        for (key, &count) in &exact {
            if count > bound {
                prop_assert!(sketch.estimate(key).is_some(),
                    "guaranteed hitter {} (count {}) missing", key, count);
            }
        }
        // The sketch's top-1 matches the true hottest rank whenever the
        // stream is skewed enough for rank 0 to clear the error bound by
        // a margin (true separation beats worst-case overshoot).
        let (true_top, true_top_count) =
            exact.iter().map(|(k, v)| (*k, *v)).max_by_key(|&(_, v)| v).unwrap();
        let runner_up = exact
            .iter()
            .filter(|(k, _)| **k != true_top)
            .map(|(_, v)| *v)
            .max()
            .unwrap_or(0);
        if true_top_count > runner_up + bound {
            prop_assert_eq!(sketch.top(1)[0].key, true_top);
        }
    }
}
