//! Per-user reputation scoring (Example 3): the output is a live
//! ⟨user, score⟩ table maintained in updater slates while tweets stream
//! through a Muppet 2.0 cluster.
//!
//! ```sh
//! cargo run --example reputation_scores
//! ```

use std::time::Duration;

use muppet::apps::reputation::{self, ReputationMapper, ReputationScorer};
use muppet::prelude::*;
use muppet::workloads::tweets::TweetGenerator;

const EVENTS: usize = 30_000;
const USERS: usize = 500;

fn main() {
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 2,
        workers_per_machine: 4,
        ..EngineConfig::default()
    };
    let engine = Engine::start(
        reputation::workflow(),
        OperatorSet::new().mapper(ReputationMapper::new()).updater(ReputationScorer::new()),
        cfg,
        None,
    )
    .expect("engine starts");

    println!("streaming {EVENTS} synthetic tweets from {USERS} users...");
    let mut gen = TweetGenerator::new(99, USERS, 2_000.0);
    for ev in gen.take(reputation::TWEET_STREAM, EVENTS) {
        engine.submit(ev).expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(30)), "cluster drains");

    // Read the live table: sample the user space and rank by score.
    let mut table: Vec<(String, i64)> = (0..USERS)
        .filter_map(|i| {
            let user = format!("user-{i}");
            let bytes = engine.read_slate(reputation::SCORER, &Key::from(user.as_str()))?;
            let v = Json::parse_bytes(&bytes).ok()?;
            Some((user, v.get("score")?.as_i64()?))
        })
        .collect();
    table.sort_by_key(|row| std::cmp::Reverse(row.1));

    println!("\ntop 10 users by reputation (live slate table):");
    println!("{:<12} {:>8}", "user", "score");
    for (user, score) in table.iter().take(10) {
        println!("{user:<12} {score:>8}");
    }
    let total: i64 = table.iter().map(|(_, s)| s).sum();
    let stats = engine.shutdown();
    println!(
        "\n{} users scored, total points {total}; {} tweets → {} score deltas; p99 latency {}µs",
        table.len(),
        stats.submitted,
        stats.emitted,
        stats.latency.p99_us
    );
    // Zipf-skewed authorship: the most active user far outscores the median.
    assert!(table[0].1 > table[table.len() / 2].1, "skew shows in the table");
    println!("✓ live reputation table maintained under streaming load");
}
