//! The write-behind store pipeline end to end (DESIGN.md §9): a flush of
//! N dirty slates over the TCP store backend must cost O(N / flush_batch_max)
//! wire round trips, batched flushes must leave the store bit-identical
//! to per-slate flushes, and single-flight miss reads must return the
//! same values as naive per-miss reads.

use std::sync::{Arc, Weak};
use std::time::Duration;

use muppet::net::topology::Topology;
use muppet::net::transport::{ClusterHandler, MachineId, NetError, Transport};
use muppet::net::{StoreGetItem, StorePutItem, TcpTransport, WireEvent};
use muppet::prelude::*;
use muppet::runtime::cache::{SlateBackend, SlateCache};
use muppet::runtime::netstore::RemoteBackend;
use muppet_core::sync::Mutex;
use muppet_core::workflow::OpId;
use std::collections::HashMap;

/// Cell map: ⟨updater, key⟩ → value.
type StoreMap = HashMap<(String, Vec<u8>), Vec<u8>>;

/// The store-hosting side of the wire: a map store that group-commit
/// batches land on via `backend_store_many`, counting batched calls.
#[derive(Default)]
struct HostStore {
    data: Mutex<StoreMap>,
    store_calls: Mutex<u64>,
    batch_calls: Mutex<u64>,
}

impl ClusterHandler for HostStore {
    fn deliver_event(&self, dest: MachineId, _ev: WireEvent) -> Result<(), NetError> {
        Err(NetError::NoRoute(dest))
    }
    fn handle_failure_report(&self, _f: MachineId, _epoch: u64) {}
    fn handle_failure_broadcast(&self, _f: MachineId, _epoch: u64) {}
    fn read_local_slate(&self, _d: MachineId, _u: &str, _k: &[u8]) -> Option<Vec<u8>> {
        None
    }
    fn backend_store(
        &self,
        u: &str,
        k: &[u8],
        v: &[u8],
        _codec: muppet_core::Codec,
        _ttl: Option<u64>,
        _now: u64,
    ) {
        *self.store_calls.lock() += 1;
        self.data.lock().insert((u.to_string(), k.to_vec()), v.to_vec());
    }
    fn backend_load(&self, u: &str, k: &[u8], _now: u64) -> Option<Vec<u8>> {
        self.data.lock().get(&(u.to_string(), k.to_vec())).cloned()
    }
    fn backend_store_many(&self, items: &[StorePutItem], _now: u64) -> Vec<bool> {
        *self.batch_calls.lock() += 1;
        let mut data = self.data.lock();
        for item in items {
            data.insert((item.updater.clone(), item.key.clone()), item.value.to_vec());
        }
        vec![true; items.len()]
    }
    fn backend_load_many(&self, items: &[StoreGetItem], now: u64) -> Vec<Option<Vec<u8>>> {
        items.iter().map(|item| self.backend_load(&item.updater, &item.key, now)).collect()
    }
}

/// A cache on node 1 whose backend is the store service hosted on node 0,
/// reached over real TCP sockets.
fn remote_cache_pair(
    flush_batch_max: usize,
) -> (
    Arc<HostStore>,
    Arc<TcpTransport>,
    Arc<TcpTransport>,
    muppet::net::TcpListenerHandle,
    SlateCache,
) {
    let topology = Topology::loopback_ephemeral(2, false).expect("reserve ports");
    let host = TcpTransport::new(topology.clone(), 0).unwrap();
    let client = TcpTransport::new(topology, 1).unwrap();
    let store = Arc::new(HostStore::default());
    host.register(Arc::downgrade(&store) as Weak<dyn ClusterHandler>);
    let client_handler = Arc::new(HostStore::default());
    client.register(Arc::downgrade(&client_handler) as Weak<dyn ClusterHandler>);
    std::mem::forget(client_handler); // keep the Weak alive for the test
    let listener = host.start_listener().unwrap();
    let backend = RemoteBackend::new(Arc::clone(&client) as Arc<dyn Transport>, 0);
    let cache = SlateCache::with_shards(100_000, FlushPolicy::IntervalMs(50), Arc::new(backend), 8)
        .with_flush_batch(flush_batch_max);
    (store, host, client, listener, cache)
}

fn dirty_n(cache: &SlateCache, op: OpId, n: usize) {
    let name: Arc<str> = Arc::from("U1");
    for i in 0..n {
        let slot = cache.get_or_load(op, &name, &Key::from(format!("key-{i}")), None, i as u64);
        let mut state = slot.state.lock();
        state.slate.replace(format!("value-{i}").into_bytes());
        cache.note_write(&slot, &mut state, i as u64);
    }
}

#[test]
fn tcp_flush_round_trips_scale_with_the_batch_cap_not_the_dirty_set() {
    const N: usize = 200;
    const BATCH: usize = 32;
    let (store, _host, client, _listener, cache) = remote_cache_pair(BATCH);
    dirty_n(&cache, 0, N);
    assert_eq!(cache.dirty_count(), N as u64);

    let frames_before = client.stats().frames_sent.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(cache.flush_dirty(1_000), N as u64, "every dirty slate written");
    let frames =
        client.stats().frames_sent.load(std::sync::atomic::Ordering::Relaxed) - frames_before;

    // The acceptance criterion: N dirty slates at flush_batch_max = B
    // cost ⌈N/B⌉ store round trips, not N.
    let expected = (N as u64).div_ceil(BATCH as u64);
    assert_eq!(frames, expected, "one wire frame per flush batch (⌈{N}/{BATCH}⌉ = {expected})");
    assert_eq!(*store.batch_calls.lock(), expected, "the host saw batched calls only");
    assert_eq!(*store.store_calls.lock(), 0, "no per-slate StorePut fell through");
    assert_eq!(cache.dirty_count(), 0);
    let stats = cache.stats();
    assert_eq!(stats.flush_batches, expected);
    assert_eq!(stats.store_round_trips, expected + N as u64, "N miss loads + the flush batches");

    // Everything written is bit-exact, readable through the single and
    // batched read paths alike.
    for i in 0..N {
        assert_eq!(
            store.data.lock().get(&("U1".to_string(), format!("key-{i}").into_bytes())),
            Some(&format!("value-{i}").into_bytes())
        );
    }
    let gets: Vec<StoreGetItem> = (0..N)
        .map(|i| StoreGetItem { updater: "U1".into(), key: format!("key-{i}").into_bytes() })
        .collect();
    let values = client.store_get_many(0, gets, 2_000).unwrap();
    for (i, v) in values.iter().enumerate() {
        assert_eq!(v.as_deref(), Some(format!("value-{i}").as_bytes()), "batched read of key-{i}");
    }
}

#[test]
fn per_slate_and_batched_tcp_flushes_leave_identical_store_contents() {
    let run = |batch: usize| -> StoreMap {
        let (store, _host, _client, _listener, cache) = remote_cache_pair(batch);
        dirty_n(&cache, 0, 64);
        assert_eq!(cache.flush_dirty(500), 64);
        let contents = store.data.lock().clone();
        contents
    };
    let per_slate = run(1);
    let batched = run(64);
    assert_eq!(per_slate.len(), 64);
    assert_eq!(per_slate, batched, "batched flush ≡ per-slate flush, bit for bit");
}

#[test]
fn single_flight_reads_return_the_same_values_as_naive_reads() {
    // Persist a value set, then read it back two ways over TCP: a fresh
    // cache per key (naive: every miss loads) vs one shared cache hit by
    // 8 threads per key (single-flight: concurrent misses coalesce).
    let (store, _host, client, _listener, cache) = remote_cache_pair(16);
    let name: Arc<str> = Arc::from("U1");
    for i in 0..16 {
        store.data.lock().insert(
            ("U1".to_string(), format!("key-{i}").into_bytes()),
            format!("stored-{i}").into_bytes(),
        );
    }
    let backend = RemoteBackend::new(Arc::clone(&client) as Arc<dyn Transport>, 0);
    let naive: Vec<Option<Vec<u8>>> = (0..16)
        .map(|i| SlateBackend::load(&backend, "U1", &Key::from(format!("key-{i}")), 0))
        .collect();

    let cache = Arc::new(cache);
    for (i, expected) in naive.iter().enumerate() {
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let name = Arc::clone(&name);
                let key = Key::from(format!("key-{i}"));
                std::thread::spawn(move || cache.get_or_load(0, &name, &key, None, 1))
            })
            .collect();
        for t in threads {
            let slot = t.join().unwrap();
            let state = slot.state.lock();
            assert_eq!(
                &Some(state.slate.bytes().to_vec()),
                expected,
                "single-flight read of key-{i} must equal the naive read"
            );
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 16, "one leader load per key");
    assert!(
        stats.miss_coalesced > 0,
        "some of the 8×16 concurrent misses must have coalesced: {stats:?}"
    );
    assert_eq!(stats.store_loads, 16);
}

/// The engine-level contract: a TCP-backed engine with batching enabled
/// processes a keyed counting workload exactly, and its background
/// flusher reaches the remote store in batches.
#[test]
fn engine_over_tcp_store_host_flushes_in_batches_and_counts_exactly() {
    struct CountUpdater;
    impl Updater for CountUpdater {
        fn name(&self) -> &str {
            "counter"
        }
        fn update(&self, _ctx: &mut dyn Emitter, _event: &Event, slate: &mut Slate) {
            slate.incr_counter(1);
        }
    }
    let mut b = Workflow::builder("store-pipe");
    b.external_stream("S1");
    b.updater("counter", &["S1"]);
    let wf = b.build().unwrap();

    let topology = Topology::loopback_ephemeral(2, false).expect("reserve ports");
    let dir = tempdir();
    let store = Arc::new(
        StoreCluster::open(&dir, StoreConfig { nodes: 1, replication: 1, ..Default::default() })
            .unwrap(),
    );
    let mk = |local: usize, store: Option<Arc<StoreCluster>>| {
        let cfg = EngineConfig {
            machines: 2,
            workers_per_machine: 2,
            transport: TransportKind::Tcp { topology: topology.clone(), local },
            store_host: Some(0),
            flush: FlushPolicy::IntervalMs(20),
            flush_batch_max: 16,
            ..EngineConfig::default()
        };
        Engine::start(wf.clone(), OperatorSet::new().updater(CountUpdater), cfg, store).unwrap()
    };
    let host = mk(0, Some(Arc::clone(&store)));
    let worker = mk(1, None);

    for i in 0..600 {
        host.submit(Event::new("S1", i, Key::from(format!("k{}", i % 50)), b"x".to_vec())).unwrap();
    }
    assert!(host.drain(Duration::from_secs(60)), "ingest node drained");
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let processed = host.stats().processed + worker.stats().processed;
        if processed == 600 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "only {processed}/600 processed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Exactness: the 50 keys hold exactly 600 counts between them.
    let total: u64 = (0..50)
        .map(|i| {
            let key = Key::from(format!("k{i}"));
            let bytes = host
                .read_slate("counter", &key)
                .or_else(|| worker.read_slate("counter", &key))
                .unwrap_or_default();
            String::from_utf8_lossy(&bytes).trim().parse::<u64>().unwrap_or(0)
        })
        .sum();
    assert_eq!(total, 600, "batched write-behind must not change the counts");
    // Let the interval flusher run, then verify remote flushes batched:
    // the worker node's cache flushed over the wire with > 1 slate per
    // round trip (50 hot keys per tick at flush_batch_max = 16).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while worker.stats().store.flush_batches == 0 {
        assert!(std::time::Instant::now() < deadline, "worker flusher never ticked");
        std::thread::sleep(Duration::from_millis(20));
    }
    let wstats = worker.stats();
    assert!(
        wstats.store.flush_batch_largest > 1,
        "remote flushes must coalesce (largest batch {})",
        wstats.store.flush_batch_largest
    );
    let wflushed = wstats.cache.flush_writes;
    assert!(
        wstats.store.flush_batches < wflushed,
        "fewer store round trips than slates flushed ({} batches / {} writes)",
        wstats.store.flush_batches,
        wflushed
    );
    worker.shutdown();
    host.shutdown();
}

fn tempdir() -> std::path::PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "muppet-store-pipeline-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
