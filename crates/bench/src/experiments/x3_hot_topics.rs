//! X3 — Figure 1(c): the hot-topics pipeline flags planted bursts and
//! stays quiet on steady traffic.

use muppet_apps::hot_topics::{self, HotDetector, MinuteCounter, TopicMapper};
use muppet_core::json::Json;
use muppet_core::reference::ReferenceExecutor;
use muppet_core::time::{MICROS_PER_DAY, MICROS_PER_MIN};
use muppet_workloads::tweets::{PlantedBurst, TweetGenerator};

use crate::table::Table;
use crate::Scale;

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner("X3", "hot-topic detection on planted bursts", "Figure 1(c), Examples 2/5");
    let per_day = scale.events(40_000);

    let wf = hot_topics::workflow();
    let mut exec = ReferenceExecutor::new(&wf);
    exec.record_stream(hot_topics::HOT_STREAM);
    exec.register_mapper(TopicMapper::new());
    exec.register_updater(MinuteCounter::new());
    exec.register_updater(HotDetector::new(3.0));

    // Day 0: background "earthquake" trickle builds history.
    let mut day0 = TweetGenerator::new(70, 1_000, 40.0).with_burst(PlantedBurst {
        topic: "earthquake".into(),
        start_us: 0,
        end_us: MICROS_PER_DAY,
        boost: 0.5,
    });
    for ev in day0.take(hot_topics::TWEET_STREAM, per_day) {
        exec.push_external(hot_topics::TWEET_STREAM, ev);
    }
    // Day 1: burst in minute 1 (kept early so even quick-mode runs — which
    // cover less virtual time at 40 events/s — reach it).
    let burst_start = MICROS_PER_DAY + MICROS_PER_MIN;
    let mut day1 = TweetGenerator::new(71, 1_000, 40.0)
        .with_burst(PlantedBurst {
            topic: "earthquake".into(),
            start_us: burst_start,
            end_us: burst_start + MICROS_PER_MIN,
            boost: 9.0,
        })
        .starting_at(MICROS_PER_DAY);
    for ev in day1.take(hot_topics::TWEET_STREAM, per_day) {
        exec.push_external(hot_topics::TWEET_STREAM, ev);
    }
    exec.run_to_completion().expect("pipeline runs");

    let hot = exec.recorded(hot_topics::HOT_STREAM);
    let mut table = Table::new(["hot key (topic minute)", "count", "historical avg", "ratio"]);
    let mut planted_hits = 0usize;
    let mut false_alarms = 0usize;
    for ev in hot {
        let key = ev.key.as_str().unwrap_or("?");
        let payload = Json::parse_bytes(&ev.value).unwrap();
        let count = payload.get("count").and_then(Json::as_u64).unwrap_or(0);
        let avg = payload.get("avg").and_then(Json::as_f64).unwrap_or(0.0);
        table.row([
            key.to_string(),
            count.to_string(),
            format!("{avg:.1}"),
            format!("{:.1}×", count as f64 / avg.max(0.001)),
        ]);
        if key.starts_with("earthquake") {
            planted_hits += 1;
        } else {
            false_alarms += 1;
        }
    }
    table.print();
    println!(
        "\nshape check: planted burst minutes flagged = {planted_hits} (>0); \
         false alarms on organic topics = {false_alarms} (small)"
    );
    assert!(planted_hits > 0, "the planted burst must be detected");
}
