//! # muppet-bench — the experiment harness
//!
//! Regenerates every figure and quantified claim of the paper's evaluation
//! surface (the paper is an experience report: Figures 1–4 plus §4–§5's
//! operational claims; see DESIGN.md §4 for the full index).
//!
//! Run everything: `cargo run -p muppet-bench --release --bin experiments`
//! Run one:        `cargo run -p muppet-bench --release --bin experiments -- x5`
//! Quick mode:     `... -- all --quick` (smaller event counts)
//!
//! Criterion micro-benchmarks live under `benches/`.

pub mod experiments;
pub mod harness;
pub mod table;

/// All experiment ids in run order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "f1a", "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10", "x11", "x12", "x13", "x14",
    "x15", "x16", "x17", "x18", "x19", "x20", "x21", "x22", "x23",
];

/// Scale knob: `--quick` divides event counts for CI-speed runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Divide nominal event counts by this factor.
    pub divisor: usize,
}

impl Scale {
    /// Full-size experiments.
    pub const FULL: Scale = Scale { divisor: 1 };
    /// Reduced size for smoke runs.
    pub const QUICK: Scale = Scale { divisor: 10 };

    /// Scale an event count.
    pub fn events(&self, nominal: usize) -> usize {
        (nominal / self.divisor).max(100)
    }
}

/// Dispatch one experiment by id. Unknown ids return false.
pub fn run_experiment(id: &str, scale: Scale) -> bool {
    match id {
        "f1a" => experiments::f1a_workflow_graphs::run(scale),
        "x1" => experiments::x1_distributed_execution::run(scale),
        "x2" => experiments::x2_retailer_counts::run(scale),
        "x3" => experiments::x3_hot_topics::run(scale),
        "x4" => experiments::x4_scale_latency::run(scale),
        "x5" => experiments::x5_engine_generations::run(scale),
        "x6" => experiments::x6_cache_and_devices::run(scale),
        "x7" => experiments::x7_flush_policies::run(scale),
        "x8" => experiments::x8_quorum::run(scale),
        "x9" => experiments::x9_ttl_growth::run(scale),
        "x10" => experiments::x10_machine_failure::run(scale),
        "x11" => experiments::x11_overflow::run(scale),
        "x12" => experiments::x12_hotspot_splitting::run(scale),
        "x13" => experiments::x13_slate_sizes::run(scale),
        "x14" => experiments::x14_http_reads::run(scale),
        "x15" => experiments::x15_network_transport::run(scale),
        "x16" => experiments::x16_elasticity::run(scale),
        "x17" => experiments::x17_hot_path::run(scale),
        "x18" => experiments::x18_store_path::run(scale),
        "x19" => experiments::x19_observability::run(scale),
        "x20" => experiments::x20_crash_recovery::run(scale),
        "x21" => experiments::x21_lock_shim::run(scale),
        "x22" => experiments::x22_binary_codec::run(scale),
        "x23" => experiments::x23_hot_keys::run(scale),
        _ => return false,
    }
    true
}
