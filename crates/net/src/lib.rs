//! # muppet-net — the Muppet wire
//!
//! The seed reproduced §4's distribution *logic* over an in-process
//! simulated cluster; this crate supplies the missing wire. It defines:
//!
//! * [`transport::Transport`] — the cluster communication abstraction:
//!   direct worker→worker event passing (§4.1), the master failure channel
//!   (§4.3), and remote slate/store reads (§4.4);
//! * [`transport::InProcessTransport`] — the original synchronous queue
//!   hand-off, refactored behind the trait with identical semantics;
//! * [`tcp::TcpTransport`] — real TCP sockets with length-prefixed binary
//!   framing ([`frame`], reusing `muppet-core::codec`): per-peer batching
//!   senders that coalesce events into `EventBatch` frames under a
//!   size/age flush policy ([`tcp::BatchConfig`]) with bounded outboxes
//!   (backpressure, not buffering), connection pooling for
//!   request/response frames, and send-failure surfacing so the §4.3
//!   failure protocol triggers on actual connection errors — with every
//!   event of a failed batch accounted individually;
//! * [`topology::Topology`] — static cluster layout (TOML subset or peer
//!   list) for `muppetd` processes.
//!
//! The engine side plugs in via [`transport::ClusterHandler`]; see
//! `muppet-runtime::engine` and DESIGN.md §5.

pub mod frame;
pub mod tcp;
pub mod topology;
pub mod transport;

pub use frame::{
    Frame, MembershipPhase, MembershipUpdate, StoreGetItem, StorePutItem, WireEvent, MAX_FORWARDS,
};
pub use tcp::{BatchConfig, TcpListenerHandle, TcpStats, TcpTransport};
pub use topology::{NodeSpec, Topology};
pub use transport::{ClusterHandler, InProcessTransport, MachineId, NetError, Transport};
