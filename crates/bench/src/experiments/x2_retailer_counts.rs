//! X2 — Figure 1(b) + Figures 3–4: the retailer-counting application is
//! exact on both engine generations (vs. the generator's ground truth and
//! the reference executor).

use muppet_apps::retailer::{self, Counter, RetailerMapper};
use muppet_core::reference::ReferenceExecutor;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind, OperatorSet};
use muppet_runtime::overflow::OverflowPolicy;
use muppet_workloads::checkins::CheckinGenerator;

use crate::harness::read_counter;
use crate::table::Table;
use crate::Scale;

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X2",
        "retailer checkin counting is exact end-to-end",
        "Figure 1(b), Figures 3–4, Examples 1/4",
    );
    let n = scale.events(30_000);
    let mut gen = CheckinGenerator::new(42, 3_000, 5_000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, n);
    let truth = CheckinGenerator::expected_retailer_counts(&events);

    // Reference executor.
    let wf = retailer::workflow();
    let mut exec = ReferenceExecutor::new(&wf);
    exec.register_mapper(RetailerMapper::new());
    exec.register_updater(Counter::new());
    for ev in &events {
        exec.push_external(retailer::CHECKIN_STREAM, ev.clone());
    }
    exec.run_to_completion().expect("reference run");

    // Both engines, zero-loss config.
    let mut engine_counts = Vec::new();
    for kind in [EngineKind::Muppet1, EngineKind::Muppet2] {
        let cfg = EngineConfig {
            kind,
            machines: 2,
            workers_per_machine: 3,
            workers_per_op: 3,
            overflow: OverflowPolicy::SourceThrottle,
            ..EngineConfig::default()
        };
        let engine = Engine::start(
            retailer::workflow(),
            OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new()),
            cfg,
            None,
        )
        .expect("engine");
        for ev in &events {
            engine.submit(ev.clone()).expect("submit");
        }
        assert!(engine.drain(std::time::Duration::from_secs(120)));
        let counts: Vec<u64> =
            truth.keys().map(|r| read_counter(&engine, retailer::COUNTER, r)).collect();
        engine.shutdown();
        engine_counts.push(counts);
    }

    let mut table =
        Table::new(["retailer", "ground truth", "reference", "muppet 1.0", "muppet 2.0", "match"]);
    let mut all_ok = true;
    for (i, (retailer_name, expect)) in truth.iter().enumerate() {
        let refc = exec
            .slate(retailer::COUNTER, &muppet_core::event::Key::from(retailer_name.as_str()))
            .map(|s| s.counter())
            .unwrap_or(0);
        let v1 = engine_counts[0][i];
        let v2 = engine_counts[1][i];
        let ok = refc == *expect && v1 == *expect && v2 == *expect;
        all_ok &= ok;
        table.row([
            retailer_name.clone(),
            expect.to_string(),
            refc.to_string(),
            v1.to_string(),
            v2.to_string(),
            if ok { "✓" } else { "✗" }.into(),
        ]);
    }
    table.print();
    println!("\nshape check: all four columns identical for every retailer: {all_ok}");
    assert!(all_ok);
}
