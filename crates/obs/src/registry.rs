//! The metrics registry: named atomic handles + pull-style collectors,
//! rendered as Prometheus text exposition.
//!
//! Two registration styles, matching how the workspace's counters
//! actually live:
//!
//! * **Handles** ([`Counter`], [`Gauge`], [`Histogram`]) — created
//!   through the registry, cloned onto the hot path, recorded with one
//!   relaxed atomic op and zero allocation. The engine's own event
//!   counters use these.
//! * **Collectors** — closures run at scrape time that emit [`Sample`]s
//!   from state that already exists elsewhere (cache shard counters,
//!   `TcpStats`, WAL sync counts, the heavy-hitter sketches). Migrating
//!   those onto the registry costs nothing on their hot paths.
//!
//! [`Registry::render`] merges both into one exposition document;
//! [`Registry::snapshot`] flattens the same data into ⟨name, value⟩
//! pairs for bench stamping.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use muppet_core::sync::Mutex;

use crate::histogram::Histogram;

/// A monotonically increasing counter handle. Clones share the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that can go down). Clones share the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A 1-in-N sampling gate: one relaxed `fetch_add` per call, hit every
/// `rate()`-th call. N is rounded up to a power of two so the gate is a
/// mask, not a division.
#[derive(Debug)]
pub struct Sampler {
    tick: AtomicU64,
    mask: u64,
}

impl Sampler {
    /// A gate that fires every `n`-th call (rounded up to a power of
    /// two; `n = 0` or `1` fires always).
    pub fn every(n: u64) -> Sampler {
        let n = n.max(1).next_power_of_two();
        Sampler { tick: AtomicU64::new(0), mask: n - 1 }
    }

    /// Count one call; true when this call is sampled.
    pub fn hit(&self) -> bool {
        self.tick.fetch_add(1, Ordering::Relaxed) & self.mask == 0
    }

    /// The effective sampling interval (each hit represents this many
    /// calls).
    pub fn rate(&self) -> u64 {
        self.mask + 1
    }
}

/// A point-in-time histogram reading, as the exposition path needs it.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; bucket i covers
    /// `[2^i, 2^(i+1))` µs.
    pub bucket_counts: Vec<u64>,
    /// Sum of recorded values.
    pub sum: u64,
    /// Total samples.
    pub count: u64,
}

/// One scraped value.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Metric family name (must be a valid Prometheus metric name).
    pub name: String,
    /// Label set, in output order.
    pub labels: Vec<(String, String)>,
    /// The value (its variant fixes the family's TYPE).
    pub value: Value,
}

impl Sample {
    /// Convenience: a counter sample.
    pub fn counter(name: &str, labels: &[(&str, &str)], v: u64) -> Sample {
        Sample { name: name.into(), labels: owned_labels(labels), value: Value::Counter(v) }
    }

    /// Convenience: a gauge sample.
    pub fn gauge(name: &str, labels: &[(&str, &str)], v: i64) -> Sample {
        Sample { name: name.into(), labels: owned_labels(labels), value: Value::Gauge(v) }
    }
}

/// A sample's value and kind.
#[derive(Clone, Debug)]
pub enum Value {
    /// Monotone counter.
    Counter(u64),
    /// Point-in-time gauge.
    Gauge(i64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
}

enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    metrics: Vec<(Vec<(String, String)>, Handle)>,
}

type CollectorFn = Box<dyn Fn(&mut Vec<Sample>) + Send + Sync>;

#[derive(Default)]
struct Inner {
    families: BTreeMap<String, Family>,
    /// HELP text for families emitted by collectors (no handle to hang
    /// the text on).
    described: BTreeMap<String, String>,
    collectors: Vec<CollectorFn>,
}

/// The registry: the one place every subsystem's metrics meet.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Registry")
            .field("families", &inner.families.len())
            .field("collectors", &inner.collectors.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get or create a counter with labels. Repeated calls with the same
    /// ⟨name, labels⟩ return handles sharing one cell.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let labels = owned_labels(labels);
        let mut inner = self.inner.lock();
        let family = inner
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), metrics: Vec::new() });
        for (ls, handle) in &family.metrics {
            if *ls == labels {
                match handle {
                    Handle::Counter(c) => return c.clone(),
                    _ => panic!("metric {name} already registered with a different type"),
                }
            }
        }
        let c = Counter::default();
        family.metrics.push((labels, Handle::Counter(c.clone())));
        c
    }

    /// Get or create an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get or create a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let labels = owned_labels(labels);
        let mut inner = self.inner.lock();
        let family = inner
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), metrics: Vec::new() });
        for (ls, handle) in &family.metrics {
            if *ls == labels {
                match handle {
                    Handle::Gauge(g) => return g.clone(),
                    _ => panic!("metric {name} already registered with a different type"),
                }
            }
        }
        let g = Gauge::default();
        family.metrics.push((labels, Handle::Gauge(g.clone())));
        g
    }

    /// Get or create an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Get or create a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let labels = owned_labels(labels);
        let mut inner = self.inner.lock();
        let family = inner
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), metrics: Vec::new() });
        for (ls, handle) in &family.metrics {
            if *ls == labels {
                match handle {
                    Handle::Histogram(h) => return Arc::clone(h),
                    _ => panic!("metric {name} already registered with a different type"),
                }
            }
        }
        let h = Arc::new(Histogram::new());
        family.metrics.push((labels, Handle::Histogram(Arc::clone(&h))));
        h
    }

    /// Register a pull-style collector: called at every scrape to emit
    /// samples from state living outside the registry.
    pub fn collector(&self, f: impl Fn(&mut Vec<Sample>) + Send + Sync + 'static) {
        self.inner.lock().collectors.push(Box::new(f));
    }

    /// Attach HELP text to a family emitted by collectors.
    pub fn describe(&self, name: &str, help: &str) {
        self.inner.lock().described.insert(name.to_string(), help.to_string());
    }

    /// Collect every sample: handle families first, then collector
    /// output.
    pub fn gather(&self) -> Vec<Sample> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for (name, family) in &inner.families {
            for (labels, handle) in &family.metrics {
                let value = match handle {
                    Handle::Counter(c) => Value::Counter(c.get()),
                    Handle::Gauge(g) => Value::Gauge(g.get()),
                    Handle::Histogram(h) => Value::Histogram(HistogramSnapshot {
                        bucket_counts: h.bucket_counts(),
                        sum: h.sum_us(),
                        count: h.count(),
                    }),
                };
                out.push(Sample { name: name.clone(), labels: labels.clone(), value });
            }
        }
        for collect in &inner.collectors {
            collect(&mut out);
        }
        out
    }

    /// Render the Prometheus text exposition (`text/plain; version=0.0.4`).
    pub fn render(&self) -> String {
        let samples = self.gather();
        // Group per family so HELP/TYPE lines appear once, families in
        // name order.
        let mut by_family: BTreeMap<String, Vec<Sample>> = BTreeMap::new();
        for s in samples {
            by_family.entry(s.name.clone()).or_default().push(s);
        }
        let (helps, described) = {
            let inner = self.inner.lock();
            let helps: BTreeMap<String, String> =
                inner.families.iter().map(|(n, f)| (n.clone(), f.help.clone())).collect();
            (helps, inner.described.clone())
        };
        let mut out = String::new();
        for (name, samples) in by_family {
            let kind = match samples[0].value {
                Value::Counter(_) => "counter",
                Value::Gauge(_) => "gauge",
                Value::Histogram(_) => "histogram",
            };
            if let Some(help) = helps.get(&name).or_else(|| described.get(&name)) {
                if !help.is_empty() {
                    out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
                }
            }
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for s in samples {
                render_sample(&mut out, &s);
            }
        }
        out
    }

    /// Flatten every sample into ⟨flat name, value⟩ pairs (histograms
    /// contribute `_count` and `_sum`) — the bench-stamping snapshot.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for s in self.gather() {
            let flat = flat_name(&s.name, &s.labels);
            match s.value {
                Value::Counter(v) => out.push((flat, v as f64)),
                Value::Gauge(v) => out.push((flat, v as f64)),
                Value::Histogram(h) => {
                    out.push((format!("{flat}_count"), h.count as f64));
                    out.push((format!("{flat}_sum"), h.sum as f64));
                }
            }
        }
        out
    }
}

fn flat_name(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let ls: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", ls.join(","))
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
    }
    out.push('}');
}

fn render_sample(out: &mut String, s: &Sample) {
    match &s.value {
        Value::Counter(v) => {
            out.push_str(&s.name);
            render_labels(out, &s.labels);
            out.push_str(&format!(" {v}\n"));
        }
        Value::Gauge(v) => {
            out.push_str(&s.name);
            render_labels(out, &s.labels);
            out.push_str(&format!(" {v}\n"));
        }
        Value::Histogram(h) => {
            // Cumulative `le` buckets up to the last non-empty one, then
            // +Inf; bounds are the histogram's power-of-two µs bounds.
            let last = h.bucket_counts.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
            let mut cum = 0u64;
            for (i, &c) in h.bucket_counts.iter().take(last).enumerate() {
                cum += c;
                let mut labels = s.labels.clone();
                labels.push(("le".into(), Histogram::bucket_upper_bound(i).to_string()));
                out.push_str(&format!("{}_bucket", s.name));
                render_labels(out, &labels);
                out.push_str(&format!(" {cum}\n"));
            }
            let mut labels = s.labels.clone();
            labels.push(("le".into(), "+Inf".into()));
            out.push_str(&format!("{}_bucket", s.name));
            render_labels(out, &labels);
            out.push_str(&format!(" {}\n", h.count));
            out.push_str(&format!("{}_sum", s.name));
            render_labels(out, &s.labels);
            out.push_str(&format!(" {}\n", h.sum));
            out.push_str(&format!("{}_count", s.name));
            render_labels(out, &s.labels);
            out.push_str(&format!(" {}\n", h.count));
        }
    }
}

/// One line of a parsed exposition document.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSample {
    /// Metric name as written (histogram lines keep their `_bucket` /
    /// `_sum` / `_count` suffixes).
    pub name: String,
    /// Parsed label set.
    pub labels: Vec<(String, String)>,
    /// The numeric value (`+Inf` parses as [`f64::INFINITY`]).
    pub value: f64,
}

impl ParsedSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parse a Prometheus text exposition document — the round-trip check
/// for what [`Registry::render`] emits (and the scrape side of the x19
/// smoke test). Comments and blank lines are skipped.
pub fn parse_exposition(text: &str) -> Result<Vec<ParsedSample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
        let (name_and_labels, value_str) = match line.rfind(' ') {
            Some(i) => (&line[..i], line[i + 1..].trim()),
            None => return Err(err("no value")),
        };
        let (name, labels) = match name_and_labels.find('{') {
            Some(open) => {
                let name = &name_and_labels[..open];
                let rest = &name_and_labels[open + 1..];
                let close = rest.rfind('}').ok_or_else(|| err("unterminated label set"))?;
                (name, parse_labels(&rest[..close]).map_err(|e| err(&e))?)
            }
            None => (name_and_labels, Vec::new()),
        };
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(err("invalid metric name"));
        }
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse::<f64>().map_err(|_| err("invalid value"))?,
        };
        out.push(ParsedSample { name: name.to_string(), labels, value });
    }
    Ok(out)
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key}: expected opening quote"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('n') => value.push('\n'),
                    Some(other) => value.push(other),
                    None => return Err("dangling escape".into()),
                },
                '"' => {
                    closed = true;
                    break;
                }
                other => value.push(other),
            }
        }
        if !closed {
            return Err(format!("label {key}: unterminated value"));
        }
        labels.push((key.trim().to_string(), value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let reg = Registry::new();
        let a = reg.counter("x_total", "a test counter");
        let b = reg.counter("x_total", "a test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn labeled_metrics_are_distinct_series() {
        let reg = Registry::new();
        let a = reg.counter_with("y_total", "", &[("op", "count")]);
        let b = reg.counter_with("y_total", "", &[("op", "top")]);
        a.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
        let text = reg.render();
        assert!(text.contains("y_total{op=\"count\"} 1"), "{text}");
        assert!(text.contains("y_total{op=\"top\"} 0"), "{text}");
    }

    #[test]
    fn gauge_goes_down() {
        let reg = Registry::new();
        let g = reg.gauge("depth", "queue depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn render_emits_help_and_type_once_per_family() {
        let reg = Registry::new();
        reg.counter_with("z_total", "the z counter", &[("k", "a")]);
        reg.counter_with("z_total", "the z counter", &[("k", "b")]);
        let text = reg.render();
        assert_eq!(text.matches("# HELP z_total the z counter").count(), 1);
        assert_eq!(text.matches("# TYPE z_total counter").count(), 1);
    }

    #[test]
    fn histogram_renders_cumulative_le_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat_us", "latency");
        h.record(1); // bucket 0, le=2
        h.record(3); // bucket 1, le=4
        h.record(3);
        let text = reg.render();
        assert!(text.contains("lat_us_bucket{le=\"2\"} 1"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"4\"} 3"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_us_sum 7"), "{text}");
        assert!(text.contains("lat_us_count 3"), "{text}");
    }

    #[test]
    fn collectors_run_at_scrape_time() {
        let reg = Registry::new();
        let n = Arc::new(AtomicU64::new(41));
        let n2 = Arc::clone(&n);
        reg.describe("ext_total", "externally owned");
        reg.collector(move |out| {
            out.push(Sample::counter("ext_total", &[], n2.load(Ordering::Relaxed)));
        });
        n.fetch_add(1, Ordering::Relaxed);
        let text = reg.render();
        assert!(text.contains("# HELP ext_total externally owned"), "{text}");
        assert!(text.contains("ext_total 42"), "{text}");
    }

    #[test]
    fn exposition_round_trips() {
        let reg = Registry::new();
        let c = reg.counter("events_total", "all events");
        c.add(7);
        let g = reg.gauge_with("depth", "with \"quotes\" and \\slashes", &[("peer", "a\"b\\c")]);
        g.set(-5);
        let h = reg.histogram_with("lat_us", "", &[("stage", "ingest")]);
        h.record(100);
        h.record(200_000);
        let text = reg.render();
        let parsed = parse_exposition(&text).expect("our own exposition must parse");
        let find = |name: &str| parsed.iter().filter(|s| s.name == name).collect::<Vec<_>>();
        assert_eq!(find("events_total")[0].value, 7.0);
        let depth = find("depth")[0].clone();
        assert_eq!(depth.value, -5.0);
        assert_eq!(depth.label("peer"), Some("a\"b\\c"));
        assert_eq!(find("lat_us_count")[0].value, 2.0);
        assert_eq!(find("lat_us_sum")[0].value, 200_100.0);
        let inf = find("lat_us_bucket")
            .into_iter()
            .find(|s| s.label("le") == Some("+Inf"))
            .expect("+Inf bucket");
        assert_eq!(inf.value, 2.0);
        assert_eq!(inf.label("stage"), Some("ingest"));
        // Bucket counts must be cumulative and end at the total count.
        let buckets = parsed.iter().filter(|s| s.name == "lat_us_bucket").collect::<Vec<_>>();
        let mut prev = 0.0;
        for b in &buckets {
            assert!(b.value >= prev, "cumulative buckets never decrease");
            prev = b.value;
        }
    }

    #[test]
    fn snapshot_flattens_names() {
        let reg = Registry::new();
        reg.counter("a_total", "").add(3);
        reg.counter_with("b_total", "", &[("op", "x")]).add(4);
        reg.histogram("h_us", "").record(9);
        let snap: BTreeMap<String, f64> = reg.snapshot().into_iter().collect();
        assert_eq!(snap["a_total"], 3.0);
        assert_eq!(snap["b_total{op=x}"], 4.0);
        assert_eq!(snap["h_us_count"], 1.0);
        assert_eq!(snap["h_us_sum"], 9.0);
    }

    #[test]
    fn sampler_hits_every_nth() {
        let s = Sampler::every(4);
        let hits = (0..16).filter(|_| s.hit()).count();
        assert_eq!(hits, 4);
        assert_eq!(s.rate(), 4);
        // Non-power-of-two rounds up.
        assert_eq!(Sampler::every(5).rate(), 8);
        assert_eq!(Sampler::every(0).rate(), 1);
        assert!(Sampler::every(1).hit());
    }
}
