//! X13 — §5 "Limiting Slate Sizes": "slates can grow quite large and
//! updaters that maintain large slates can run more slowly due to the
//! overhead. Consequently, we encourage developers to keep individual
//! slates small, e.g., many kilobytes rather than many megabytes."
//!
//! An updater maintains a slate of a fixed size S (rewriting it per event,
//! as `replaceSlate` semantics imply); we sweep S and watch throughput
//! fall and flush bytes grow.

use muppet_core::event::Event;
use muppet_core::operator::{Emitter, FnUpdater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use muppet_runtime::cache::FlushPolicy;
use muppet_runtime::engine::{EngineConfig, EngineKind, OperatorSet};
use muppet_slatestore::cluster::{StoreCluster, StoreConfig};
use muppet_slatestore::util::TempDir;

use crate::harness::{keyed_events, run_engine};
use crate::table::{rate, Table};
use crate::Scale;

fn workflow() -> Workflow {
    let mut b = Workflow::builder("slate-size");
    b.external_stream("S1");
    b.updater("U1", &["S1"]);
    b.build().unwrap()
}

fn ops(slate_bytes: usize) -> OperatorSet {
    OperatorSet::new().updater(FnUpdater::new(
        "U1",
        move |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            // Rewrite the whole slate (replaceSlate semantics): a counter
            // header plus S bytes of payload.
            let count = slate.counter() + 1;
            let mut data = count.to_string().into_bytes();
            data.resize(slate_bytes.max(data.len()), b'x');
            slate.replace(data);
        },
    ))
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner("X13", "slate size vs updater throughput", "§5 (limiting slate sizes)");
    let n = scale.events(10_000);
    let keys = 64usize;

    let mut table = Table::new(["slate size", "events/s", "store bytes written", "relative speed"]);
    let mut baseline = None;
    for &size in &[256usize, 4 * 1024, 64 * 1024, 1024 * 1024] {
        let dir = TempDir::new("x13").unwrap();
        let store = std::sync::Arc::new(
            StoreCluster::open(
                dir.path(),
                StoreConfig { nodes: 1, replication: 1, ..Default::default() },
            )
            .unwrap(),
        );
        let cfg = EngineConfig {
            kind: EngineKind::Muppet2,
            machines: 1,
            workers_per_machine: 2,
            flush: FlushPolicy::IntervalMs(10),
            queue_capacity: 1 << 16,
            ..EngineConfig::default()
        };
        let events = keyed_events("S1", n, keys, 0.5, 13);
        let outcome =
            run_engine(workflow(), ops(size), cfg, Some(std::sync::Arc::clone(&store)), events);
        let throughput = outcome.throughput(n);
        let base = *baseline.get_or_insert(throughput);
        let stored = store.stats().stored_bytes;
        table.row([
            human_size(size),
            rate(n, outcome.elapsed),
            human_size(stored as usize),
            format!("{:.2}×", throughput / base),
        ]);
    }
    table.print();
    println!(
        "\nshape check: throughput decays as slates grow from KBs to MBs (copy + flush\n\
         costs scale with slate size) — the §5 advice to keep slates 'many kilobytes\n\
         rather than many megabytes'."
    );
}

fn human_size(bytes: usize) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}
