//! Shared experiment drivers: run an app on an engine, time it, collect
//! stats.

use std::sync::Arc;
use std::time::{Duration, Instant};

use muppet_apps::retailer::{self, Counter, RetailerMapper};
use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use muppet_runtime::engine::{Engine, EngineConfig, EngineStats, OperatorSet};
use muppet_slatestore::cluster::StoreCluster;

/// A flattened metrics-registry snapshot (`family{labels}` → value).
pub type RegistrySnapshot = Vec<(String, f64)>;

/// Outcome of a timed engine run.
pub struct RunOutcome {
    /// Wall-clock time from first submit to drain.
    pub elapsed: Duration,
    /// Final engine statistics.
    pub stats: EngineStats,
    /// Peak queue occupancy.
    pub max_queue: usize,
    /// Registry snapshot taken before the first submit.
    pub registry_before: RegistrySnapshot,
    /// Registry snapshot taken after drain, before shutdown.
    pub registry_after: RegistrySnapshot,
}

impl RunOutcome {
    /// Events per second over the run.
    pub fn throughput(&self, events: usize) -> f64 {
        events as f64 / self.elapsed.as_secs_f64()
    }

    /// The before/after registry snapshots as a JSON object, for stamping
    /// into `BENCH_xNN.json` so recorded numbers carry the engine's own
    /// counters alongside the wall-clock measurements.
    pub fn registry_json(&self) -> Json {
        Json::obj([
            ("before", snapshot_json(&self.registry_before)),
            ("after", snapshot_json(&self.registry_after)),
        ])
    }
}

/// Render a flattened registry snapshot as a JSON object.
pub fn snapshot_json(snapshot: &RegistrySnapshot) -> Json {
    Json::Obj(snapshot.iter().map(|(name, v)| (name.clone(), Json::num(*v))).collect())
}

/// Start an engine, stream `events`, drain, shut down, and time it.
pub fn run_engine(
    workflow: muppet_core::workflow::Workflow,
    ops: OperatorSet,
    cfg: EngineConfig,
    store: Option<Arc<StoreCluster>>,
    events: Vec<Event>,
) -> RunOutcome {
    let engine = Engine::start(workflow, ops, cfg, store).expect("engine starts");
    let registry_before = engine.registry().snapshot();
    let t0 = Instant::now();
    for ev in events {
        engine.submit(ev).expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(300)), "engine must drain");
    let elapsed = t0.elapsed();
    let max_queue = engine.max_queue_high_water();
    let registry_after = engine.registry().snapshot();
    let stats = engine.shutdown();
    RunOutcome { elapsed, stats, max_queue, registry_before, registry_after }
}

/// Like [`run_engine`] but keeps the engine alive and hands it to a
/// callback mid-stream (failure drills, HTTP readers).
pub fn run_engine_with<F: FnOnce(&Engine)>(
    workflow: muppet_core::workflow::Workflow,
    ops: OperatorSet,
    cfg: EngineConfig,
    store: Option<Arc<StoreCluster>>,
    first: Vec<Event>,
    mid: F,
    second: Vec<Event>,
) -> RunOutcome {
    let engine = Engine::start(workflow, ops, cfg, store).expect("engine starts");
    let registry_before = engine.registry().snapshot();
    let t0 = Instant::now();
    for ev in first {
        engine.submit(ev).expect("submit");
    }
    engine.drain(Duration::from_secs(300));
    mid(&engine);
    for ev in second {
        engine.submit(ev).expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(300)), "engine must drain");
    let elapsed = t0.elapsed();
    let max_queue = engine.max_queue_high_water();
    let registry_after = engine.registry().snapshot();
    let stats = engine.shutdown();
    RunOutcome { elapsed, stats, max_queue, registry_before, registry_after }
}

/// The retailer operator set (the workhorse app for throughput runs).
pub fn retailer_ops() -> OperatorSet {
    OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new())
}

/// The retailer workflow.
pub fn retailer_workflow() -> muppet_core::workflow::Workflow {
    retailer::workflow()
}

/// Read a decimal counter slate off an engine.
pub fn read_counter(engine: &Engine, updater: &str, key: &str) -> u64 {
    engine
        .read_slate(updater, &Key::from(key))
        .and_then(|b| String::from_utf8(b).ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// A stream of synthetic counter events with a controllable number of
/// distinct keys and Zipf skew — the minimal workload for cache and
/// dispatch experiments (payloads are empty; all cost is in the framework).
pub fn keyed_events(stream: &str, n: usize, keys: usize, skew: f64, seed: u64) -> Vec<Event> {
    use muppet_workloads::zipf::Zipf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let z = Zipf::new(keys.max(1), skew);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let k = z.sample(&mut rng);
            Event::new(stream, i as u64, Key::from(format!("key-{k:06}")), Vec::new())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_runtime::engine::EngineKind;
    use muppet_workloads::checkins::CheckinGenerator;

    #[test]
    fn run_engine_times_a_real_run() {
        let mut gen = CheckinGenerator::new(1, 100, 1000.0);
        let events = gen.take(retailer::CHECKIN_STREAM, 500);
        let cfg = EngineConfig {
            kind: EngineKind::Muppet2,
            machines: 1,
            workers_per_machine: 2,
            ..EngineConfig::default()
        };
        let outcome = run_engine(retailer_workflow(), retailer_ops(), cfg, None, events);
        assert_eq!(outcome.stats.submitted, 500);
        assert!(outcome.throughput(500) > 0.0);
    }

    #[test]
    fn keyed_events_respect_universe_and_skew() {
        let events = keyed_events("S1", 5000, 10, 2.0, 7);
        assert_eq!(events.len(), 5000);
        let mut counts = std::collections::HashMap::new();
        for e in &events {
            *counts.entry(e.key.clone()).or_insert(0u32) += 1;
        }
        assert!(counts.len() <= 10);
        let max = counts.values().max().unwrap();
        assert!(*max > 2500, "skew 2.0 concentrates on the head: {max}");
    }
}
