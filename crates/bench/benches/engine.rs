//! End-to-end engine benchmarks: events through the full map→update path
//! on both engine generations, per key-skew regime.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use muppet_core::event::Event;
use muppet_core::operator::{Emitter, FnMapper, FnUpdater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind, OperatorSet};

fn workflow() -> Workflow {
    let mut b = Workflow::builder("bench");
    b.external_stream("S1");
    b.mapper_publishing("M", &["S1"], &["S2"]);
    b.updater("U", &["S2"]);
    b.build().unwrap()
}

fn ops() -> OperatorSet {
    OperatorSet::new()
        .mapper(FnMapper::new("M", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        }))
        .updater(FnUpdater::new("U", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        }))
}

fn events(n: usize, keys: usize, skew: f64) -> Vec<Event> {
    use muppet_workloads::zipf::Zipf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let z = Zipf::new(keys, skew);
    let mut rng = StdRng::seed_from_u64(3);
    (0..n)
        .map(|i| {
            Event::new(
                "S1",
                i as u64,
                muppet_core::event::Key::from(format!("k{:05}", z.sample(&mut rng))),
                Vec::new(),
            )
        })
        .collect()
}

fn bench_engines(c: &mut Criterion) {
    const N: usize = 5_000;
    let mut g = c.benchmark_group("engine_e2e");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N as u64));
    for kind in [EngineKind::Muppet1, EngineKind::Muppet2] {
        for &(label, skew) in &[("uniform", 0.0f64), ("zipf1.1", 1.1)] {
            g.bench_function(format!("{kind:?}_{label}_{N}_events"), |b| {
                b.iter_batched(
                    || events(N, 500, skew),
                    |events| {
                        let cfg = EngineConfig {
                            kind,
                            machines: 1,
                            workers_per_machine: 2,
                            workers_per_op: 2,
                            queue_capacity: 1 << 17,
                            ..EngineConfig::default()
                        };
                        let engine = Engine::start(workflow(), ops(), cfg, None).unwrap();
                        for ev in events {
                            engine.submit(ev).unwrap();
                        }
                        assert!(engine.drain(Duration::from_secs(60)));
                        engine.shutdown()
                    },
                    BatchSize::PerIteration,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
