//! Minimal fixed-width table printer for experiment output.

/// A simple right-padded text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (stringify everything up front).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity must match headers");
        self.rows.push(cells);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<width$}", width = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a rate as `events/s`.
pub fn rate(events: usize, elapsed: std::time::Duration) -> String {
    format!("{:.0}", events as f64 / elapsed.as_secs_f64())
}

/// Format a microsecond value human-readably.
pub fn us(value: u64) -> String {
    if value >= 1_000_000 {
        format!("{:.2}s", value as f64 / 1e6)
    } else if value >= 1_000 {
        format!("{:.1}ms", value as f64 / 1e3)
    } else {
        format!("{value}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        // All data lines equal width of the widest.
        assert!(lines[3].starts_with("a-much-longer-name"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(500), "500µs");
        assert_eq!(us(1_500), "1.5ms");
        assert_eq!(us(2_000_000), "2.00s");
        let r = rate(1000, std::time::Duration::from_secs(2));
        assert_eq!(r, "500");
    }
}
