//! Hotspot relief by key splitting — §5 Example 6.
//!
//! "Counting Best Buy events is associative and commutative. Hence,
//! instead of using just a single updater U, we can use a set of updaters,
//! each of which counts just a subset of Best Buy events. ... we can modify
//! the map function to replace the single key 'Best Buy' with two keys
//! 'Best Buy1' and 'Best Buy2' ... Next, we modify the update function so
//! that it regularly emits the counts ... as new events under the key
//! 'Best Buy'. Finally, we write a new update function that receives the
//! events of key 'Best Buy' to determine the total counts."
//!
//! Workflow: `S1 (checkins) → M1 splitting-mapper → S2 → U1 partial-counter
//! → S3 → U2 total-counter`, parameterized by the split factor k.

use muppet_core::sync::Mutex;

use muppet_core::event::{Event, Key};
use muppet_core::hash::FxHashMap;
use muppet_core::json::Json;
use muppet_core::operator::{Emitter, Mapper, Updater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;

use crate::retailer::match_retailer;

/// External checkin stream.
pub const CHECKIN_STREAM: &str = "S1";
/// Split-key stream.
pub const SPLIT_STREAM: &str = "S2";
/// Partial-count stream.
pub const PARTIAL_STREAM: &str = "S3";
/// Splitting mapper name.
pub const SPLIT_MAPPER: &str = "splitting-mapper";
/// Partial counter name.
pub const PARTIAL_COUNTER: &str = "partial-counter";
/// Total counter name.
pub const TOTAL_COUNTER: &str = "total-counter";

/// The split-counting workflow.
pub fn workflow() -> Workflow {
    let mut b = Workflow::builder("split-counter");
    b.external_stream(CHECKIN_STREAM);
    b.mapper_publishing(SPLIT_MAPPER, &[CHECKIN_STREAM], &[SPLIT_STREAM]);
    b.updater_publishing(PARTIAL_COUNTER, &[SPLIT_STREAM], &[PARTIAL_STREAM]);
    b.updater(TOTAL_COUNTER, &[PARTIAL_STREAM]);
    b.build().expect("static workflow is valid")
}

/// Compose the split key `"<retailer>#<i>"` of Example 6 ("Best Buy1",
/// "Best Buy2" in the paper's phrasing).
pub fn split_key(retailer: &str, shard: u64) -> Key {
    Key::from(format!("{retailer}#{shard}"))
}

/// Recover the base retailer from a split key.
pub fn base_of(split: &Key) -> Option<String> {
    let s = split.as_str()?;
    let (base, _) = s.rsplit_once('#')?;
    Some(base.to_string())
}

/// M1: like the Figure 3 retailer mapper, but spreads each retailer over
/// `k` sub-keys round-robin, "partitioning the set of events with key
/// 'Best Buy' into [k] subsets".
pub struct SplittingMapper {
    name: String,
    k: u64,
    /// Per-retailer round-robin cursors: Example 6 partitions *each*
    /// retailer's events into k subsets, so the cursor must be per base
    /// key, not global.
    rr: Mutex<FxHashMap<&'static str, u64>>,
}

impl SplittingMapper {
    /// A mapper splitting each retailer key `k` ways (`k = 1` reproduces
    /// the unsplit baseline).
    pub fn new(k: u64) -> Self {
        SplittingMapper {
            name: SPLIT_MAPPER.to_string(),
            k: k.max(1),
            rr: Mutex::new(FxHashMap::default()),
        }
    }
}

impl Mapper for SplittingMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, ctx: &mut dyn Emitter, event: &Event) {
        let Some(venue) = crate::retailer::RetailerMapper::venue_of(event) else { return };
        if let Some(retailer) = match_retailer(&venue) {
            let shard = {
                let mut cursors = self.rr.lock();
                let cursor = cursors.entry(retailer).or_insert(0);
                let shard = *cursor % self.k;
                *cursor += 1;
                shard
            };
            ctx.publish(SPLIT_STREAM, split_key(retailer, shard), event.value.to_vec());
        }
    }
}

/// U1: count per split key; "regularly emits the counts ... as new events
/// under the [base] key" — every `emit_every` events it publishes the
/// accumulated delta and resets it. Slate JSON:
/// `{"count": total_for_shard, "unreported": pending_delta}`.
pub struct PartialCounter {
    name: String,
    emit_every: u64,
}

impl PartialCounter {
    /// Emit a partial-count delta every `emit_every` events (1 = per
    /// event, exact totals downstream at the cost of 1:1 event traffic).
    pub fn new(emit_every: u64) -> Self {
        PartialCounter { name: PARTIAL_COUNTER.to_string(), emit_every: emit_every.max(1) }
    }
}

impl Updater for PartialCounter {
    fn name(&self) -> &str {
        &self.name
    }

    fn update(&self, ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        // Resident slate: read and write the parsed document in place.
        let state =
            slate.obj_mut_or(|| Json::obj([("count", Json::num(0)), ("unreported", Json::num(0))]));
        let mut count = state.get("count").and_then(Json::as_u64).unwrap_or(0);
        let mut unreported = state.get("unreported").and_then(Json::as_u64).unwrap_or(0);
        count += 1;
        unreported += 1;
        if unreported >= self.emit_every {
            if let Some(base) = base_of(&event.key) {
                let payload = Json::obj([("delta", Json::num(unreported as f64))]).to_compact();
                ctx.publish(PARTIAL_STREAM, Key::from(base), payload.into_bytes());
            }
            unreported = 0;
        }
        state.set("count", Json::num(count as f64));
        state.set("unreported", Json::num(unreported as f64));
    }
}

/// U2: sum the partial deltas per base retailer key.
pub struct TotalCounter {
    name: String,
}

impl TotalCounter {
    /// Default-named updater.
    pub fn new() -> Self {
        TotalCounter { name: TOTAL_COUNTER.to_string() }
    }
}

impl Default for TotalCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl Updater for TotalCounter {
    fn name(&self) -> &str {
        &self.name
    }

    fn update(&self, _ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        let delta = Json::from_payload(&event.value)
            .ok()
            .and_then(|v| v.get("delta").and_then(Json::as_u64))
            .unwrap_or(0);
        slate.incr_counter(delta);
    }
}

// ---------------------------------------------------------------------
// Engine-native hotspot relief: the combiner primitive.
//
// Example 6 above is the *manual* pattern — the application splits keys,
// emits partial counts, and re-aggregates with a second updater. With
// the engine's combiner contract the same relief needs none of that
// plumbing: the mapper emits unit counts, the counter declares its
// associative merge, and `EngineConfig::combine` /
// `EngineConfig::hot_split_threshold` handle pre-aggregation and
// dynamic key splitting below the application.
// ---------------------------------------------------------------------

/// Unit-count stream of the combined workflow.
pub const UNIT_STREAM: &str = "S2";
/// Unit-emitting mapper name (combined workflow).
pub const UNIT_MAPPER: &str = "unit-mapper";
/// Combining counter name (combined workflow).
pub const COMBINING_COUNTER: &str = "combining-counter";

/// The engine-native replacement for the whole Example 6 pipeline:
/// `S1 → M1 unit-mapper → S2 → U1 combining-counter`. One updater, no
/// shard keys, no partial streams — hotspot relief comes from the
/// engine, not the application.
pub fn combined_workflow() -> Workflow {
    let mut b = Workflow::builder("split-counter-combined");
    b.external_stream(CHECKIN_STREAM);
    b.mapper_publishing(UNIT_MAPPER, &[CHECKIN_STREAM], &[UNIT_STREAM]);
    b.updater(COMBINING_COUNTER, &[UNIT_STREAM]);
    b.build().expect("static workflow is valid")
}

/// M1 of the combined workflow: matches retailers like the Figure 3
/// mapper but emits the unit count `"1"` as the value, so downstream
/// values are combinable by decimal sum.
pub struct UnitMapper {
    name: String,
}

impl UnitMapper {
    /// Default-named unit mapper.
    pub fn new() -> Self {
        UnitMapper { name: UNIT_MAPPER.to_string() }
    }
}

impl Default for UnitMapper {
    fn default() -> Self {
        Self::new()
    }
}

impl Mapper for UnitMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, ctx: &mut dyn Emitter, event: &Event) {
        let Some(venue) = crate::retailer::RetailerMapper::venue_of(event) else { return };
        if let Some(retailer) = match_retailer(&venue) {
            ctx.publish(UNIT_STREAM, Key::from(retailer), b"1".to_vec());
        }
    }
}

/// U1 of the combined workflow: adds the event's decimal unit count to
/// the slate counter and declares the associative merge — folding
/// values by decimal sum then updating once is bit-identical to
/// updating per event, which is exactly the combiner contract. The
/// merge is total over slate byte images (decimal text), so the engine
/// may also split this updater's hot keys across subslates.
pub struct CombiningCounter {
    name: String,
}

impl CombiningCounter {
    /// Default-named combining counter.
    pub fn new() -> Self {
        CombiningCounter { name: COMBINING_COUNTER.to_string() }
    }

    /// A combining counter registered under a custom function name.
    pub fn named(name: impl Into<String>) -> Self {
        CombiningCounter { name: name.into() }
    }
}

impl Default for CombiningCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl Updater for CombiningCounter {
    fn name(&self) -> &str {
        &self.name
    }

    fn update(&self, _ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        let n: u64 = std::str::from_utf8(event.value.as_ref())
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        slate.incr_counter(n);
    }

    fn combine(&self, acc: &[u8], next: &[u8]) -> Option<Vec<u8>> {
        muppet_core::operator::combine_decimal_sum(acc, next)
    }

    fn combines(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::reference::ReferenceExecutor;
    use muppet_workloads::checkins::CheckinGenerator;

    type Counts = Vec<(String, u64)>;

    fn run(k: u64, emit_every: u64, n_events: usize) -> (Counts, Counts) {
        let wf = workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_mapper(SplittingMapper::new(k));
        exec.register_updater(PartialCounter::new(emit_every));
        exec.register_updater(TotalCounter::new());
        let mut gen = CheckinGenerator::new(77, 100, 1000.0).with_venue_skew(2.0);
        let events = gen.take(CHECKIN_STREAM, n_events);
        let expected: Vec<(String, u64)> =
            CheckinGenerator::expected_retailer_counts(&events).into_iter().collect();
        for ev in events {
            exec.push_external(CHECKIN_STREAM, ev);
        }
        exec.run_to_completion().unwrap();
        let totals: Vec<(String, u64)> = exec
            .slates_of(TOTAL_COUNTER)
            .into_iter()
            .map(|(key, slate)| (key.as_str().unwrap().to_string(), slate.counter()))
            .collect();
        (expected, totals)
    }

    #[test]
    fn split_totals_equal_unsplit_ground_truth_when_emitting_every_event() {
        for k in [1u64, 2, 4, 8] {
            let (expected, totals) = run(k, 1, 2000);
            assert_eq!(totals, expected, "k={k}");
        }
    }

    #[test]
    fn batched_emission_undercounts_by_at_most_k_times_batch() {
        let k = 4u64;
        let batch = 10u64;
        let (expected, totals) = run(k, batch, 2000);
        for (retailer, expect) in &expected {
            let got = totals.iter().find(|(r, _)| r == retailer).map(|(_, c)| *c).unwrap_or(0);
            assert!(got <= *expect, "never overcounts");
            assert!(
                expect - got < k * batch,
                "{retailer}: unreported residue bounded by k×batch: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn splitting_spreads_shard_keys() {
        let wf = workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_mapper(SplittingMapper::new(4));
        exec.register_updater(PartialCounter::new(1));
        exec.register_updater(TotalCounter::new());
        let mut gen = CheckinGenerator::new(3, 50, 1000.0).with_venue_skew(3.0);
        for ev in gen.take(CHECKIN_STREAM, 2000) {
            exec.push_external(CHECKIN_STREAM, ev);
        }
        exec.run_to_completion().unwrap();
        // The hottest retailer's events must be spread over 4 shard slates.
        let shard_counts: Vec<(String, u64)> = exec
            .slates_of(PARTIAL_COUNTER)
            .into_iter()
            .map(|(key, slate)| {
                let v = slate.as_json().unwrap();
                (key.as_str().unwrap().to_string(), v.get("count").unwrap().as_u64().unwrap())
            })
            .collect();
        let hottest_base = base_of(&Key::from(shard_counts[0].0.as_str())).unwrap();
        let shards: Vec<&(String, u64)> =
            shard_counts.iter().filter(|(k, _)| k.starts_with(&hottest_base)).collect();
        assert!(shards.len() > 1, "hot key split across shards: {shard_counts:?}");
        let max = shards.iter().map(|(_, c)| *c).max().unwrap();
        let min = shards.iter().map(|(_, c)| *c).min().unwrap();
        assert!(max - min <= 1, "round-robin splits evenly: {shards:?}");
    }

    #[test]
    fn combined_workflow_counts_match_ground_truth() {
        let wf = combined_workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_mapper(UnitMapper::new());
        exec.register_updater(CombiningCounter::new());
        let mut gen = CheckinGenerator::new(77, 100, 1000.0).with_venue_skew(2.0);
        let events = gen.take(CHECKIN_STREAM, 2000);
        let expected: Counts =
            CheckinGenerator::expected_retailer_counts(&events).into_iter().collect();
        for ev in events {
            exec.push_external(CHECKIN_STREAM, ev);
        }
        exec.run_to_completion().unwrap();
        let totals: Counts = exec
            .slates_of(COMBINING_COUNTER)
            .into_iter()
            .map(|(key, slate)| (key.as_str().unwrap().to_string(), slate.counter()))
            .collect();
        assert_eq!(totals, expected, "one combining updater replaces the Example 6 pipeline");
    }

    #[test]
    fn combining_counter_fold_is_update_equivalent() {
        // The contract the engine relies on: combine-then-update-once
        // leaves the slate bit-identical to updating per event.
        use muppet_core::event::Event;
        use muppet_core::operator::VecEmitter;
        use muppet_core::slate::Slate;
        let u = CombiningCounter::new();
        let values: Vec<&[u8]> = vec![b"1", b"41", b"0", b"7"];
        let mut per_event = Slate::default();
        let mut emitter = VecEmitter::new();
        for v in &values {
            let ev = Event::new(UNIT_STREAM, 1, Key::from("Best Buy"), v.to_vec());
            u.update(&mut emitter, &ev, &mut per_event);
        }
        let mut folded_value = values[0].to_vec();
        for v in &values[1..] {
            folded_value = u.combine(&folded_value, v).expect("decimal sum is total");
        }
        let mut folded = Slate::default();
        let ev = Event::new(UNIT_STREAM, 1, Key::from("Best Buy"), folded_value);
        u.update(&mut emitter, &ev, &mut folded);
        assert_eq!(per_event.bytes(), folded.bytes());
        assert_eq!(per_event.counter(), 49);
    }

    #[test]
    fn split_key_roundtrip() {
        let k = split_key("Best Buy", 3);
        assert_eq!(k.as_str(), Some("Best Buy#3"));
        assert_eq!(base_of(&k), Some("Best Buy".to_string()));
        assert_eq!(base_of(&Key::from("nohash")), None);
    }
}
