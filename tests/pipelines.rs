//! Multi-stage pipeline integration: the paper's larger workflows running
//! end-to-end on the distributed engine, checked against the reference
//! executor or analytic ground truth.

use std::time::Duration;

use muppet::apps::hot_topics::{self, HotDetector, MinuteCounter, TopicMapper};
use muppet::apps::reputation::{self, ReputationMapper, ReputationScorer};
use muppet::apps::split_counter::{self, PartialCounter, SplittingMapper, TotalCounter};
use muppet::apps::top_urls::{self, TopKUpdater, UrlCounter, UrlMapper};
use muppet::prelude::*;
use muppet::workloads::checkins::CheckinGenerator;
use muppet::workloads::tweets::{PlantedBurst, TweetGenerator};

fn zero_loss_cfg() -> EngineConfig {
    EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 2,
        workers_per_machine: 3,
        overflow: OverflowPolicy::SourceThrottle,
        ..EngineConfig::default()
    }
}

#[test]
fn reputation_pipeline_on_engine_matches_reference() {
    let mut gen = TweetGenerator::new(55, 200, 2000.0);
    let events = gen.take(reputation::TWEET_STREAM, 5000);

    // Reference run.
    let wf = reputation::workflow();
    let mut exec = ReferenceExecutor::new(&wf);
    exec.register_mapper(ReputationMapper::new());
    exec.register_updater(ReputationScorer::new());
    for ev in &events {
        exec.push_external(reputation::TWEET_STREAM, ev.clone());
    }
    exec.run_to_completion().unwrap();
    let expected: Vec<(String, i64)> = exec
        .slates_of(reputation::SCORER)
        .into_iter()
        .map(|(k, s)| (k.as_str().unwrap().to_string(), ReputationScorer::score_of(s)))
        .collect();

    // Engine run.
    let engine = Engine::start(
        reputation::workflow(),
        OperatorSet::new().mapper(ReputationMapper::new()).updater(ReputationScorer::new()),
        zero_loss_cfg(),
        None,
    )
    .unwrap();
    for ev in events {
        engine.submit(ev).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(60)));
    for (user, score) in &expected {
        let got = engine
            .read_slate(reputation::SCORER, &Key::from(user.as_str()))
            .and_then(|b| Json::parse_bytes(&b).ok())
            .and_then(|v| v.get("score").and_then(Json::as_i64))
            .unwrap_or(0);
        assert_eq!(got, *score, "user {user}");
    }
    engine.shutdown();
}

#[test]
fn hot_topics_three_stage_pipeline_detects_planted_burst_on_engine() {
    const MIN: u64 = 60 * 1_000_000;
    const DAY: u64 = 24 * 60 * MIN;
    // Day 0 history + day 1 burst, through the distributed engine. The
    // detector's S4 emissions land in the hot-detector's own recording —
    // we read outcomes through U2's slates (emitted_day set ⟹ hot).
    let engine = Engine::start(
        hot_topics::workflow(),
        OperatorSet::new()
            .mapper(TopicMapper::new())
            .updater(MinuteCounter::new())
            .updater(HotDetector::new(3.0)),
        zero_loss_cfg(),
        None,
    )
    .unwrap();
    let mut day0 = TweetGenerator::new(70, 500, 50.0).with_burst(PlantedBurst {
        topic: "earthquake".into(),
        start_us: 0,
        end_us: DAY,
        boost: 0.5,
    });
    for ev in day0.take(hot_topics::TWEET_STREAM, 20_000) {
        engine.submit(ev).unwrap();
    }
    let burst_start = DAY + 3 * MIN;
    let mut day1 = TweetGenerator::new(71, 500, 50.0)
        .with_burst(PlantedBurst {
            topic: "earthquake".into(),
            start_us: burst_start,
            end_us: burst_start + MIN,
            boost: 9.0,
        })
        .starting_at(DAY);
    for ev in day1.take(hot_topics::TWEET_STREAM, 20_000) {
        engine.submit(ev).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(60)));
    let slate = engine
        .read_slate(hot_topics::HOT_DETECTOR, &hot_topics::topic_minute_key("earthquake", 3))
        .expect("detector slate exists");
    let v = Json::parse_bytes(&slate).unwrap();
    assert_eq!(
        v.get("emitted_day").and_then(Json::as_u64),
        Some(1),
        "burst minute must be flagged hot on day 1: {v}"
    );
    engine.shutdown();
}

#[test]
fn top_urls_leaderboard_on_engine_is_exact_with_zero_loss() {
    let mut gen = TweetGenerator::new(88, 300, 2000.0);
    let events = gen.take(top_urls::TWEET_STREAM, 8000);
    // Analytic ground truth.
    let mut counts: std::collections::HashMap<String, u64> = Default::default();
    for ev in &events {
        if let Ok(v) = Json::parse_bytes(&ev.value) {
            if let Some(urls) = v.get("urls").and_then(Json::as_arr) {
                for u in urls {
                    *counts.entry(u.as_str().unwrap().to_string()).or_default() += 1;
                }
            }
        }
    }
    let mut truth: Vec<(String, u64)> = counts.into_iter().collect();
    truth.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    truth.truncate(10);

    let engine = Engine::start(
        top_urls::workflow(),
        OperatorSet::new()
            .mapper(UrlMapper::new())
            .updater(UrlCounter::new())
            .updater(TopKUpdater::new(10)),
        zero_loss_cfg(),
        None,
    )
    .unwrap();
    for ev in events {
        engine.submit(ev).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(60)));
    let board = engine
        .read_slate(top_urls::TOP_K, &Key::from(top_urls::LEADERBOARD_KEY))
        .map(|b| {
            let slate = Slate::from_bytes(b);
            TopKUpdater::leaderboard(&slate)
        })
        .unwrap_or_default();
    engine.shutdown();
    // The leaderboard is built from racy running counts; with zero loss
    // the *final* counts per URL must match the truth exactly. Order of
    // equal counts is deterministic (count desc, then URL).
    assert_eq!(board, truth);
}

#[test]
fn split_counter_relieves_hotspot_and_totals_stay_exact() {
    let mut gen = CheckinGenerator::new(66, 500, 2000.0).with_venue_skew(2.5);
    let events = gen.take(split_counter::CHECKIN_STREAM, 6000);
    let expected = CheckinGenerator::expected_retailer_counts(&events);

    let engine = Engine::start(
        split_counter::workflow(),
        OperatorSet::new()
            .mapper(SplittingMapper::new(4))
            .updater(PartialCounter::new(1))
            .updater(TotalCounter::new()),
        zero_loss_cfg(),
        None,
    )
    .unwrap();
    for ev in events {
        engine.submit(ev).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(60)));
    for (retailer, expect) in &expected {
        let got = engine
            .read_slate(split_counter::TOTAL_COUNTER, &Key::from(retailer.as_str()))
            .map(|b| String::from_utf8(b).unwrap().parse::<u64>().unwrap())
            .unwrap_or(0);
        assert_eq!(got, *expect, "retailer {retailer} (split 4 ways, emit-every-1)");
    }
    engine.shutdown();
}
