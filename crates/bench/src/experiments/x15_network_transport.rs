//! X15 — the cost of the wire: in-process vs TCP-loopback transport for
//! the hot_topics pipeline.
//!
//! The paper runs Muppet over a real network; the seed simulated it with
//! queue hand-offs. This experiment quantifies what the new `muppet-net`
//! TCP transport costs relative to the in-process wire on identical
//! hardware and workload: same 3-machine cluster, same tweet stream, same
//! two-choice dispatch — only the wire differs (direct call vs framed
//! sockets with per-peer connection pools on loopback).

use std::time::{Duration, Instant};

use muppet_apps::hot_topics::{self, HotDetector, MinuteCounter, TopicMapper};
use muppet_net::topology::Topology;
use muppet_runtime::engine::{Engine, EngineConfig, OperatorSet, TransportKind};
use muppet_workloads::tweets::TweetGenerator;

use crate::table::{rate, us, Table};
use crate::Scale;

const MACHINES: usize = 3;

fn ops() -> OperatorSet {
    OperatorSet::new()
        .mapper(TopicMapper::new())
        .updater(MinuteCounter::new())
        .updater(HotDetector::new(3.0))
}

fn base_config() -> EngineConfig {
    EngineConfig {
        machines: MACHINES,
        workers_per_machine: 2,
        queue_capacity: 1 << 16,
        ..EngineConfig::default()
    }
}

struct Outcome {
    elapsed: Duration,
    processed: u64,
    p50_us: u64,
    p99_us: u64,
    drained: bool,
}

/// Submit `events` into `intake`, then wait for the whole cluster to
/// quiesce (summed processed-count stable) and aggregate stats.
fn drive(intake: &Engine, cluster: &[&Engine], events: &[muppet_core::event::Event]) -> Outcome {
    let t0 = Instant::now();
    for ev in events {
        intake.submit(ev.clone()).expect("submit");
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    let total = |cluster: &[&Engine]| -> u64 { cluster.iter().map(|e| e.stats().processed).sum() };
    let mut last = total(cluster);
    let mut stable_since = Instant::now();
    let drained = loop {
        std::thread::sleep(Duration::from_millis(20));
        let now = total(cluster);
        if now != last {
            last = now;
            stable_since = Instant::now();
        } else if stable_since.elapsed() > Duration::from_millis(300) && now > 0 {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
    };
    let elapsed = t0.elapsed();
    let mut processed = 0;
    let mut latency = muppet_runtime::metrics::LatencySummary::default();
    for engine in cluster {
        let stats = engine.stats();
        processed += stats.processed;
        // Keep the worst-node percentiles: the cluster is as slow as its
        // slowest member.
        if stats.latency.p99_us > latency.p99_us {
            latency = stats.latency;
        }
    }
    Outcome { elapsed, processed, p50_us: latency.p50_us, p99_us: latency.p99_us, drained }
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X15",
        "in-process vs TCP-loopback transport (hot_topics)",
        "§4.1 wire; muppet-net (DESIGN.md §5)",
    );
    let n = scale.events(30_000);
    let events: Vec<_> = TweetGenerator::new(42, 2_000, 40.0).take(hot_topics::TWEET_STREAM, n);

    let mut table = Table::new([
        "transport",
        "events",
        "wall time",
        "events/s (submit→quiesce)",
        "p50 e2e",
        "p99 e2e",
    ]);

    // --- in-process wire ---
    let engine = Engine::start(hot_topics::workflow(), ops(), base_config(), None).unwrap();
    let outcome = drive(&engine, &[&engine], &events);
    assert!(outcome.drained, "in-process run did not quiesce");
    table.row([
        "in-process".to_string(),
        outcome.processed.to_string(),
        format!("{:.2?}", outcome.elapsed),
        rate(n, outcome.elapsed),
        us(outcome.p50_us),
        us(outcome.p99_us),
    ]);
    let inproc_elapsed = outcome.elapsed;
    engine.shutdown();

    // --- TCP loopback: one engine per machine, real sockets between ---
    let topology = Topology::loopback_ephemeral(MACHINES, false).expect("reserve ports");
    let nodes: Vec<Engine> = (0..MACHINES)
        .map(|local| {
            let cfg = EngineConfig {
                transport: TransportKind::Tcp { topology: topology.clone(), local },
                ..base_config()
            };
            Engine::start(hot_topics::workflow(), ops(), cfg, None).unwrap()
        })
        .collect();
    let refs: Vec<&Engine> = nodes.iter().collect();
    let outcome = drive(&nodes[0], &refs, &events);
    assert!(outcome.drained, "TCP run did not quiesce");
    table.row([
        "tcp-loopback".to_string(),
        outcome.processed.to_string(),
        format!("{:.2?}", outcome.elapsed),
        rate(n, outcome.elapsed),
        us(outcome.p50_us),
        us(outcome.p99_us),
    ]);
    let tcp_elapsed = outcome.elapsed;
    let tcp_processed = outcome.processed;
    for node in nodes {
        node.shutdown();
    }

    table.print();
    println!(
        "\nshape check: both transports process every delivered event; TCP pays \
         {:.1}× the in-process wall time on this workload (framing + syscalls + \n\
         cross-process hops; latency percentiles include remote queueing)",
        tcp_elapsed.as_secs_f64() / inproc_elapsed.as_secs_f64().max(1e-9),
    );
    assert!(tcp_processed > 0, "TCP cluster must process events");
}
