//! X17 — the per-event hot path: what resident slates, the sharded
//! central cache, and batch-drained worker queues each buy.
//!
//! The paper's pitch is low-latency per-event processing ("Muppet
//! processes each event as it arrives", §4.1), and Muppet 2.0's headline
//! change was restructuring the per-machine hot path (central cache +
//! worker pool, §4.5). The seed hot path paid three per-event taxes on a
//! JSON-slate workload: a slate parse *and* re-serialization per update
//! (`as_json`/`replace_json`), one central-cache mutex shared by the
//! whole worker pool, and a queue mutex + condvar round-trip per popped
//! event. Four arms, all on the identical in-process 3-machine
//! hot_topics pipeline, peel those off one at a time:
//!
//! * `seed-bytes`      — seed-faithful updaters crossing the byte
//!   boundary on every event; 1 cache shard; drain batch 1;
//! * `resident`        — resident parsed slates (mutate in place,
//!   serialize only at byte boundaries); 1 shard; batch 1;
//! * `resident+shard`  — + the central cache split into lock shards;
//! * `resident+shard+batch` — + workers draining up to a batch of
//!   events per queue lock (the full hot path).
//!
//! Alongside events/s the experiment records slate payload parses per
//! processed event (`muppet_core::slate::repr_counters`) — the
//! allocations-ish proxy: the seed arm re-parses per update, the
//! resident arms parse only on cache faults. Results land in
//! `BENCH_x17.json` for CI trajectory tracking.

use std::time::{Duration, Instant};

use muppet_apps::hot_topics::{
    self, HotDetector, MinuteCounter, TopicMapper, COUNT_STREAM, HOT_STREAM, MINUTE_COUNTER,
};
use muppet_core::event::Event;
use muppet_core::json::Json;
use muppet_core::operator::{Emitter, Updater};
use muppet_core::slate::Slate;
use muppet_core::time::day_index;
use muppet_runtime::engine::{
    Engine, EngineConfig, EngineStats, OperatorSet, DEFAULT_CACHE_SHARDS, DEFAULT_DRAIN_BATCH,
};
use muppet_runtime::overflow::OverflowPolicy;
use muppet_workloads::tweets::TweetGenerator;

use crate::table::{rate, us, Table};
use crate::Scale;

const MACHINES: usize = 3;
const WORKERS: usize = 2;

/// U1 exactly as the seed wrote it: parse the slate payload from bytes,
/// rebuild the document, serialize it back — on every single event.
struct SeedMinuteCounter;

impl Updater for SeedMinuteCounter {
    fn name(&self) -> &str {
        MINUTE_COUNTER
    }

    fn update(&self, ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        let ts = Json::parse_bytes(&event.value)
            .ok()
            .and_then(|v| v.get("ts").and_then(Json::as_u64))
            .unwrap_or(event.ts);
        let day = day_index(ts);
        let (mut count, slate_day) = match slate.as_json() {
            Some(v) => (
                v.get("count").and_then(Json::as_u64).unwrap_or(0),
                v.get("day").and_then(Json::as_u64).unwrap_or(day),
            ),
            None => (0, day),
        };
        if slate_day != day {
            count = 0;
        }
        count += 1;
        let doc = Json::obj([("count", Json::num(count as f64)), ("day", Json::num(day as f64))]);
        slate.replace(doc.to_compact().into_bytes()); // the per-event serialization
        let out = Json::obj([("count", Json::num(count as f64)), ("ts", Json::num(ts as f64))]);
        ctx.publish(COUNT_STREAM, event.key.clone(), out.to_compact().into_bytes());
    }
}

/// U2 exactly as the seed wrote it (see [`SeedMinuteCounter`]).
struct SeedHotDetector {
    threshold: f64,
}

impl Updater for SeedHotDetector {
    fn name(&self) -> &str {
        hot_topics::HOT_DETECTOR
    }

    fn update(&self, ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        let v = match Json::parse_bytes(&event.value) {
            Ok(v) => v,
            Err(_) => return,
        };
        let count = v.get("count").and_then(Json::as_u64).unwrap_or(0);
        let ts = v.get("ts").and_then(Json::as_u64).unwrap_or(event.ts);
        let day = day_index(ts);
        let state = slate.as_json().unwrap_or_else(|| {
            Json::obj([
                ("total_count", Json::num(0)),
                ("days", Json::num(0)),
                ("last_day", Json::num(day as f64)),
                ("today_count", Json::num(0)),
                ("emitted_day", Json::Null),
            ])
        });
        let mut total = state.get("total_count").and_then(Json::as_u64).unwrap_or(0);
        let mut days = state.get("days").and_then(Json::as_u64).unwrap_or(0);
        let mut last_day = state.get("last_day").and_then(Json::as_u64).unwrap_or(day);
        let mut today_count = state.get("today_count").and_then(Json::as_u64).unwrap_or(0);
        let mut emitted_day = state.get("emitted_day").and_then(Json::as_u64);
        if day != last_day {
            total += today_count;
            days += 1;
            today_count = 0;
            last_day = day;
        }
        today_count = today_count.max(count);
        if days > 0 {
            let avg = total as f64 / days as f64;
            if avg > 0.0 && (count as f64 / avg) > self.threshold && emitted_day != Some(day) {
                let out = Json::obj([("count", Json::num(count as f64)), ("avg", Json::num(avg))]);
                ctx.publish(HOT_STREAM, event.key.clone(), out.to_compact().into_bytes());
                emitted_day = Some(day);
            }
        }
        let doc = Json::obj([
            ("total_count", Json::num(total as f64)),
            ("days", Json::num(days as f64)),
            ("last_day", Json::num(last_day as f64)),
            ("today_count", Json::num(today_count as f64)),
            ("emitted_day", emitted_day.map(|d| Json::num(d as f64)).unwrap_or(Json::Null)),
        ]);
        slate.replace(doc.to_compact().into_bytes()); // the per-event serialization
    }
}

struct Outcome {
    stats: EngineStats,
    elapsed: Duration,
    parses: u64,
    serializations: u64,
    drain_p50: u64,
}

fn run_arm(events: &[Event], ops: OperatorSet, cache_shards: usize, drain_batch: usize) -> Outcome {
    let cfg = EngineConfig {
        machines: MACHINES,
        workers_per_machine: WORKERS,
        queue_capacity: 1 << 14,
        // Loss-free: every arm processes the identical event set, so
        // events/s ratios compare equal work.
        overflow: OverflowPolicy::SourceThrottle,
        cache_shards,
        drain_batch_max: drain_batch,
        ..EngineConfig::default()
    };
    let engine = Engine::start(hot_topics::workflow(), ops, cfg, None).unwrap();
    let (parses0, sers0) = muppet_core::slate::repr_counters();
    let t0 = Instant::now();
    for ev in events {
        engine.submit(ev.clone()).expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(180)), "arm did not drain");
    let elapsed = t0.elapsed();
    // Snapshot the repr counters before shutdown: the graceful final
    // flush serializes every resident slate once (the byte boundary),
    // which is teardown, not hot path.
    let (parses1, sers1) = muppet_core::slate::repr_counters();
    let stats = engine.stats();
    let drain_p50 = stats.drain.p50;
    engine.shutdown();
    Outcome { stats, elapsed, parses: parses1 - parses0, serializations: sers1 - sers0, drain_p50 }
}

fn arm_json(name: &str, n: usize, o: &Outcome) -> Json {
    let secs = o.elapsed.as_secs_f64().max(1e-9);
    Json::obj([
        ("arm", Json::str(name)),
        ("events", Json::num(n as f64)),
        ("processed", Json::num(o.stats.processed as f64)),
        ("wall_ms", Json::num(o.elapsed.as_secs_f64() * 1e3)),
        ("events_per_sec", Json::num(n as f64 / secs)),
        ("p50_e2e_us", Json::num(o.stats.latency.p50_us as f64)),
        ("p99_e2e_us", Json::num(o.stats.latency.p99_us as f64)),
        ("slate_parses", Json::num(o.parses as f64)),
        ("slate_serializations", Json::num(o.serializations as f64)),
        ("parses_per_processed", Json::num(o.parses as f64 / (o.stats.processed as f64).max(1.0))),
        ("cache_shards", Json::num(o.stats.cache.shards as f64)),
        ("drain_batch_p50", Json::num(o.drain_p50 as f64)),
    ])
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X17",
        "the per-event hot path: resident slates, sharded cache, batch drains (hot_topics)",
        "§4.1 per-event processing; §4.5 central cache + worker pool",
    );
    let n = scale.events(60_000);
    let events: Vec<Event> = TweetGenerator::new(42, 2_000, 40.0).take(hot_topics::TWEET_STREAM, n);

    let seed_ops = || {
        OperatorSet::new()
            .mapper(TopicMapper::new())
            .updater(SeedMinuteCounter)
            .updater(SeedHotDetector { threshold: 3.0 })
    };
    let resident_ops = || {
        OperatorSet::new()
            .mapper(TopicMapper::new())
            .updater(MinuteCounter::new())
            .updater(HotDetector::new(3.0))
    };

    let arms: Vec<(&str, Outcome)> = vec![
        ("seed-bytes", run_arm(&events, seed_ops(), 1, 1)),
        ("resident", run_arm(&events, resident_ops(), 1, 1)),
        ("resident+shard", run_arm(&events, resident_ops(), DEFAULT_CACHE_SHARDS, 1)),
        (
            "resident+shard+batch",
            run_arm(&events, resident_ops(), DEFAULT_CACHE_SHARDS, DEFAULT_DRAIN_BATCH),
        ),
    ];

    let mut table = Table::new([
        "arm",
        "events",
        "wall time",
        "events/s",
        "slate parses",
        "slate serializations",
        "drain p50",
        "p99 e2e",
    ]);
    for (name, o) in &arms {
        table.row([
            name.to_string(),
            n.to_string(),
            format!("{:.2?}", o.elapsed),
            rate(n, o.elapsed),
            o.parses.to_string(),
            o.serializations.to_string(),
            o.drain_p50.to_string(),
            us(o.stats.latency.p99_us),
        ]);
    }
    table.print();

    // Every arm runs loss-free over the identical stream, so the work is
    // comparable event for event.
    let processed: Vec<u64> = arms.iter().map(|(_, o)| o.stats.processed).collect();
    assert!(
        processed.iter().all(|&p| p == processed[0] && p > 0),
        "all arms must process the identical event set: {processed:?}"
    );

    let seed = &arms[0].1;
    let full = &arms[3].1;
    let speedup = seed.elapsed.as_secs_f64() / full.elapsed.as_secs_f64().max(1e-9);
    println!(
        "\nshape check: the fully-optimized hot path delivers {speedup:.2}× the seed-path \
         events/s; slate parses per processed event fell from {:.2} to {:.4} (resident \
         slates parse on cache faults, not per event) and the optimized arm drains a \
         median of {} events per queue lock",
        seed.parses as f64 / seed.stats.processed.max(1) as f64,
        full.parses as f64 / full.stats.processed.max(1) as f64,
        full.drain_p50,
    );
    // Gate CI on the deterministic allocation-proxy contrast, not wall
    // time (shared runners make timing unreliable; the committed
    // full-scale numbers live in BENCH_x17.json). The seed arms re-parse
    // per updater delivery; the resident arms parse only on faults.
    assert!(
        seed.parses >= seed.stats.processed / 2,
        "seed arm must pay a slate parse per updater delivery ({} parses / {} processed)",
        seed.parses,
        seed.stats.processed
    );
    assert!(
        full.parses < seed.parses / 10,
        "resident slates must eliminate the per-event slate parse ({} vs {})",
        full.parses,
        seed.parses
    );
    assert!(
        full.serializations < seed.stats.processed / 10,
        "resident slates must not serialize per event ({} serializations)",
        full.serializations
    );

    let doc = Json::obj([
        ("experiment", Json::str("x17")),
        ("workload", Json::str("hot_topics tweets (JSON slates)")),
        ("machines", Json::num(MACHINES as f64)),
        ("workers_per_machine", Json::num(WORKERS as f64)),
        ("events", Json::num(n as f64)),
        ("speedup_full_vs_seed", Json::num((speedup * 100.0).round() / 100.0)),
        ("arms", Json::arr(arms.iter().map(|(name, o)| arm_json(name, n, o)))),
    ]);
    std::fs::write("BENCH_x17.json", doc.to_pretty())
        .unwrap_or_else(|e| eprintln!("could not write BENCH_x17.json: {e}"));
    println!("\nwrote BENCH_x17.json");
}
