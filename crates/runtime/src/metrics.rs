//! Latency histograms and counters — re-exported from `muppet-obs`.
//!
//! The concrete types moved into the observability crate (`crates/obs`)
//! when the unified metrics registry landed, so every layer of the
//! workspace (net, slatestore, bench) can record into the same
//! histogram type. This module keeps the runtime's original import
//! paths working: `muppet_runtime::metrics::{Histogram, LatencySummary}`.

pub use muppet_obs::{Histogram, LatencySummary};
