//! Map and Update functions — the user-written code of a MapUpdate
//! application, transliterated from the paper's Java interfaces
//! (Appendix A, Figures 3 and 4).
//!
//! Both operator kinds subscribe to one or more streams and are fed events
//! in increasing timestamp order. Both may publish new events. Only
//! updaters receive a [`Slate`]. Implementations must be `Send + Sync`
//! because Muppet 2.0 constructs each function once and shares it across
//! every worker thread on the machine (§4.5).

use bytes::Bytes;

use crate::event::{EmitRecord, Event, Key, StreamId};
use crate::slate::Slate;

/// The event-publication context handed to operators — the analogue of the
/// paper's `PerformerUtilities` submitter.
///
/// Output timestamps are assigned by the runtime as *input ts + 1*, which
/// enforces §3's rule that "each output event has a timestamp greater than
/// the timestamp of the input event" and keeps cyclic workflows
/// well-defined. Operators only choose the destination stream, key, and
/// payload.
pub trait Emitter {
    /// Publish an event to `stream` (cf. `submitter.publish("S_2", ...)` in
    /// Figure 3). The runtime may reject unknown or external streams; such
    /// errors surface when the executor processes the emission, not here.
    fn publish(&mut self, stream: &str, key: Key, value: Vec<u8>);

    /// Publish with a shared payload, avoiding a copy on fan-out.
    fn publish_shared(&mut self, stream: &str, key: Key, value: Bytes);
}

/// A buffering [`Emitter`] that records emissions for the executor to admit
/// afterwards. This is what both the reference executor and the runtime
/// engines pass into operators.
#[derive(Debug, Default)]
pub struct VecEmitter {
    records: Vec<EmitRecord>,
}

impl VecEmitter {
    /// An empty emitter buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain the buffered emissions.
    pub fn take(&mut self) -> Vec<EmitRecord> {
        std::mem::take(&mut self.records)
    }

    /// Number of buffered emissions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Reuse the allocation across events (hot path in the engines).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Borrow the buffered emissions without draining.
    pub fn records(&self) -> &[EmitRecord] {
        &self.records
    }
}

impl Emitter for VecEmitter {
    fn publish(&mut self, stream: &str, key: Key, value: Vec<u8>) {
        self.records.push(EmitRecord {
            stream: StreamId::from(stream),
            key,
            value: Bytes::from(value),
        });
    }

    fn publish_shared(&mut self, stream: &str, key: Key, value: Bytes) {
        self.records.push(EmitRecord { stream: StreamId::from(stream), key, value });
    }
}

/// A map function: stateless, event in → zero or more events out (§3).
///
/// The Rust port of the paper's `Mapper` interface (Figure 3). `map` takes
/// `&self` — Muppet 2.0 shares a single instance across threads, so any
/// internal state must be synchronized (and the paper discourages operator
/// state outside slates entirely).
pub trait Mapper: Send + Sync + 'static {
    /// Unique name of this map function within the application. Names
    /// identify functions because the same implementation can be reused as
    /// different functions (Appendix A).
    fn name(&self) -> &str;

    /// Process one event; publish outputs via `ctx`.
    fn map(&self, ctx: &mut dyn Emitter, event: &Event);
}

/// An update function: stateful via its per-key [`Slate`] (§3).
///
/// The Rust port of the paper's `Updater` interface (Figure 4). When the
/// slate for ⟨self, event.key⟩ does not exist yet (first event, or TTL
/// expiry), `update` receives an empty slate and must initialize it.
pub trait Updater: Send + Sync + 'static {
    /// Unique name of this update function within the application.
    fn name(&self) -> &str;

    /// Process one event, mutating the slate for `event.key` and optionally
    /// publishing new events.
    fn update(&self, ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate);

    /// Slate time-to-live in seconds; `None` means "forever" (the default,
    /// §3). The runtime and the key-value store garbage-collect slates not
    /// written for longer than this, resetting them to empty.
    fn slate_ttl_secs(&self) -> Option<u64> {
        None
    }

    /// Optional associative merge over this updater's *event payloads* (the
    /// classic MapReduce combiner, declared rather than inferred). `None`
    /// (the default) means the updater does not combine and every event is
    /// delivered individually.
    ///
    /// The contract for a `Some(merged)` return is fold-equivalence: for any
    /// run of same-key events `e1..en`, delivering one event whose payload is
    /// `combine(..combine(e1, e2).., en)` must leave the slate bit-identical
    /// to delivering `e1..en` one at a time. The runtime exploits this in the
    /// sender outbox, the local dispatch drain, and hot-key split/merge; an
    /// updater that also wants dynamic key splitting must additionally make
    /// `combine` total over *slate byte images* (e.g. decimal counter text),
    /// because split subslates are merged on read through the same function.
    ///
    /// Returning `None` from any particular call vetoes the fold for that
    /// pair — both payloads are then delivered individually.
    fn combine(&self, _acc: &[u8], _next: &[u8]) -> Option<Vec<u8>> {
        None
    }

    /// True when this updater declares a combiner. Implementations that
    /// override [`Updater::combine`] must override this too; the runtime
    /// uses it as a cheap gate before attempting any fold.
    fn combines(&self) -> bool {
        false
    }
}

/// A pre-aggregated delta: the payload of one wire/dispatch event that
/// absorbed `count` original events through a declared [`Updater::combine`].
/// Carried alongside the folded event so receivers can account for the
/// original event count (loss ledgers, metrics) without unfolding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinedUpdate {
    /// The folded payload, `combine`-equivalent to the absorbed run.
    pub value: Bytes,
    /// How many original events this payload absorbed (≥ 1).
    pub count: u64,
}

/// Blanket adapters so closures can serve as quick mappers in tests and
/// examples: `FnMapper::new("M1", |ctx, ev| ...)`.
pub struct FnMapper<F> {
    name: String,
    f: F,
}

impl<F> FnMapper<F>
where
    F: Fn(&mut dyn Emitter, &Event) + Send + Sync + 'static,
{
    /// Wrap a closure as a named [`Mapper`].
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnMapper { name: name.into(), f }
    }
}

impl<F> Mapper for FnMapper<F>
where
    F: Fn(&mut dyn Emitter, &Event) + Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, ctx: &mut dyn Emitter, event: &Event) {
        (self.f)(ctx, event)
    }
}

/// Boxed combiner closure carried by [`FnUpdater::with_combiner`].
type CombineFn = Box<dyn Fn(&[u8], &[u8]) -> Option<Vec<u8>> + Send + Sync>;

/// Closure adapter for updaters: `FnUpdater::new("U1", |ctx, ev, slate| ...)`.
pub struct FnUpdater<F> {
    name: String,
    ttl_secs: Option<u64>,
    combiner: Option<CombineFn>,
    f: F,
}

impl<F> FnUpdater<F>
where
    F: Fn(&mut dyn Emitter, &Event, &mut Slate) + Send + Sync + 'static,
{
    /// Wrap a closure as a named [`Updater`].
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnUpdater { name: name.into(), ttl_secs: None, combiner: None, f }
    }

    /// Set the slate TTL (seconds).
    pub fn with_ttl_secs(mut self, secs: u64) -> Self {
        self.ttl_secs = Some(secs);
        self
    }

    /// Declare an associative payload combiner (see [`Updater::combine`]).
    pub fn with_combiner(
        mut self,
        c: impl Fn(&[u8], &[u8]) -> Option<Vec<u8>> + Send + Sync + 'static,
    ) -> Self {
        self.combiner = Some(Box::new(c));
        self
    }
}

impl<F> Updater for FnUpdater<F>
where
    F: Fn(&mut dyn Emitter, &Event, &mut Slate) + Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn update(&self, ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        (self.f)(ctx, event, slate)
    }

    fn slate_ttl_secs(&self) -> Option<u64> {
        self.ttl_secs
    }

    fn combine(&self, acc: &[u8], next: &[u8]) -> Option<Vec<u8>> {
        self.combiner.as_ref().and_then(|c| c(acc, next))
    }

    fn combines(&self) -> bool {
        self.combiner.is_some()
    }
}

/// The decimal-text sum combiner shared by counter-style updaters: both
/// inputs parse as decimal u64 text (the [`Slate::incr_counter`] byte
/// representation and the usual `{delta}`-as-text payload), the output is
/// their sum as decimal text. Total over slate byte images, so updaters
/// built on it are eligible for dynamic key splitting.
pub fn combine_decimal_sum(acc: &[u8], next: &[u8]) -> Option<Vec<u8>> {
    let a: u64 = std::str::from_utf8(acc).ok()?.trim().parse().ok()?;
    let b: u64 = std::str::from_utf8(next).ok()?.trim().parse().ok()?;
    Some(a.checked_add(b)?.to_string().into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_emitter_buffers_in_order() {
        let mut em = VecEmitter::new();
        assert!(em.is_empty());
        em.publish("S2", Key::from("a"), b"1".to_vec());
        em.publish_shared("S3", Key::from("b"), Bytes::from_static(b"2"));
        assert_eq!(em.len(), 2);
        let recs = em.take();
        assert_eq!(recs[0].stream.as_str(), "S2");
        assert_eq!(recs[0].key, Key::from("a"));
        assert_eq!(recs[1].stream.as_str(), "S3");
        assert_eq!(recs[1].value.as_ref(), b"2");
        assert!(em.is_empty());
    }

    #[test]
    fn fn_mapper_runs_closure() {
        let m = FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        });
        assert_eq!(m.name(), "M1");
        let mut em = VecEmitter::new();
        let ev = Event::new("S1", 5, Key::from("k"), "v");
        m.map(&mut em, &ev);
        assert_eq!(em.records().len(), 1);
        assert_eq!(em.records()[0].stream.as_str(), "S2");
    }

    #[test]
    fn fn_updater_mutates_slate_and_reports_ttl() {
        let u = FnUpdater::new("U1", |_ctx: &mut dyn Emitter, _ev: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        })
        .with_ttl_secs(3600);
        assert_eq!(u.name(), "U1");
        assert_eq!(u.slate_ttl_secs(), Some(3600));
        let mut em = VecEmitter::new();
        let mut slate = Slate::empty();
        let ev = Event::new("S2", 5, Key::from("walmart"), "checkin");
        u.update(&mut em, &ev, &mut slate);
        u.update(&mut em, &ev, &mut slate);
        assert_eq!(slate.counter(), 2);
        assert!(em.is_empty());
    }

    #[test]
    fn operators_are_object_safe() {
        // The engines hold `Arc<dyn Mapper>` / `Arc<dyn Updater>`.
        let m: std::sync::Arc<dyn Mapper> =
            std::sync::Arc::new(FnMapper::new("M", |_: &mut dyn Emitter, _: &Event| {}));
        let u: std::sync::Arc<dyn Updater> = std::sync::Arc::new(FnUpdater::new(
            "U",
            |_: &mut dyn Emitter, _: &Event, _: &mut Slate| {},
        ));
        assert_eq!(m.name(), "M");
        assert_eq!(u.name(), "U");
        assert_eq!(u.slate_ttl_secs(), None);
    }

    #[test]
    fn combiner_defaults_off_and_opt_in_folds() {
        let plain = FnUpdater::new("U", |_: &mut dyn Emitter, _: &Event, s: &mut Slate| {
            s.incr_counter(1);
        });
        assert!(!plain.combines());
        assert_eq!(plain.combine(b"1", b"2"), None);

        let combining = FnUpdater::new("U", |_: &mut dyn Emitter, ev: &Event, s: &mut Slate| {
            let d: u64 = std::str::from_utf8(&ev.value).unwrap().trim().parse().unwrap();
            s.incr_counter(d);
        })
        .with_combiner(combine_decimal_sum);
        assert!(combining.combines());
        assert_eq!(combining.combine(b"3", b"4"), Some(b"7".to_vec()));
        // Non-numeric payloads veto the fold rather than corrupting it.
        assert_eq!(combining.combine(b"3", b"x"), None);

        // Fold-equivalence: one combined delivery ≡ the per-event run.
        let mut em = VecEmitter::new();
        let mut folded = Slate::empty();
        let merged = combining.combine(combining.combine(b"1", b"1").unwrap().as_slice(), b"1");
        let ev = Event::new("S2", 5, Key::from("k"), merged.unwrap());
        combining.update(&mut em, &ev, &mut folded);
        let mut one_by_one = Slate::empty();
        for _ in 0..3 {
            let ev = Event::new("S2", 5, Key::from("k"), "1");
            combining.update(&mut em, &ev, &mut one_by_one);
        }
        assert_eq!(folded.bytes(), one_by_one.bytes());
    }

    #[test]
    fn combined_update_carries_count() {
        let cu = CombinedUpdate { value: Bytes::from_static(b"12"), count: 12 };
        assert_eq!(cu.clone(), cu);
        assert_eq!(cu.count, 12);
    }

    #[test]
    fn combining_updaters_stay_object_safe() {
        let u: std::sync::Arc<dyn Updater> = std::sync::Arc::new(
            FnUpdater::new("U", |_: &mut dyn Emitter, _: &Event, _: &mut Slate| {})
                .with_combiner(combine_decimal_sum),
        );
        assert!(u.combines());
        assert_eq!(u.combine(b"10", b"1"), Some(b"11".to_vec()));
    }

    #[test]
    fn emitter_clear_reuses_buffer() {
        let mut em = VecEmitter::new();
        em.publish("S2", Key::from("a"), vec![1]);
        em.clear();
        assert!(em.is_empty());
        em.publish("S2", Key::from("b"), vec![2]);
        assert_eq!(em.len(), 1);
    }
}
