//! Bloom filters for SSTables.
//!
//! Every SSTable carries a bloom filter over its cell keys so point reads
//! skip tables that cannot contain the key — essential once compaction
//! lets multiple overlapping tables accumulate ("the more times a row is
//! flushed to disk ... the more files will have to be checked for the row
//! when it needs to be retrieved", §4.2).
//!
//! Double hashing (Kirsch–Mitzenmacher): probe i uses `h1 + i·h2`.

use muppet_core::codec::{get_u64, put_u64};
use muppet_core::hash::{fx64, mix64};

use crate::types::{StoreError, StoreResult};

/// A fixed-size bloom filter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    k: u32,
}

impl BloomFilter {
    /// Size the filter for `expected_items` at roughly `fp_rate` false
    /// positives (clamped to sane ranges).
    pub fn with_capacity(expected_items: usize, fp_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = fp_rate.clamp(1e-6, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let m_bits = (-(n * p.ln()) / (ln2 * ln2)).ceil().max(64.0) as usize;
        let k = ((m_bits as f64 / n) * ln2).round().clamp(1.0, 16.0) as u32;
        BloomFilter { bits: vec![0u64; m_bits.div_ceil(64)], k }
    }

    #[inline]
    fn probes(&self, item: &[u8]) -> impl Iterator<Item = usize> + '_ {
        let h1 = fx64(item);
        let h2 = mix64(h1) | 1;
        let m = self.bits.len() as u64 * 64;
        (0..self.k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Insert an item.
    pub fn insert(&mut self, item: &[u8]) {
        let positions: Vec<usize> = self.probes(item).collect();
        for pos in positions {
            self.bits[pos / 64] |= 1 << (pos % 64);
        }
    }

    /// Whether the item *might* be present (false positives possible,
    /// false negatives impossible).
    pub fn may_contain(&self, item: &[u8]) -> bool {
        self.probes(item).all(|pos| self.bits[pos / 64] & (1 << (pos % 64)) != 0)
    }

    /// Serialized representation: `[k: u64][nwords: u64][words...]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.bits.len() * 8);
        put_u64(&mut out, self.k as u64);
        put_u64(&mut out, self.bits.len() as u64);
        for &w in &self.bits {
            put_u64(&mut out, w);
        }
        out
    }

    /// Parse a serialized filter.
    pub fn from_bytes(data: &[u8]) -> StoreResult<Self> {
        let k = get_u64(data, 0).ok_or_else(|| StoreError::Corrupt("bloom: truncated k".into()))?;
        let n =
            get_u64(data, 8).ok_or_else(|| StoreError::Corrupt("bloom: truncated len".into()))?;
        let n =
            usize::try_from(n).map_err(|_| StoreError::Corrupt("bloom: len overflow".into()))?;
        if data.len() != 16 + n * 8 {
            return Err(StoreError::Corrupt("bloom: length mismatch".into()));
        }
        if !(1..=64).contains(&k) {
            return Err(StoreError::Corrupt("bloom: bad k".into()));
        }
        // lint: allow(no-unwrap-in-prod) — length validated as exactly 16 + n*8 above
        let bits = (0..n).map(|i| get_u64(data, 16 + i * 8).expect("bounds checked")).collect();
        Ok(BloomFilter { bits, k: k as u32 })
    }

    /// Bits allocated (diagnostics).
    pub fn bit_len(&self) -> usize {
        self.bits.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::with_capacity(1000, 0.01);
        let items: Vec<String> = (0..1000).map(|i| format!("slate-key-{i}")).collect();
        for item in &items {
            bf.insert(item.as_bytes());
        }
        for item in &items {
            assert!(bf.may_contain(item.as_bytes()), "false negative on {item}");
        }
    }

    #[test]
    fn false_positive_rate_is_plausible() {
        let mut bf = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000 {
            bf.insert(format!("present-{i}").as_bytes());
        }
        let fps = (0..10_000).filter(|i| bf.may_contain(format!("absent-{i}").as_bytes())).count();
        // Target 1%; accept up to 3% to avoid flakiness.
        assert!(fps < 300, "false positive count {fps} too high");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bf = BloomFilter::with_capacity(100, 0.01);
        assert!(!bf.may_contain(b"anything"));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut bf = BloomFilter::with_capacity(50, 0.05);
        for i in 0..50 {
            bf.insert(format!("row-{i}").as_bytes());
        }
        let bytes = bf.to_bytes();
        let back = BloomFilter::from_bytes(&bytes).unwrap();
        assert_eq!(back, bf);
        for i in 0..50 {
            assert!(back.may_contain(format!("row-{i}").as_bytes()));
        }
    }

    #[test]
    fn deserialization_rejects_corruption() {
        assert!(BloomFilter::from_bytes(&[]).is_err());
        assert!(BloomFilter::from_bytes(&[0u8; 15]).is_err());
        let mut bytes = BloomFilter::with_capacity(10, 0.1).to_bytes();
        bytes.pop();
        assert!(BloomFilter::from_bytes(&bytes).is_err());
        // k = 0 is invalid.
        let mut zero_k = Vec::new();
        put_u64(&mut zero_k, 0);
        put_u64(&mut zero_k, 1);
        put_u64(&mut zero_k, 0);
        assert!(BloomFilter::from_bytes(&zero_k).is_err());
    }

    #[test]
    fn tiny_capacity_does_not_panic() {
        let mut bf = BloomFilter::with_capacity(0, 0.000001);
        bf.insert(b"x");
        assert!(bf.may_contain(b"x"));
    }
}
