//! The HTTP slate-read service (§4.4).
//!
//! "Muppet provides a small HTTP server on each node for slate fetches.
//! The URI of a slate fetch includes the name of the updater and the key of
//! the slate ... The fetch retrieves the slate from Muppet's slate cache
//! ... rather than from the durable key-value store to ensure an up-to-date
//! reply." It also serves "basic status information (such as the event
//! count of the largest event queues)" (§4.5).
//!
//! Endpoints:
//! * `GET /slate/<updater>/<percent-encoded key>` → slate bytes or 404;
//! * `GET /status` → JSON engine statistics.
//!
//! Minimal HTTP/1.1: request-line parsing, `Connection: close`, explicit
//! `Content-Length`. No external dependencies.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use muppet_core::event::Key;

/// What the server needs from its host engine. `Engine` implements this;
/// tests can substitute a stub.
pub trait SlateReader: Send + Sync + 'static {
    /// Current bytes of ⟨updater, key⟩'s slate, from the cache.
    fn fetch_slate(&self, updater: &str, key: &Key) -> Option<Vec<u8>>;
    /// A JSON status document.
    fn status_json(&self) -> String;
    /// The currently-cached keys of one updater (the `/keys/<updater>`
    /// endpoint) — §5's bulk-read pain point was that "the query agent
    /// must know all the slate keys in advance to enumerate the slate
    /// requests"; this endpoint removes that requirement.
    fn list_keys(&self, _updater: &str) -> Vec<Key> {
        Vec::new()
    }

    /// Ingest one external event (`POST /submit/<stream>/<key>`, body =
    /// value). How `muppetd` nodes receive traffic; the engine routes the
    /// event to its owning machine over the cluster wire. Default:
    /// unsupported.
    fn submit_event(&self, _stream: &str, _key: Key, _value: Vec<u8>) -> Result<(), String> {
        Err("ingest not supported".to_string())
    }

    /// Reserve a cluster id for a joining node (`POST /join`, body =
    /// `host:port:http_port`). Returns the grant document the joiner
    /// parses (id/epoch/base/failed header + the topology TOML). Master
    /// nodes only; default: unsupported.
    fn reserve_join(&self, _spec: &str) -> Result<String, String> {
        Err("join not supported".to_string())
    }

    /// The node's membership view (`GET /membership`): epoch, node list,
    /// failed machines, as JSON.
    fn membership_json(&self) -> String {
        "{}".to_string()
    }

    /// The Prometheus text exposition (`GET /metrics`). `None` means the
    /// host has no metrics registry and the endpoint serves 404.
    fn metrics_text(&self) -> Option<String> {
        None
    }

    /// The dead-letter queue contents (`GET /dlq`), newest last, as a
    /// JSON array. Default: empty (no DLQ attached).
    fn dlq_json(&self) -> String {
        "[]".to_string()
    }

    /// Re-inject every dead-lettered event (`POST /dlq/retry`). Returns
    /// how many events went back into the pipeline. Default: unsupported.
    fn dlq_retry(&self) -> Result<usize, String> {
        Err("dlq not supported".to_string())
    }
}

impl SlateReader for crate::engine::Engine {
    fn fetch_slate(&self, updater: &str, key: &Key) -> Option<Vec<u8>> {
        self.read_slate(updater, key)
    }

    fn list_keys(&self, updater: &str) -> Vec<Key> {
        self.cached_keys(updater)
    }

    fn metrics_text(&self) -> Option<String> {
        Some(self.metrics_text())
    }

    fn dlq_json(&self) -> String {
        self.dlq_json()
    }

    fn dlq_retry(&self) -> Result<usize, String> {
        Ok(self.dlq_retry())
    }

    fn status_json(&self) -> String {
        use muppet_core::json::Json;
        let s = self.stats();
        Json::obj([
            ("uptime_s", Json::num(self.uptime_s() as f64)),
            (
                "machine_id",
                match self.local_machine() {
                    Some(id) => Json::num(id as f64),
                    None => Json::Null,
                },
            ),
            ("protocol_version", Json::num(muppet_net::frame::PROTOCOL_VERSION as f64)),
            ("submitted", Json::num(s.submitted as f64)),
            ("processed", Json::num(s.processed as f64)),
            ("emitted", Json::num(s.emitted as f64)),
            ("dropped_overflow", Json::num(s.dropped_overflow as f64)),
            ("lost_machine_failure", Json::num(s.lost_machine_failure as f64)),
            ("lost_in_queues", Json::num(s.lost_in_queues as f64)),
            ("forwarded", Json::num(s.forwarded as f64)),
            ("combined_events_total", Json::num(s.combined_events as f64)),
            ("split_keys_active", Json::num(s.split_keys_active as f64)),
            ("split_merge_reads_total", Json::num(s.split_merge_reads as f64)),
            ("epoch", Json::num(s.epoch as f64)),
            ("machines", Json::num(self.machine_count() as f64)),
            ("max_queue_high_water", Json::num(self.max_queue_high_water() as f64)),
            ("cache_entries", Json::num(s.cache.entries as f64)),
            ("cache_hits", Json::num(s.cache.hits as f64)),
            ("cache_misses", Json::num(s.cache.misses as f64)),
            // Per-machine shard count — the length of cache_shard_hits
            // below (EngineStats::cache.shards is the cross-machine sum).
            ("cache_shards", Json::num(self.cache_shard_stats().len() as f64)),
            ("drain_batches", Json::num(s.drain.drains as f64)),
            ("drain_batch_mean", Json::num(s.drain.mean as f64)),
            ("drain_batch_p50", Json::num(s.drain.p50 as f64)),
            ("drain_batch_p99", Json::num(s.drain.p99 as f64)),
            ("drain_batch_max", Json::num(s.drain.max as f64)),
            (
                "cache_shard_hits",
                Json::Arr(
                    self.cache_shard_stats()
                        .into_iter()
                        .map(|sh| Json::num(sh.hits as f64))
                        .collect(),
                ),
            ),
            ("p99_latency_us", Json::num(s.latency.p99_us as f64)),
            // The write-behind store pipeline (DESIGN.md §9).
            ("store_flush_batches", Json::num(s.store.flush_batches as f64)),
            ("store_flush_batch_p50", Json::num(s.store.flush_batch_p50 as f64)),
            ("store_flush_batch_largest", Json::num(s.store.flush_batch_largest as f64)),
            ("store_round_trips", Json::num(s.store.store_round_trips as f64)),
            ("store_miss_coalesced", Json::num(s.store.miss_coalesced as f64)),
            // Crash recovery (DESIGN.md §11): ingest WAL + DLQ state.
            ("recovered_replayed", Json::num(self.recovered_replayed() as f64)),
            (
                "ingest_wal_records",
                match self.ingest_wal_stats() {
                    Some((records, _)) => Json::num(records as f64),
                    None => Json::Null,
                },
            ),
            (
                "ingest_wal_syncs",
                match self.ingest_wal_stats() {
                    Some((_, syncs)) => Json::num(syncs as f64),
                    None => Json::Null,
                },
            ),
            ("dlq_depth", Json::num(self.dlq().depth() as f64)),
            ("dlq_added", Json::num(self.dlq().added() as f64)),
            ("dlq_dropped", Json::num(self.dlq().dropped() as f64)),
            ("dlq_retried", Json::num(self.dlq().retried() as f64)),
            ("net_frames_sent", Json::num(s.net.frames_sent as f64)),
            ("net_batches_sent", Json::num(s.net.batches_sent as f64)),
            ("net_outbound_backlog", Json::num(s.net.outbound_backlog as f64)),
            (
                "failed_machines",
                Json::Arr(
                    self.failed_machines().into_iter().map(|m| Json::num(m as f64)).collect(),
                ),
            ),
        ])
        .to_compact()
    }

    fn submit_event(&self, stream: &str, key: Key, value: Vec<u8>) -> Result<(), String> {
        self.submit_kv(stream, key, value).map_err(|e| e.to_string())
    }

    fn reserve_join(&self, spec: &str) -> Result<String, String> {
        let fields: Vec<&str> = spec.trim().split(':').collect();
        if fields.len() != 3 {
            return Err("join body must be host:port:http_port".to_string());
        }
        let port: u16 = fields[1].parse().map_err(|_| "bad port".to_string())?;
        let http_port: u16 = fields[2].parse().map_err(|_| "bad http_port".to_string())?;
        let grant =
            self.admin_reserve_join(fields[0], port, http_port).map_err(|e| e.to_string())?;
        // Grant document: a one-line header the joiner parses by hand,
        // then the topology in the TOML subset `muppetd --config` already
        // understands.
        let failed = grant.failed.iter().map(|m| m.to_string()).collect::<Vec<_>>().join(",");
        let members = grant.members.iter().map(|m| m.to_string()).collect::<Vec<_>>().join(",");
        let store_host = grant.store_host.map(|h| format!(" store_host={h}")).unwrap_or_default();
        Ok(format!(
            "id={} epoch={} base={} failed={} members={}{}\n{}",
            grant.id,
            grant.epoch,
            grant.base,
            failed,
            members,
            store_host,
            grant.topology.to_toml()
        ))
    }

    fn membership_json(&self) -> String {
        use muppet_core::json::Json;
        let (epoch, nodes, failed) = self.membership_view();
        Json::obj([
            ("epoch", Json::num(epoch as f64)),
            ("failed", Json::Arr(failed.into_iter().map(|m| Json::num(m as f64)).collect())),
            (
                "nodes",
                Json::Arr(
                    nodes
                        .into_iter()
                        .map(|n| {
                            Json::obj([
                                ("id", Json::num(n.id as f64)),
                                ("host", Json::str(&n.host)),
                                ("port", Json::num(n.port as f64)),
                                ("http_port", Json::num(n.http_port as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_compact()
    }
}

/// A running slate-read HTTP server.
pub struct HttpSlateServer {
    port: u16,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpSlateServer {
    /// Bind to an ephemeral port on localhost and serve `reader`.
    pub fn serve(reader: Arc<dyn SlateReader>) -> std::io::Result<HttpSlateServer> {
        HttpSlateServer::serve_on(reader, "127.0.0.1:0")
    }

    /// Bind to an explicit address (`muppetd` nodes publish a fixed port
    /// from the cluster topology).
    pub fn serve_on(reader: Arc<dyn SlateReader>, addr: &str) -> std::io::Result<HttpSlateServer> {
        let listener = TcpListener::bind(addr)?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread =
            std::thread::Builder::new().name("muppet-http".into()).spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let reader = Arc::clone(&reader);
                            // One thread per connection: slate reads are
                            // short-lived; no pool needed at test scale.
                            std::thread::spawn(move || {
                                let _ = handle_connection(stream, &*reader);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(HttpSlateServer { port, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Base URL for clients.
    pub fn base_url(&self) -> String {
        format!("http://127.0.0.1:{}", self.port)
    }
}

impl Drop for HttpSlateServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn handle_connection(stream: TcpStream, reader: &dyn SlateReader) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let mut buf = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    buf.read_line(&mut request_line)?;
    // Drain headers, keeping Content-Length (POST ingest bodies).
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if buf.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut out = stream;
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&mut out, 400, "text/plain", b"bad request"),
    };
    if method == "POST" && path.starts_with("/submit/") {
        // POST /submit/<stream>/<percent-encoded key>, body = event value.
        let Some(rest) = path.strip_prefix("/submit/") else {
            return respond(&mut out, 400, "text/plain", b"expected /submit/<stream>/<key>");
        };
        let Some((stream_name, key_enc)) = rest.split_once('/') else {
            return respond(&mut out, 400, "text/plain", b"expected /submit/<stream>/<key>");
        };
        let Some(key_bytes) = percent_decode(key_enc) else {
            return respond(&mut out, 400, "text/plain", b"bad key encoding");
        };
        if content_length > 16 << 20 {
            return respond(&mut out, 400, "text/plain", b"body too large");
        }
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(&mut buf, &mut body)?;
        return match reader.submit_event(stream_name, Key::from(key_bytes), body) {
            Ok(()) => respond(&mut out, 200, "text/plain", b"ok"),
            Err(msg) => respond(&mut out, 400, "text/plain", msg.as_bytes()),
        };
    }
    if method == "POST" && path == "/join" {
        // POST /join, body = host:port:http_port → the join grant
        // (admin; master node only).
        if content_length > 4096 {
            return respond(&mut out, 400, "text/plain", b"body too large");
        }
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(&mut buf, &mut body)?;
        let Ok(spec) = String::from_utf8(body) else {
            return respond(&mut out, 400, "text/plain", b"body must be utf-8");
        };
        return match reader.reserve_join(&spec) {
            Ok(grant) => respond(&mut out, 200, "text/plain", grant.as_bytes()),
            Err(msg) => respond(&mut out, 400, "text/plain", msg.as_bytes()),
        };
    }
    if method == "POST" && path == "/dlq/retry" {
        return match reader.dlq_retry() {
            Ok(n) => respond(
                &mut out,
                200,
                "application/json",
                format!("{{\"retried\":{n}}}").as_bytes(),
            ),
            Err(msg) => respond(&mut out, 400, "text/plain", msg.as_bytes()),
        };
    }
    if method != "GET" {
        return respond(&mut out, 405, "text/plain", b"method not allowed");
    }
    if path == "/dlq" {
        let body = reader.dlq_json();
        return respond(&mut out, 200, "application/json", body.as_bytes());
    }
    if path == "/status" {
        let body = reader.status_json();
        return respond(&mut out, 200, "application/json", body.as_bytes());
    }
    if path == "/membership" {
        let body = reader.membership_json();
        return respond(&mut out, 200, "application/json", body.as_bytes());
    }
    if path == "/metrics" {
        return match reader.metrics_text() {
            Some(body) => respond(&mut out, 200, "text/plain; version=0.0.4", body.as_bytes()),
            None => respond(&mut out, 404, "text/plain", b"no metrics registry"),
        };
    }
    if let Some(updater) = path.strip_prefix("/keys/") {
        // Newline-separated percent-encoded keys of one updater.
        let mut body = String::new();
        for key in reader.list_keys(updater) {
            body.push_str(&percent_encode(key.as_bytes()));
            body.push('\n');
        }
        return respond(&mut out, 200, "text/plain", body.as_bytes());
    }
    if let Some(rest) = path.strip_prefix("/slate/") {
        // /slate/<updater>/<key>; the key may itself contain encoded '/'.
        if let Some((updater, key_enc)) = rest.split_once('/') {
            let Some(key_bytes) = percent_decode(key_enc) else {
                return respond(&mut out, 400, "text/plain", b"bad key encoding");
            };
            let key = Key::from(key_bytes);
            return match reader.fetch_slate(updater, &key) {
                Some(bytes) => respond(&mut out, 200, "application/octet-stream", &bytes),
                None => respond(&mut out, 404, "text/plain", b"no such slate"),
            };
        }
        return respond(&mut out, 400, "text/plain", b"expected /slate/<updater>/<key>");
    }
    respond(&mut out, 404, "text/plain", b"not found")
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Decode `%xx` escapes and `+` (as space). Returns `None` on malformed
/// escapes.
pub fn percent_decode(input: &str) -> Option<Vec<u8>> {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = (*bytes.get(i + 1)? as char).to_digit(16)?;
                let lo = (*bytes.get(i + 2)? as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    Some(out)
}

/// Encode bytes for use in a slate-fetch URL path segment.
pub fn percent_encode(input: &[u8]) -> String {
    let mut out = String::with_capacity(input.len());
    for &b in input {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// A tiny blocking HTTP GET for tests and experiment harnesses.
/// Returns (status code, body).
pub fn http_get(url: &str) -> std::io::Result<(u16, Vec<u8>)> {
    http_request("GET", url, &[])
}

/// A tiny blocking HTTP POST (event ingest). Returns (status code, body).
pub fn http_post(url: &str, body: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    http_request("POST", url, body)
}

fn http_request(method: &str, url: &str, body: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "http:// only"))?;
    let (host, path) =
        rest.split_once('/').map(|(h, p)| (h, format!("/{p}"))).unwrap_or((rest, "/".into()));
    let mut stream = TcpStream::connect(host)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 =
        status_line.split_whitespace().nth(1).and_then(|c| c.parse().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(&mut reader, &mut body)?;
    Ok((code, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StubReader;

    impl SlateReader for StubReader {
        fn fetch_slate(&self, updater: &str, key: &Key) -> Option<Vec<u8>> {
            if updater == "U1" && key.as_str() == Some("walmart") {
                Some(b"42".to_vec())
            } else if updater == "U1" && key.as_str() == Some("with space/slash") {
                Some(b"tricky".to_vec())
            } else {
                None
            }
        }
        fn status_json(&self) -> String {
            r#"{"ok":true}"#.to_string()
        }
        fn dlq_json(&self) -> String {
            r#"[{"op":"U1","reason":"boom"}]"#.to_string()
        }
        fn dlq_retry(&self) -> Result<usize, String> {
            Ok(3)
        }
    }

    fn server() -> HttpSlateServer {
        HttpSlateServer::serve(Arc::new(StubReader)).unwrap()
    }

    #[test]
    fn fetches_existing_slate() {
        let srv = server();
        let (code, body) = http_get(&format!("{}/slate/U1/walmart", srv.base_url())).unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, b"42");
    }

    #[test]
    fn missing_slate_is_404() {
        let srv = server();
        let (code, _) = http_get(&format!("{}/slate/U1/nothere", srv.base_url())).unwrap();
        assert_eq!(code, 404);
        let (code, _) = http_get(&format!("{}/slate/U9/walmart", srv.base_url())).unwrap();
        assert_eq!(code, 404);
    }

    #[test]
    fn status_endpoint_returns_json() {
        let srv = server();
        let (code, body) = http_get(&format!("{}/status", srv.base_url())).unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, br#"{"ok":true}"#);
    }

    #[test]
    fn percent_encoding_roundtrip() {
        let original = b"with space/slash";
        let encoded = percent_encode(original);
        assert!(!encoded.contains(' ') && !encoded.contains('/'), "{encoded}");
        assert_eq!(percent_decode(&encoded).unwrap(), original);
        // Keys with encoded separators fetch correctly.
        let srv = server();
        let (code, body) = http_get(&format!("{}/slate/U1/{encoded}", srv.base_url())).unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, b"tricky");
    }

    #[test]
    fn percent_decode_rejects_malformed() {
        assert_eq!(percent_decode("%zz"), None);
        assert_eq!(percent_decode("%4"), None);
        assert_eq!(percent_decode("ok%20fine"), Some(b"ok fine".to_vec()));
        assert_eq!(percent_decode("a+b"), Some(b"a b".to_vec()));
    }

    #[test]
    fn unknown_paths_and_methods_rejected() {
        let srv = server();
        let (code, _) = http_get(&format!("{}/bogus", srv.base_url())).unwrap();
        assert_eq!(code, 404);
        let (code, _) = http_get(&format!("{}/slate/onlyupdater", srv.base_url())).unwrap();
        assert_eq!(code, 400);
        // Raw POST.
        let mut stream = TcpStream::connect(("127.0.0.1", srv.port())).unwrap();
        write!(stream, "POST /slate/U1/k HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("405"), "{line}");
    }

    #[test]
    fn dlq_endpoints_roundtrip() {
        let srv = server();
        let (code, body) = http_get(&format!("{}/dlq", srv.base_url())).unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, br#"[{"op":"U1","reason":"boom"}]"#);
        let (code, body) = http_post(&format!("{}/dlq/retry", srv.base_url()), b"").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, br#"{"retried":3}"#);
    }

    #[test]
    fn concurrent_fetches() {
        let srv = server();
        let url = format!("{}/slate/U1/walmart", srv.base_url());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let url = url.clone();
                std::thread::spawn(move || http_get(&url).unwrap())
            })
            .collect();
        for h in handles {
            let (code, body) = h.join().unwrap();
            assert_eq!(code, 200);
            assert_eq!(body, b"42");
        }
    }
}
