//! X4 — §5's operational claims: "By early 2011 Muppet processed over 100
//! million tweets and 1.5 million checkins per day ... and achieved a
//! latency of under 2 seconds."
//!
//! 100M tweets/day ≈ 1,160 events/s across a cluster of tens of machines —
//! i.e. tens of events/s/machine. This experiment streams a mixed
//! tweet+checkin feed at well beyond that per-machine rate through a
//! 4-machine simulated cluster and reports sustained throughput and
//! latency percentiles. The reproduction target is the *shape*: sustained
//! throughput ≥ the paper's per-machine rate with p99 ≪ 2 s.

use muppet_core::event::Event;
use muppet_runtime::engine::{EngineConfig, EngineKind};
use muppet_workloads::checkins::CheckinGenerator;
use muppet_workloads::tweets::TweetGenerator;

use crate::harness::{retailer_ops, retailer_workflow, run_engine};
use crate::table::{rate, us, Table};
use crate::Scale;

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X4",
        "production-scale throughput and sub-2s latency",
        "§5 (100M tweets/day, <2s latency)",
    );
    let n = scale.events(200_000);

    // Mixed feed: ~98.5% tweets, 1.5% checkins (the paper's 100M:1.5M
    // ratio). Both flow through the retailer workflow; tweets simply don't
    // match any retailer (realistic pass-through load for M1).
    let mut tweets = TweetGenerator::new(1, 50_000, 100_000.0);
    let mut checkins = CheckinGenerator::new(2, 10_000, 1_500.0);
    let mut events: Vec<Event> = Vec::with_capacity(n);
    for i in 0..n {
        if i % 66 == 0 {
            events.push({
                let mut e = checkins.next_event(muppet_apps::retailer::CHECKIN_STREAM);
                e.ts = i as u64;
                e
            });
        } else {
            let mut e = tweets.next_event(muppet_apps::retailer::CHECKIN_STREAM);
            e.ts = i as u64;
            events.push(e);
        }
    }

    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 4,
        workers_per_machine: 4,
        queue_capacity: 1 << 16,
        ..EngineConfig::default()
    };
    let outcome = run_engine(retailer_workflow(), retailer_ops(), cfg, None, events);
    let l = outcome.stats.latency;

    let mut table = Table::new(["metric", "measured", "paper claim"]);
    table.row([
        "events streamed".to_string(),
        n.to_string(),
        "100M tweets + 1.5M checkins / day".into(),
    ]);
    table.row([
        "sustained throughput".to_string(),
        format!("{} events/s", rate(n, outcome.elapsed)),
        "≈1,160 events/s cluster-wide".into(),
    ]);
    table.row(["p50 latency".to_string(), us(l.p50_us), "—".into()]);
    table.row(["p95 latency".to_string(), us(l.p95_us), "—".into()]);
    table.row(["p99 latency".to_string(), us(l.p99_us), "\"under 2 seconds\"".into()]);
    table.row(["max latency".to_string(), us(l.max_us), "—".into()]);
    table.print();

    let under_2s = l.p99_us < 2_000_000;
    println!(
        "\nshape check: p99 < 2s = {under_2s}; throughput exceeds the paper's cluster-wide rate = {}",
        outcome.throughput(n) > 1_160.0
    );
    assert!(under_2s, "p99 must stay under the paper's 2s bound");
}
