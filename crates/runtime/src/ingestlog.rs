//! Ingest write-ahead log — durability for *accepted but unprocessed*
//! events.
//!
//! Muppet's §4.3 protocol shrugs at a dead machine's in-flight work; at
//! production scale that is unacceptable, so each `muppetd` appends every
//! event it accepts from sources to a per-machine WAL *before* fanning it
//! out to workers. A restarted node replays the suffix past its replay
//! cursor (see `Engine::checkpoint`) and converges to bit-identical
//! slates.
//!
//! The log reuses `slatestore::wal` framing (crc32c + length prefix per
//! record), so torn tails from a crash mid-append are detected and cut
//! back to the last intact record. An event ⟨sid, ts, k, v⟩ maps onto a
//! WAL cell as `CellKey{row: k, column: sid}` / `Cell{value: v, write_ts:
//! ts}` — a lossless round trip, since `seq` is reassigned in admission
//! order on replay exactly as it was assigned on first ingest.
//!
//! ## Group commit
//!
//! The fsync tax is paid once per *batch*, not once per event, with the
//! same leader-follower scheme as the store WAL's `append_many`: a
//! submitter stages its record — or, via [`IngestLog::append_batch`],
//! a whole coalesced ingest frame — in a shared buffer, then either
//! becomes the **leader** (wins `try_lock` on the writer, drains the
//! whole buffer through one `append_many`/fsync, publishes the new
//! durable watermark) or **waits** on a condvar until some leader's
//! watermark covers its records. Under concurrency, n submitters share
//! one fsync; a lone single-event submitter degenerates to
//! sync-per-record, which is the correct latency floor. `sync_each`
//! mode skips the buffer entirely and fsyncs every append — the
//! expensive arm benchmarked in x20.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;
use muppet_core::sync::{audit, Condvar, Mutex};
use muppet_core::Event;
use muppet_slatestore::types::{Cell, CellKey, StoreResult};
use muppet_slatestore::wal::WalWriter;

/// Encode an event as a WAL record. `seq` is intentionally not stored:
/// replay re-admits events in log order, which reproduces it.
fn event_to_record(event: &Event) -> (CellKey, Cell) {
    (
        CellKey::new(event.key.as_bytes(), event.stream.as_str()),
        Cell::live(event.value.clone(), event.ts, None),
    )
}

/// Decode a WAL record back into the event that produced it.
fn record_to_event(key: &CellKey, cell: &Cell) -> Event {
    Event::new(
        String::from_utf8_lossy(&key.column).into_owned(),
        cell.write_ts,
        muppet_core::Key::from(key.row.as_ref()),
        Bytes::clone(&cell.value),
    )
}

struct Buf {
    entries: Vec<(CellKey, Cell)>,
    /// Sequence number the *next* staged record will get (1-based).
    next_seq: u64,
}

/// The per-machine ingest WAL with leader-based group commit.
pub struct IngestLog {
    buf: Mutex<Buf>,
    writer: Mutex<WalWriter>,
    /// Highest staged sequence number made durable so far.
    durable: AtomicU64,
    cv_mutex: Mutex<()>,
    cv: Condvar,
    sync_each: bool,
    records_total: AtomicU64,
    syncs: AtomicU64,
}

/// What `IngestLog::open` recovered from an existing segment.
pub struct IngestRecovery {
    /// Events in append order — the full ingest history of the segment.
    pub events: Vec<Event>,
    /// True if a torn tail was cut back to the last intact record.
    pub truncated: bool,
}

impl IngestLog {
    /// Open (or create) the log at `path`, replaying any intact prefix.
    /// A torn tail — the signature of a crash mid-append — is truncated
    /// to the last whole record before the writer is positioned.
    ///
    /// `sync_each` selects fsync-per-record; the default (false) is
    /// group commit, where durability is per-batch.
    pub fn open(
        path: impl AsRef<Path>,
        sync_each: bool,
    ) -> StoreResult<(IngestLog, IngestRecovery)> {
        // The inner writer never runs in its own sync_each mode: group
        // commit issues one explicit fsync per batch via `append_many`,
        // and sync-each mode appends through `append_many` one record at
        // a time for the same effect.
        let (writer, replayed) = WalWriter::open_or_create(path, true)?;
        let events =
            replayed.records.iter().map(|(k, c)| record_to_event(k, c)).collect::<Vec<_>>();
        let recovered = events.len() as u64;
        let log = IngestLog {
            buf: Mutex::new(Buf { entries: Vec::new(), next_seq: recovered + 1 }),
            writer: Mutex::new(writer),
            durable: AtomicU64::new(recovered),
            cv_mutex: Mutex::new(()),
            cv: Condvar::new(),
            sync_each,
            records_total: AtomicU64::new(recovered),
            syncs: AtomicU64::new(0),
        };
        Ok((log, IngestRecovery { events, truncated: replayed.truncated }))
    }

    /// Append one event durably. Returns only after the record has been
    /// fsynced — by this thread or by a group-commit leader whose batch
    /// included it.
    pub fn append(&self, event: &Event) -> StoreResult<()> {
        self.append_batch(std::slice::from_ref(event))
    }

    /// Append a run of events durably with batch-level accounting: the
    /// whole run stages as one unit, so it shares one fsync (plus
    /// whatever concurrent submitters join the same commit). This is the
    /// ingest-side twin of the transport outbox's frame coalescing —
    /// sources that hand the engine coalesced runs pay the fsync tax
    /// per *run*, not per event. Under `sync_each` the strawman
    /// semantics stay per-event: one fsync per record, batch or not.
    pub fn append_batch(&self, events: &[Event]) -> StoreResult<()> {
        if events.is_empty() {
            return Ok(());
        }
        if self.sync_each {
            let mut w = self.writer.lock();
            for event in events {
                let record = event_to_record(event);
                // Fsync under the writer lock is this mode's definition
                // (one durability line per record) — sanctioned for the
                // lock-audit IO probe.
                audit::io_allowed(|| w.append_many(std::slice::from_ref(&record)))?;
                self.records_total.fetch_add(1, Ordering::Relaxed);
                self.syncs.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(());
        }
        // Stage the records and note the watermark that covers the run.
        let my_seq = {
            let mut buf = self.buf.lock();
            buf.entries.extend(events.iter().map(event_to_record));
            buf.next_seq += events.len() as u64;
            buf.next_seq - 1
        };
        loop {
            if self.durable.load(Ordering::Acquire) >= my_seq {
                return Ok(());
            }
            if let Some(mut w) = self.writer.try_lock() {
                // Leader: drain whatever has been staged (our record and
                // any concurrent submitters') and commit it with one
                // fsync. Stay leader while new records keep arriving —
                // releasing the writer between batches hands leadership
                // to a follower that first has to be scheduled onto a
                // CPU, and that handoff gap (hundreds of µs under load)
                // dominates the fsync itself. The sticky loop keeps the
                // hot thread committing: records staged during fsync N
                // become batch N+1 immediately. The rounds cap bounds how
                // long a submitter can be conscripted into serving
                // others' appends after its own is durable.
                for _round in 0..64 {
                    let (entries, high) = {
                        let mut buf = self.buf.lock();
                        let high = buf.next_seq - 1;
                        (std::mem::take(&mut buf.entries), high)
                    };
                    if entries.is_empty() {
                        break;
                    }
                    // Group commit IS fsync-under-the-writer-lock: the
                    // lock is the batching mechanism, and followers wait
                    // on the durable watermark (not this lock) — mark
                    // the probe window sanctioned.
                    audit::io_allowed(|| w.append_many(&entries))?;
                    self.records_total.fetch_add(entries.len() as u64, Ordering::Relaxed);
                    self.syncs.fetch_add(1, Ordering::Relaxed);
                    self.durable.store(high, Ordering::Release);
                    // Wake covered followers NOW (not after the sticky
                    // loop): they return, stage their next records, and
                    // feed the next batch while we still hold the writer.
                    // Taking cv_mutex first closes the lost-wakeup race —
                    // a follower re-checks `durable` under this mutex
                    // before parking, so it either sees the new watermark
                    // or is parked and receives this notify.
                    let _guard = self.cv_mutex.lock();
                    self.cv.notify_all();
                }
                drop(w);
            } else {
                // Follower: a leader holds the writer; wait for its
                // commit (the timeout is belt-and-braces only — the
                // leader's locked notify above cannot miss us).
                let mut guard = self.cv_mutex.lock();
                if self.durable.load(Ordering::Acquire) >= my_seq {
                    return Ok(());
                }
                self.cv.wait_for(&mut guard, Duration::from_millis(20));
            }
        }
    }

    /// Draw an explicit durability line: flush and fsync everything
    /// appended so far. Used by checkpoint/shutdown.
    pub fn sync(&self) -> StoreResult<()> {
        let mut w = self.writer.lock();
        // Checkpoint/shutdown durability line: the lock is what makes
        // the fsync cover everything appended — sanctioned by design.
        audit::io_allowed(|| w.sync())?;
        Ok(())
    }

    /// Records durably appended over the log's lifetime (including the
    /// recovered prefix) — the value a replay cursor checkpoints.
    pub fn record_count(&self) -> u64 {
        self.records_total.load(Ordering::Relaxed)
    }

    /// Fsyncs issued since open. Group commit keeps this well below
    /// `record_count` under concurrency.
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_slatestore::util::TempDir;
    use std::sync::Arc;

    fn ev(i: u64) -> Event {
        Event::new("clicks", 1_000 + i, format!("user-{i}").into(), format!("payload-{i}"))
    }

    #[test]
    fn event_record_roundtrip_is_lossless() {
        let e = Event::new("S1", 42, muppet_core::Key::from(vec![0u8, 255]), vec![1u8, 2, 3]);
        let (k, c) = event_to_record(&e);
        let back = record_to_event(&k, &c);
        assert_eq!(back.stream, e.stream);
        assert_eq!(back.ts, e.ts);
        assert_eq!(back.key, e.key);
        assert_eq!(back.value, e.value);
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let dir = TempDir::new("ingest").unwrap();
        let path = dir.file("ingest.wal");
        {
            let (log, rec) = IngestLog::open(&path, true).unwrap();
            assert!(rec.events.is_empty());
            for i in 0..20 {
                log.append(&ev(i)).unwrap();
            }
            assert_eq!(log.record_count(), 20);
            assert_eq!(log.sync_count(), 20, "sync_each fsyncs per record");
        }
        let (log, rec) = IngestLog::open(&path, true).unwrap();
        assert!(!rec.truncated);
        assert_eq!(rec.events.len(), 20);
        for (i, e) in rec.events.iter().enumerate() {
            assert_eq!(e.key, ev(i as u64).key);
            assert_eq!(e.value, ev(i as u64).value);
        }
        assert_eq!(log.record_count(), 20, "writer continues from the recovered prefix");
    }

    #[test]
    fn group_commit_batches_concurrent_appends() {
        let dir = TempDir::new("ingest").unwrap();
        let (log, _) = IngestLog::open(dir.file("group.wal"), false).unwrap();
        let log = Arc::new(log);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        log.append(&ev(t * 50 + i)).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(log.record_count(), 200);
        assert!(log.sync_count() <= 200, "never worse than sync-per-record");
        assert!(log.sync_count() >= 1);
    }

    #[test]
    fn torn_tail_recovers_to_intact_prefix() {
        let dir = TempDir::new("ingest").unwrap();
        let path = dir.file("torn.wal");
        {
            let (log, _) = IngestLog::open(&path, true).unwrap();
            for i in 0..10 {
                log.append(&ev(i)).unwrap();
            }
        }
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let (log, rec) = IngestLog::open(&path, true).unwrap();
        assert!(rec.truncated);
        assert_eq!(rec.events.len(), 9, "only the torn record is lost");
        // The log stays appendable after the truncation.
        log.append(&ev(99)).unwrap();
        drop(log);
        let (_, rec) = IngestLog::open(&path, true).unwrap();
        assert!(!rec.truncated);
        assert_eq!(rec.events.len(), 10);
    }
}
