//! Offline stand-in for `criterion`: the bench-definition API surface this
//! workspace uses (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `iter`/`iter_batched`, `black_box`, `Throughput`), implemented as a
//! small wall-clock timing harness. No statistics engine — each bench runs
//! a calibrated number of iterations and reports mean time per iteration
//! (and derived throughput). Good enough to keep the `benches/` targets
//! compiling, runnable, and honest about relative magnitudes.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How much work one measured element represents, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup. The shim times the routine only,
/// so all variants behave identically.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small batched inputs.
    SmallInput,
    /// Large batched inputs.
    LargeInput,
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    /// Measured mean duration of one iteration.
    mean: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` over a calibrated number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate: aim for ~100ms of total measurement, capped.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(100);
        let iters = ((target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000)) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / (iters as u32);
    }

    /// Time `routine` with per-batch `setup` excluded from measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let iters = self.sample_size.max(1) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / (iters as u32);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lower the per-bench iteration count (slow benches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare per-iteration work for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher { mean: Duration::ZERO, sample_size: self.sample_size };
        f(&mut bencher);
        let mean = bencher.mean;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64().max(1e-12))
            }
            Throughput::Bytes(n) => {
                format!(" ({:.1} MiB/s)", n as f64 / 1048576.0 / mean.as_secs_f64().max(1e-12))
            }
        });
        println!("{}/{:<40} {:>12.3?}/iter{}", self.name, name, mean, rate.unwrap_or_default());
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- {name} --");
        BenchmarkGroup { name, throughput: None, sample_size: 20, _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("sample");
        g.sample_size(5);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 100],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::PerIteration,
            )
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
