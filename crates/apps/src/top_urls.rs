//! Top-K URLs being passed around on Twitter (§2's motivating list).
//!
//! Workflow: `S1 (tweets) → M1 url-extractor → S2 → U1 url-counter → S3 →
//! U2 top-k`. U1 maintains a per-URL count and republishes it; U2 folds
//! every count into a single "leaderboard" slate (one key — deliberately a
//! hotspot, which is why Example 6's splitting exists; see
//! [`crate::split_counter`]).

use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use muppet_core::operator::{Emitter, Mapper, Updater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;

/// External tweet stream.
pub const TWEET_STREAM: &str = "S1";
/// URL mention stream.
pub const URL_STREAM: &str = "S2";
/// Per-URL count stream.
pub const COUNT_STREAM: &str = "S3";
/// Extractor name.
pub const URL_MAPPER: &str = "url-extractor";
/// Counter name.
pub const URL_COUNTER: &str = "url-counter";
/// Leaderboard updater name.
pub const TOP_K: &str = "top-k";
/// The single leaderboard key.
pub const LEADERBOARD_KEY: &str = "leaderboard";

/// The top-K workflow.
pub fn workflow() -> Workflow {
    let mut b = Workflow::builder("top-urls");
    b.external_stream(TWEET_STREAM);
    b.mapper_publishing(URL_MAPPER, &[TWEET_STREAM], &[URL_STREAM]);
    b.updater_publishing(URL_COUNTER, &[URL_STREAM], &[COUNT_STREAM]);
    b.updater(TOP_K, &[COUNT_STREAM]);
    b.build().expect("static workflow is valid")
}

/// M1: emit one event per URL in the tweet.
pub struct UrlMapper {
    name: String,
}

impl UrlMapper {
    /// Default-named extractor.
    pub fn new() -> Self {
        UrlMapper { name: URL_MAPPER.to_string() }
    }
}

impl Default for UrlMapper {
    fn default() -> Self {
        Self::new()
    }
}

impl Mapper for UrlMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, ctx: &mut dyn Emitter, event: &Event) {
        let Ok(v) = Json::from_payload(&event.value) else { return };
        let Some(urls) = v.get("urls").and_then(Json::as_arr) else { return };
        for url in urls {
            if let Some(url) = url.as_str() {
                ctx.publish(URL_STREAM, Key::from(url), Vec::new());
            }
        }
    }
}

/// U1: count mentions per URL; republish `(url, count)` downstream.
pub struct UrlCounter {
    name: String,
}

impl UrlCounter {
    /// Default-named counter.
    pub fn new() -> Self {
        UrlCounter { name: URL_COUNTER.to_string() }
    }
}

impl Default for UrlCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl Updater for UrlCounter {
    fn name(&self) -> &str {
        &self.name
    }

    fn update(&self, ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        let count = slate.incr_counter(1);
        let url = event.key.as_str().unwrap_or("");
        let payload =
            Json::obj([("url", Json::str(url)), ("count", Json::num(count as f64))]).to_compact();
        ctx.publish(COUNT_STREAM, Key::from(LEADERBOARD_KEY), payload.into_bytes());
    }
}

/// U2: fold `(url, count)` updates into a top-K leaderboard slate:
/// `{"k": K, "top": [{"url": ..., "count": ...}, ...]}` sorted descending.
pub struct TopKUpdater {
    name: String,
    k: usize,
}

impl TopKUpdater {
    /// Keep the top `k` URLs ("top-ten" in the paper).
    pub fn new(k: usize) -> Self {
        TopKUpdater { name: TOP_K.to_string(), k: k.max(1) }
    }

    /// Parse a leaderboard out of a slate (for tests/harnesses).
    pub fn leaderboard(slate: &Slate) -> Vec<(String, u64)> {
        slate
            .as_json()
            .and_then(|v| {
                v.get("top").and_then(Json::as_arr).map(|items| {
                    items
                        .iter()
                        .filter_map(|e| {
                            Some((e.get("url")?.as_str()?.to_string(), e.get("count")?.as_u64()?))
                        })
                        .collect()
                })
            })
            .unwrap_or_default()
    }
}

impl Updater for TopKUpdater {
    fn name(&self) -> &str {
        &self.name
    }

    fn update(&self, _ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        let Ok(v) = Json::from_payload(&event.value) else { return };
        let (Some(url), Some(count)) =
            (v.get("url").and_then(Json::as_str), v.get("count").and_then(Json::as_u64))
        else {
            return;
        };
        // Read the board out of the resident document (parsed at most
        // once per cache fault — no byte-level reparse per event).
        let mut board: Vec<(String, u64)> = slate
            .ensure_json()
            .and_then(|doc| doc.get("top").and_then(Json::as_arr))
            .map(|items| {
                items
                    .iter()
                    .filter_map(|e| {
                        Some((e.get("url")?.as_str()?.to_string(), e.get("count")?.as_u64()?))
                    })
                    .collect()
            })
            .unwrap_or_default();
        match board.iter_mut().find(|(u, _)| u == url) {
            Some(entry) => entry.1 = entry.1.max(count),
            None => board.push((url.to_string(), count)),
        }
        // Sort by count desc, then URL for determinism; truncate to K.
        board.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        board.truncate(self.k);
        let top = Json::arr(board.iter().map(|(u, c)| {
            Json::obj([("url", Json::str(u.clone())), ("count", Json::num(*c as f64))])
        }));
        // Install the rebuilt document without an intermediate
        // serialization.
        slate.set_json(Json::obj([("k", Json::num(self.k as f64)), ("top", top)]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::reference::ReferenceExecutor;

    fn tweet_with_urls(ts: u64, urls: &[&str]) -> Event {
        let value = Json::obj([
            ("user", Json::str("u")),
            ("urls", Json::arr(urls.iter().map(|u| Json::str(*u)))),
        ]);
        Event::new(TWEET_STREAM, ts, Key::from("u"), value.to_compact().into_bytes())
    }

    fn run(urls_per_event: &[Vec<&str>], k: usize) -> Vec<(String, u64)> {
        let wf = workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_mapper(UrlMapper::new());
        exec.register_updater(UrlCounter::new());
        exec.register_updater(TopKUpdater::new(k));
        for (i, urls) in urls_per_event.iter().enumerate() {
            exec.push_external(TWEET_STREAM, tweet_with_urls(i as u64, urls));
        }
        exec.run_to_completion().unwrap();
        exec.slate(TOP_K, &Key::from(LEADERBOARD_KEY))
            .map(TopKUpdater::leaderboard)
            .unwrap_or_default()
    }

    #[test]
    fn leaderboard_ranks_by_count() {
        let events =
            vec![vec!["a.com", "b.com"], vec!["a.com"], vec!["a.com", "c.com"], vec!["b.com"]];
        let board = run(&events, 10);
        assert_eq!(board[0], ("a.com".to_string(), 3));
        assert_eq!(board[1], ("b.com".to_string(), 2));
        assert_eq!(board[2], ("c.com".to_string(), 1));
    }

    #[test]
    fn truncates_to_k() {
        let events: Vec<Vec<&str>> =
            vec![vec!["u1.com"], vec!["u2.com"], vec!["u3.com"], vec!["u4.com"], vec!["u1.com"]];
        let board = run(&events, 2);
        assert_eq!(board.len(), 2);
        assert_eq!(board[0].0, "u1.com");
    }

    #[test]
    fn tweets_without_urls_contribute_nothing() {
        let board = run(&[vec![], vec![], vec![]], 10);
        assert!(board.is_empty());
    }

    #[test]
    fn counts_match_per_url_slates() {
        let events = [vec!["x.com"], vec!["x.com"], vec!["y.com"]];
        let wf = workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_mapper(UrlMapper::new());
        exec.register_updater(UrlCounter::new());
        exec.register_updater(TopKUpdater::new(10));
        for (i, urls) in events.iter().enumerate() {
            exec.push_external(TWEET_STREAM, tweet_with_urls(i as u64, urls));
        }
        exec.run_to_completion().unwrap();
        assert_eq!(exec.slate(URL_COUNTER, &Key::from("x.com")).unwrap().counter(), 2);
        assert_eq!(exec.slate(URL_COUNTER, &Key::from("y.com")).unwrap().counter(), 1);
    }
}
