//! X6 — §4.2: slate caching and the SSD argument.
//!
//! "When Muppet starts up, its slate cache is empty, so early update events
//! may require many row fetches from the key-value store. Fast random
//! access helps the store respond ... warming the slate cache." We
//! pre-populate the store with a slate universe, then stream events with a
//! cold cache whose capacity is a fraction of the working set, on an SSD
//! vs. an HDD device profile, and measure hit rates and wall time.

use std::sync::Arc;

use muppet_core::event::Event;
use muppet_core::operator::{Emitter, FnUpdater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use muppet_runtime::cache::FlushPolicy;
use muppet_runtime::engine::{EngineConfig, EngineKind, OperatorSet};
use muppet_slatestore::cluster::{StoreCluster, StoreConfig};
use muppet_slatestore::device::DeviceProfile;
use muppet_slatestore::types::CellKey;
use muppet_slatestore::util::TempDir;

use crate::harness::{keyed_events, run_engine};
use crate::table::{rate, Table};
use crate::Scale;

fn workflow() -> Workflow {
    let mut b = Workflow::builder("cache-probe");
    b.external_stream("S1");
    b.updater("U1", &["S1"]);
    b.build().unwrap()
}

fn ops() -> OperatorSet {
    OperatorSet::new().updater(FnUpdater::new(
        "U1",
        |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        },
    ))
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X6",
        "slate-cache sizing and SSD vs HDD store devices",
        "§4.2 (SSDs and caching slates)",
    );
    let keys = 2_000usize;
    let n = scale.events(20_000);

    let mut table = Table::new([
        "device",
        "cache/working set",
        "hit rate",
        "store loads",
        "events/s",
        "store read time",
    ]);
    for &device in &[DeviceProfile::SSD, DeviceProfile::HDD] {
        for &fraction in &[0.1f64, 0.5, 1.0] {
            let dir = TempDir::new("x6").unwrap();
            let store = Arc::new(
                StoreCluster::open(
                    dir.path(),
                    StoreConfig { nodes: 1, replication: 1, device, ..Default::default() },
                )
                .unwrap(),
            );
            // Pre-populate the store: every key has a persisted slate, and
            // it is flushed to SSTables (so reads pay device cost).
            for k in 0..keys {
                store
                    .put(&CellKey::new(format!("key-{k:06}"), "U1"), b"100", None, k as u64)
                    .unwrap();
            }
            store.flush_all(keys as u64 + 1).unwrap();
            let io_before = store.io_stats();

            let capacity = ((keys as f64) * fraction) as usize;
            let cfg = EngineConfig {
                kind: EngineKind::Muppet2,
                machines: 1,
                workers_per_machine: 2,
                slate_cache_capacity: capacity.max(1),
                flush: FlushPolicy::OnEvict,
                queue_capacity: 1 << 16,
                ..EngineConfig::default()
            };
            let events = keyed_events("S1", n, keys, 0.9, 4242);
            let outcome = run_engine(workflow(), ops(), cfg, Some(Arc::clone(&store)), events);
            let io = store.io_stats();
            let c = outcome.stats.cache;
            let hit_rate = c.hits as f64 / (c.hits + c.misses).max(1) as f64;
            table.row([
                device.name.to_string(),
                format!("{:.0}%", fraction * 100.0),
                format!("{:.1}%", hit_rate * 100.0),
                c.store_loads.to_string(),
                rate(n, outcome.elapsed),
                format!("{:.1}ms", (io.service_us - io_before.service_us) as f64 / 1e3),
            ]);
        }
    }
    table.print();
    println!(
        "\nshape check: hit rate rises with cache size; with a small cache the HDD run is\n\
         dramatically slower than the SSD run (random-read-bound warmup, §4.2), while at\n\
         cache ≥ working set the device barely matters."
    );
}
