//! X10 — §4.3: machine-crash handling.
//!
//! The protocol under test: detection happens on the first failed *send*
//! (no ping period), the master broadcasts once, the hash ring drops the
//! machine, the undeliverable event is lost-and-logged (never retried),
//! and total loss is bounded by (events queued at the dead machine) +
//! (events sent before detection) + (unflushed slate deltas).

use std::sync::Arc;
use std::time::{Duration, Instant};

use muppet_apps::retailer;
use muppet_runtime::cache::FlushPolicy;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind};
use muppet_slatestore::cluster::{StoreCluster, StoreConfig};
use muppet_slatestore::types::CellKey;
use muppet_slatestore::util::TempDir;
use muppet_workloads::checkins::CheckinGenerator;

use crate::harness::{retailer_ops, retailer_workflow};
use crate::table::Table;
use crate::Scale;

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X10",
        "machine crash: detection, rerouting, bounded loss",
        "§4.3 (handling failures)",
    );
    let before = scale.events(20_000);
    let after = scale.events(20_000);

    // Write-through store: every applied increment is durable, so the
    // accounting below closes exactly — the only losses are the events
    // §4.3 declares lost (failed sends + the dead machine's queues).
    let dir = TempDir::new("x10").unwrap();
    let store = Arc::new(
        StoreCluster::open(
            dir.path(),
            StoreConfig { nodes: 1, replication: 1, ..Default::default() },
        )
        .unwrap(),
    );
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 4,
        workers_per_machine: 2,
        queue_capacity: 1 << 16,
        flush: FlushPolicy::WriteThrough,
        ..EngineConfig::default()
    };
    let engine =
        Engine::start(retailer_workflow(), retailer_ops(), cfg, Some(Arc::clone(&store))).unwrap();
    let mut gen = CheckinGenerator::new(31, 3_000, 5_000.0);

    // Phase 1: healthy.
    let phase1 = gen.take(retailer::CHECKIN_STREAM, before);
    let truth1 = CheckinGenerator::expected_retailer_counts(&phase1);
    for ev in phase1 {
        engine.submit(ev).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(120)));
    let healthy = engine.stats();

    // Phase 2: kill machine 2 and keep streaming.
    engine.kill_machine(2);
    let kill_at = Instant::now();
    let mut detect_after_events = 0usize;
    let mut detection_latency = None;
    let phase2 = gen.take(retailer::CHECKIN_STREAM, after);
    let truth2 = CheckinGenerator::expected_retailer_counts(&phase2);
    for (i, ev) in phase2.into_iter().enumerate() {
        engine.submit(ev).unwrap();
        if detection_latency.is_none() && engine.failure_detected(2) {
            detection_latency = Some(kill_at.elapsed());
            detect_after_events = i + 1;
        }
    }
    assert!(engine.drain(Duration::from_secs(120)));
    let stats = engine.stats();

    // Durable counts (write-through): includes the dead machine's applied
    // increments, which its cache lost but the store kept.
    let now = engine.now_us();
    let mut counted_total = 0u64;
    let mut true_total = 0u64;
    for (retailer_name, t1) in &truth1 {
        let t2 = truth2.get(retailer_name).copied().unwrap_or(0);
        true_total += t1 + t2;
        if let Ok(Some(bytes)) =
            store.get(&CellKey::new(retailer_name.as_bytes(), retailer::COUNTER), now + 1)
        {
            counted_total += String::from_utf8(bytes.to_vec())
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
        }
    }
    let lost = stats.lost_machine_failure + stats.lost_in_queues;
    engine.shutdown();

    let mut table = Table::new(["metric", "value"]);
    table.row([
        "healthy-phase losses".to_string(),
        format!("{}", healthy.lost_machine_failure + healthy.lost_in_queues),
    ]);
    table.row([
        "failure detection latency".to_string(),
        format!(
            "{:?} ({} events after the kill)",
            detection_latency.unwrap_or_default(),
            detect_after_events
        ),
    ]);
    table.row([
        "events lost at dead machine (in queues)".to_string(),
        stats.lost_in_queues.to_string(),
    ]);
    table.row([
        "events lost to failed sends (logged)".to_string(),
        stats.lost_machine_failure.to_string(),
    ]);
    table.row(["true retail events (both phases)".to_string(), true_total.to_string()]);
    table.row(["retail events counted by survivors".to_string(), counted_total.to_string()]);
    table.row([
        "accounting: counted + lost ≥ true".to_string(),
        format!("{} + {} = {} vs {}", counted_total, lost, counted_total + lost, true_total),
    ]);
    table.print();
    println!(
        "\nshape check: detection is traffic-driven (first failed send), loss is a small\n\
         bounded fraction, and everything not explicitly lost is counted — '§4.3: we focus\n\
         on quickly detecting the failed worker and redirecting events ... minimizing our\n\
         latency and losses'."
    );
    assert!(counted_total + lost >= true_total, "no silent loss");
    assert!(lost < (before + after) as u64 / 4, "loss must be a bounded fraction");
}
