// lint-fixture-as: crates/runtime/src/fixture.rs
//! Fixture: sanctioned lock usage plus the std::sync types that are NOT
//! locks — none of this may produce findings.

use muppet_core::sync::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

pub struct Clean {
    a: Mutex<u64>,
    b: Arc<RwLock<u64>>,
    cv: Condvar,
    n: AtomicU64,
    // A shim lock AROUND an mpsc type mentions std::sync without naming
    // a std lock — must not trip the rule.
    rx: Mutex<std::sync::mpsc::Receiver<()>>,
}

pub fn touch(c: &Clean) -> u64 {
    *c.a.lock() + c.n.load(Ordering::Relaxed)
}
