//! The lock-order regression gate (runs under `--features lock-audit`).
//!
//! A real store-backed engine is driven through the full hot surface —
//! membership reads, sharded cache hits/misses, slot mutation, dirty
//! tracking, flush sweeps, ingest-WAL group commit, cross-machine
//! routing, and shutdown checkpointing — with every shim lock feeding
//! the global acquisition-order graph and every fsync passing the IO
//! probe. The assertions are the PR's standing contract:
//!
//! * the observed order graph is acyclic (no potential deadlock pair
//!   anywhere in the exercised paths);
//! * zero fsyncs happen while a lock is held, outside the explicitly
//!   sanctioned group-commit/checkpoint windows.
//!
//! Without the feature this binary compiles to nothing.
#![cfg(feature = "lock-audit")]

use std::sync::Arc;
use std::time::Duration;

use muppet_core::event::{Event, Key};
use muppet_core::operator::{Emitter, FnMapper, FnUpdater};
use muppet_core::slate::Slate;
use muppet_core::sync::audit;
use muppet_core::workflow::Workflow;
use muppet_runtime::cache::FlushPolicy;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind, OperatorSet};
use muppet_slatestore::cluster::{StoreCluster, StoreConfig};
use muppet_slatestore::util::TempDir;

fn count_workflow() -> Workflow {
    let mut b = Workflow::builder("audit");
    b.external_stream("S1");
    b.mapper_publishing("M1", &["S1"], &["S2"]);
    b.updater("U1", &["S2"]);
    b.build().expect("valid workflow")
}

fn count_ops() -> OperatorSet {
    OperatorSet::new()
        .mapper(FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        }))
        .updater(FnUpdater::new("U1", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        }))
}

#[test]
fn engine_run_has_acyclic_lock_order_and_no_fsync_under_lock() {
    assert!(audit::enabled(), "this test must run with --features lock-audit");

    let dir = TempDir::new("lock-audit").expect("tempdir");
    let store =
        Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).expect("store opens"));
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 2,
        workers_per_machine: 2,
        queue_capacity: 10_000,
        // Tiny cache + write-through: every update walks slot → dirty
        // index → backend, and evictions churn the shard maps.
        slate_cache_capacity: 64,
        cache_shards: 4,
        drain_batch_max: 8,
        flush: FlushPolicy::WriteThrough,
        record_latency: true,
        ingest_wal: Some(dir.path().join("ingest.wal")),
        ..EngineConfig::default()
    };
    let engine =
        Engine::start(count_workflow(), count_ops(), cfg, Some(store)).expect("engine starts");

    // Enough keys to spread over both machines and all shards, enough
    // repeats to mix hits, misses, and single-flight coalescing.
    for round in 0..20u64 {
        for k in 0..50u64 {
            engine
                .submit(Event::new("S1", round * 50 + k, Key::from(format!("k{k}")), "e"))
                .expect("submit");
        }
    }
    assert!(engine.drain(Duration::from_secs(30)), "engine drains");
    // Reads take the cache path from the outside too.
    for k in 0..50u64 {
        let _ = engine.read_slate("U1", &Key::from(format!("k{k}")));
    }
    // Shutdown checkpoints the ingest cursor and syncs the WAL — the
    // sanctioned fsync-under-writer-lock windows.
    engine.shutdown();

    let cycles = audit::order_cycles();
    assert!(cycles.is_empty(), "lock-order cycles observed:\n{}", cycles.join("\n---\n"));
    let io = audit::io_under_lock_events();
    assert!(io.is_empty(), "unsanctioned IO under a lock:\n{}", io.join("\n---\n"));
    // The run must actually have fed the graph — an empty graph would
    // mean the shim is not wired through the engine at all.
    assert!(
        audit::edge_count() >= 5,
        "expected a populated lock-order graph, saw {} edges",
        audit::edge_count()
    );
}
