//! A synthetic Foursquare-checkin stand-in.
//!
//! The retailer-counting application (Example 1 / Figure 1(b) / Figure 3)
//! parses checkin JSON, matches the venue name against retailer patterns
//! ("(?i)\\s*wal.*mart.*" in Figure 3), and counts per retailer. The
//! generator emits venue names with realistic spelling noise so the
//! pattern-matching path is actually exercised, and exposes the canonical
//! venue→retailer ground truth so experiments can verify exact counts.

use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arrivals::ArrivalProcess;
use crate::zipf::Zipf;

/// Canonical retailers with their noisy venue-name variants.
pub const RETAILER_VENUES: &[(&str, &[&str])] = &[
    (
        "Walmart",
        &["Walmart Supercenter", "Wal-Mart #1234", "walmart neighborhood market", "WALMART"],
    ),
    ("Sam's Club", &["Sam's Club", "sams club gas", "SAM'S CLUB #55"]),
    ("Best Buy", &["Best Buy", "BestBuy Mobile", "best buy store 42"]),
    ("Target", &["Target", "SuperTarget", "target store"]),
    ("JCPenney", &["JCPenney", "JC Penney Salon", "jcpenney outlet"]),
];

/// Venues with no retailer (the mapper must ignore these).
pub const OTHER_VENUES: &[&str] = &[
    "Joe's Coffee",
    "Central Park",
    "Airport Terminal B",
    "Museum of Modern Art",
    "Pizza Palace",
    "24h Gym",
];

/// The ground-truth canonical retailer for a venue name, if any. This is
/// the oracle experiments compare the application's regex matching against.
pub fn canonical_retailer(venue: &str) -> Option<&'static str> {
    for (retailer, variants) in RETAILER_VENUES {
        if variants.contains(&venue) {
            return Some(retailer);
        }
    }
    None
}

/// Synthetic checkin stream generator.
#[derive(Debug)]
pub struct CheckinGenerator {
    rng: StdRng,
    users: Zipf,
    venue_dist: Zipf,
    venues: Vec<&'static str>,
    arrivals: ArrivalProcess,
    now_us: u64,
    seq: u64,
}

impl CheckinGenerator {
    /// A generator over `n_users` users at `rate` checkins/sec.
    pub fn new(seed: u64, n_users: usize, rate_per_sec: f64) -> Self {
        let mut venues: Vec<&'static str> = Vec::new();
        for (_, variants) in RETAILER_VENUES {
            venues.extend_from_slice(variants);
        }
        venues.extend_from_slice(OTHER_VENUES);
        CheckinGenerator {
            rng: StdRng::seed_from_u64(seed),
            users: Zipf::new(n_users.max(1), 0.9),
            venue_dist: Zipf::new(venues.len(), 1.0),
            venues,
            arrivals: ArrivalProcess::Poisson { events_per_sec: rate_per_sec },
            now_us: 0,
            seq: 0,
        }
    }

    /// Override venue popularity skew (hotspot experiments crank this up
    /// so one retailer floods its updater, Example 6).
    pub fn with_venue_skew(mut self, s: f64) -> Self {
        self.venue_dist = Zipf::new(self.venues.len(), s);
        self
    }

    /// Override the arrival process.
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// All venue names this generator can emit.
    pub fn venues(&self) -> &[&'static str] {
        &self.venues
    }

    /// Generate the next checkin event. Key = user id; value = checkin
    /// JSON with the venue object.
    pub fn next_event(&mut self, stream: &str) -> Event {
        let user = format!("user-{}", self.users.sample(&mut self.rng));
        let venue = self.venues[self.venue_dist.sample(&mut self.rng)];
        self.seq += 1;
        let value = Json::obj([
            ("id", Json::num(self.seq as f64)),
            ("user", Json::str(user.clone())),
            (
                "venue",
                Json::obj([
                    ("name", Json::str(venue)),
                    ("lat", Json::num(37.0 + self.rng.gen_range(-0.5..0.5))),
                    ("lng", Json::num(-122.0 + self.rng.gen_range(-0.5..0.5))),
                ]),
            ),
        ])
        .to_compact()
        .into_bytes();
        let ts = self.now_us;
        self.now_us += self.arrivals.next_gap_us(self.now_us, &mut self.rng).max(1);
        Event::new(stream, ts, Key::from(user), value)
    }

    /// Generate `n` events.
    pub fn take(&mut self, stream: &str, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.next_event(stream)).collect()
    }

    /// Ground truth: expected count per canonical retailer for a batch of
    /// events previously generated (parses the JSON back).
    pub fn expected_retailer_counts(events: &[Event]) -> std::collections::BTreeMap<String, u64> {
        let mut counts = std::collections::BTreeMap::new();
        for ev in events {
            let v = Json::from_payload(&ev.value).expect("generator emits valid JSON");
            let venue = v.get("venue").unwrap().get("name").unwrap().as_str().unwrap();
            if let Some(retailer) = canonical_retailer(venue) {
                *counts.entry(retailer.to_string()).or_insert(0) += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkins_are_valid_json() {
        let mut gen = CheckinGenerator::new(11, 50, 100.0);
        for ev in gen.take("S1", 50) {
            let v = Json::from_payload(&ev.value).unwrap();
            assert!(v.get("venue").unwrap().get("name").is_some());
            assert!(v.get("user").is_some());
        }
    }

    #[test]
    fn canonical_retailer_maps_known_variants() {
        assert_eq!(canonical_retailer("Wal-Mart #1234"), Some("Walmart"));
        assert_eq!(canonical_retailer("sams club gas"), Some("Sam's Club"));
        assert_eq!(canonical_retailer("BestBuy Mobile"), Some("Best Buy"));
        assert_eq!(canonical_retailer("Joe's Coffee"), None);
        assert_eq!(canonical_retailer("unknown venue"), None);
    }

    #[test]
    fn ground_truth_counts_cover_all_retail_checkins() {
        let mut gen = CheckinGenerator::new(5, 100, 1000.0);
        let events = gen.take("S1", 2000);
        let counts = CheckinGenerator::expected_retailer_counts(&events);
        let total: u64 = counts.values().sum();
        assert!(total > 0, "some checkins hit retailers");
        assert!(total < 2000, "some checkins are non-retail");
        for retailer in counts.keys() {
            assert!(RETAILER_VENUES.iter().any(|(r, _)| r == retailer));
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = CheckinGenerator::new(3, 20, 100.0).take("S1", 20);
        let b = CheckinGenerator::new(3, 20, 100.0).take("S1", 20);
        assert_eq!(a, b);
    }

    #[test]
    fn venue_skew_concentrates_checkins() {
        let mut hot = CheckinGenerator::new(1, 100, 100.0).with_venue_skew(2.5);
        let events = hot.take("S1", 5000);
        let mut venue_counts = std::collections::HashMap::new();
        for ev in &events {
            let v = Json::from_payload(&ev.value).unwrap();
            let name = v.get("venue").unwrap().get("name").unwrap().as_str().unwrap().to_string();
            *venue_counts.entry(name).or_insert(0u32) += 1;
        }
        let top = venue_counts.values().max().copied().unwrap();
        assert!(top as f64 / 5000.0 > 0.5, "skew 2.5 should concentrate >50% on one venue: {top}");
    }
}
