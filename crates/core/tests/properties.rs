//! Property-based tests for the muppet-core primitives.

use muppet_core::codec;
use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use muppet_core::operator::{Emitter, FnMapper, FnUpdater};
use muppet_core::reference::ReferenceExecutor;
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use proptest::prelude::*;

// ---------- codec ----------

proptest! {
    #[test]
    fn varint_roundtrips(v in any::<u64>()) {
        let mut buf = Vec::new();
        codec::put_varint(&mut buf, v);
        let (got, n) = codec::get_varint(&buf).unwrap();
        prop_assert_eq!(got, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn varint_encoding_is_minimal_and_ordered_by_length(a in any::<u64>(), b in any::<u64>()) {
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        codec::put_varint(&mut ba, a);
        codec::put_varint(&mut bb, b);
        if a <= b {
            prop_assert!(ba.len() <= bb.len());
        }
    }

    #[test]
    fn len_prefixed_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = Vec::new();
        codec::put_len_prefixed(&mut buf, &data);
        let (got, n) = codec::get_len_prefixed(&buf).unwrap();
        prop_assert_eq!(got, &data[..]);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn concatenated_records_parse_back(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 0..20)) {
        let mut buf = Vec::new();
        for c in &chunks {
            codec::put_len_prefixed(&mut buf, c);
        }
        let mut rest: &[u8] = &buf;
        let mut out = Vec::new();
        while !rest.is_empty() {
            let (bytes, n) = codec::get_len_prefixed(rest).unwrap();
            out.push(bytes.to_vec());
            rest = &rest[n..];
        }
        prop_assert_eq!(out, chunks);
    }

    #[test]
    fn crc_differs_on_any_single_bitflip(data in proptest::collection::vec(any::<u8>(), 1..256),
                                         bit in any::<usize>()) {
        let base = codec::crc32c(&data);
        let mut flipped = data.clone();
        let idx = bit % (data.len() * 8);
        flipped[idx / 8] ^= 1 << (idx % 8);
        prop_assert_ne!(codec::crc32c(&flipped), base);
    }
}

// ---------- JSON ----------

fn arb_json(depth: u32) -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite, non-extreme doubles: the serializer maps non-finite to null.
        (-1.0e12f64..1.0e12).prop_map(Json::Num),
        any::<i32>().prop_map(|n| Json::Num(n as f64)),
        "[a-zA-Z0-9 _\\-\"\\\\/\n\t\u{e9}\u{1F600}]{0,24}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(depth, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..6)
                .prop_map(|pairs| Json::Obj(pairs.into_iter().collect())),
        ]
    })
}

proptest! {
    #[test]
    fn json_compact_roundtrips(v in arb_json(4)) {
        let text = v.to_compact();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(&back, &v, "text: {}", text);
    }

    #[test]
    fn json_pretty_roundtrips(v in arb_json(3)) {
        let text = v.to_pretty();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn json_serialization_is_deterministic(v in arb_json(3)) {
        prop_assert_eq!(v.to_compact(), v.to_compact());
    }

    #[test]
    fn json_parser_never_panics_on_garbage(text in "\\PC{0,64}") {
        let _ = Json::parse(&text);
    }

    #[test]
    fn json_parser_never_panics_on_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Json::parse_bytes(&bytes);
    }
}

// ---------- MBF binary codec ----------

proptest! {
    /// Any document the generator produces survives encode → decode
    /// exactly — including deep nesting up to the generator's recursion
    /// budget and unicode strings.
    #[test]
    fn mbf_roundtrips_documents_exactly(v in arb_json(6)) {
        let encoded = v.to_mbf().unwrap();
        prop_assert_eq!(Json::from_mbf(&encoded).unwrap(), v);
    }

    /// Cross-codec equivalence: decoding the MBF payload and parsing the
    /// canonical JSON text yield the same document, and `from_payload`
    /// picks the right decoder for both byte shapes unaided.
    #[test]
    fn mbf_and_json_text_decode_to_the_same_document(v in arb_json(4)) {
        let via_mbf = Json::from_payload(&v.to_mbf().unwrap()).unwrap();
        let via_text = Json::from_payload(v.to_compact().as_bytes()).unwrap();
        prop_assert_eq!(&via_mbf, &via_text);
        prop_assert_eq!(via_mbf, v);
    }

    /// Number policy: finite doubles round-trip to an equal value;
    /// NaN/±∞ encode as null — exactly the JSON text serializer's policy,
    /// so the two codecs never disagree about a document.
    #[test]
    fn mbf_number_policy_matches_json_text(n in any::<f64>()) {
        let back = Json::from_mbf(&Json::Num(n).to_mbf().unwrap()).unwrap();
        if n.is_finite() {
            prop_assert_eq!(back, Json::Num(n));
        } else {
            prop_assert_eq!(back, Json::Null);
        }
    }

    /// Every strict prefix of a valid payload is rejected — the decoder
    /// runs out of bytes or trips the trailing-consumption check. Never a
    /// panic, never a silently short document.
    #[test]
    fn mbf_truncation_is_an_error_never_a_panic(v in arb_json(3), cut in any::<u64>()) {
        let encoded = v.to_mbf().unwrap();
        let cut = (cut as usize) % encoded.len();
        prop_assert!(Json::from_mbf(&encoded[..cut]).is_err());
    }

    /// Corrupting one byte never panics the decoder; whatever it returns
    /// is reached cleanly. (A flip can be semantically invisible — e.g.
    /// inside a string — so "always an error" would be too strong.)
    #[test]
    fn mbf_corruption_never_panics(v in arb_json(3), at in any::<u64>(), flip in 1u8..=255) {
        let mut encoded = v.to_mbf().unwrap();
        let at = (at as usize) % encoded.len();
        encoded[at] ^= flip;
        let _ = Json::from_mbf(&encoded);
    }

    /// Random bytes behind a forged magic byte never panic the decoder
    /// and never allocate past the buffer's possible content.
    #[test]
    fn mbf_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Json::from_mbf(&bytes);
        let mut forged = vec![0xB1u8];
        forged.extend_from_slice(&bytes);
        let _ = Json::from_mbf(&forged);
    }

    /// Encoding is deterministic: the byte payload is a pure function of
    /// the document (the store dedups and the wire batches on this).
    #[test]
    fn mbf_encoding_is_deterministic(v in arb_json(4)) {
        prop_assert_eq!(v.to_mbf().unwrap(), v.to_mbf().unwrap());
    }
}

// ---------- events & slates ----------

/// One step of a slate mutation sequence, applied through the resident
/// API on one slate and through the seed-style byte path on the other.
#[derive(Clone, Debug)]
enum SlateOp {
    /// `obj_mut_or` + `set` — the migrated-app hot path.
    ObjSet(String, i64),
    /// Nested mutation through `get_mut` (http_counters-style).
    ObjSetNested(String, String, i64),
    /// Wholesale JSON replacement.
    SetJson(Json),
    /// Raw byte replacement (Figure 4's `replaceSlate`).
    Replace(Vec<u8>),
    /// Decimal-counter increment (retailer-style slates).
    Incr(u64),
    /// TTL expiry / deletion.
    Clear,
    /// A read-only residency conversion (HTTP read through the cache).
    EnsureJson,
}

fn arb_slate_op() -> impl Strategy<Value = SlateOp> {
    prop_oneof![
        ("[a-c]", -1000i64..1000).prop_map(|(k, v)| SlateOp::ObjSet(k, v)),
        ("[a-c]", "[x-z]", -1000i64..1000).prop_map(|(k, j, v)| SlateOp::ObjSetNested(k, j, v)),
        arb_json(2).prop_map(SlateOp::SetJson),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(SlateOp::Replace),
        (1u64..100).prop_map(SlateOp::Incr),
        Just(SlateOp::Clear),
        Just(SlateOp::EnsureJson),
    ]
}

fn obj_default() -> Json {
    Json::obj([("seed", Json::num(0))])
}

fn mutate_doc(doc: &mut Json, op: &SlateOp) {
    match op {
        SlateOp::ObjSet(k, v) => doc.set(k.clone(), Json::num(*v as f64)),
        SlateOp::ObjSetNested(k, j, v) => {
            if doc.get(k).and_then(Json::as_obj).is_none() {
                doc.set(k.clone(), Json::obj::<String>([]));
            }
            doc.get_mut(k).expect("just ensured").set(j.clone(), Json::num(*v as f64));
        }
        _ => unreachable!("only object ops mutate documents"),
    }
}

/// The new hot path: resident document, mutated in place, serialized only
/// when `bytes()` is observed.
fn apply_resident(slate: &mut Slate, op: &SlateOp) {
    match op {
        SlateOp::ObjSet(..) | SlateOp::ObjSetNested(..) => {
            mutate_doc(slate.obj_mut_or(obj_default), op)
        }
        SlateOp::SetJson(v) => slate.set_json(v.clone()),
        SlateOp::Replace(bytes) => slate.replace(bytes.clone()),
        SlateOp::Incr(n) => {
            slate.incr_counter(*n);
        }
        SlateOp::Clear => slate.clear(),
        SlateOp::EnsureJson => {
            let _ = slate.ensure_json();
        }
    }
}

/// The seed path: every mutation crosses the byte boundary — parse the
/// payload, rebuild, serialize back.
fn apply_plain(slate: &mut Slate, op: &SlateOp) {
    match op {
        SlateOp::ObjSet(..) | SlateOp::ObjSetNested(..) => {
            let mut doc = match slate.as_json() {
                Some(v @ Json::Obj(_)) => v,
                _ => obj_default(),
            };
            mutate_doc(&mut doc, op);
            slate.replace(doc.to_compact().into_bytes());
        }
        SlateOp::SetJson(v) => slate.replace(v.to_compact().into_bytes()),
        SlateOp::Replace(bytes) => slate.replace(bytes.clone()),
        SlateOp::Incr(n) => {
            slate.incr_counter(*n);
        }
        SlateOp::Clear => slate.clear(),
        SlateOp::EnsureJson => {} // a read; no byte-path analogue needed
    }
}

proptest! {
    #[test]
    fn event_order_is_total_and_consistent(
        ts1 in 0u64..1000, seq1 in 0u64..1000,
        ts2 in 0u64..1000, seq2 in 0u64..1000,
    ) {
        let mut a = Event::new("S", ts1, Key::from("k"), "");
        a.seq = seq1;
        let mut b = Event::new("S", ts2, Key::from("k"), "");
        b.seq = seq2;
        let cmp = a.order().cmp(&b.order());
        prop_assert_eq!(b.order().cmp(&a.order()), cmp.reverse());
        if ts1 < ts2 {
            prop_assert_eq!(cmp, std::cmp::Ordering::Less, "ts dominates");
        }
    }

    #[test]
    fn slate_counter_accumulates(increments in proptest::collection::vec(1u64..100, 0..50)) {
        let mut s = Slate::empty();
        let mut expect = 0u64;
        for inc in &increments {
            expect += inc;
            prop_assert_eq!(s.incr_counter(*inc), expect);
        }
        prop_assert_eq!(s.counter(), expect);
        prop_assert_eq!(s.version(), increments.len() as u64);
    }

    // ---------- resident-JSON slate ≡ plain-bytes slate ----------
    //
    // The hot-path tentpole: a slate holding a resident parsed document
    // must be observationally byte-identical to one that crosses the byte
    // boundary on every mutation (the seed path) — store flushes, HTTP
    // reads, wire transfers all read `bytes()`/`to_shared()`, so any
    // divergence here forks persisted state.

    #[test]
    fn resident_slate_equals_bytes_slate_under_mutations(
        ops in proptest::collection::vec(arb_slate_op(), 0..40),
    ) {
        let mut resident = Slate::empty();
        let mut plain = Slate::empty();
        for op in &ops {
            apply_resident(&mut resident, op);
            apply_plain(&mut plain, op);
            // Every step is a potential flush/HTTP-read boundary.
            prop_assert_eq!(resident.bytes(), plain.bytes(), "op: {:?}", op);
            prop_assert_eq!(resident.is_empty(), plain.is_empty());
            prop_assert_eq!(resident.len(), plain.len());
            prop_assert_eq!(resident.to_shared().as_ref(), plain.to_shared().as_ref());
            prop_assert_eq!(resident.as_json(), plain.as_json());
        }
    }

    #[test]
    fn resident_conversion_never_changes_flushed_bytes(v in arb_json(3)) {
        // Reading a slate into residency (ensure_json) is not a mutation:
        // the bytes it flushes afterwards are exactly the bytes it held.
        let payload = v.to_compact().into_bytes();
        let mut s = Slate::from_bytes(payload.clone());
        let _ = s.ensure_json();
        prop_assert_eq!(s.bytes(), payload.as_slice());
        prop_assert_eq!(s.version(), 0);
    }

    #[test]
    fn key_route_hash_is_stable_and_operator_sensitive(key in "[a-z0-9]{1,16}") {
        let k = Key::from(key.as_str());
        prop_assert_eq!(k.route_hash("U1"), k.route_hash("U1"));
        prop_assert_ne!(k.route_hash("U1"), k.route_hash("U2"));
    }
}

// ---------- reference executor determinism ----------

fn count_workflow() -> Workflow {
    let mut b = Workflow::builder("prop-count");
    b.external_stream("S1");
    b.mapper_publishing("M1", &["S1"], &["S2"]);
    b.updater("U1", &["S2"]);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary key/timestamp sequences, the reference executor's
    /// per-key counts equal a straightforward HashMap count, and repeated
    /// runs are identical (determinism).
    #[test]
    fn reference_counts_match_model(
        events in proptest::collection::vec(("[a-e]", 0u64..50), 1..200)
    ) {
        let run = |events: &[(String, u64)]| {
            let wf = count_workflow();
            let mut exec = ReferenceExecutor::new(&wf);
            exec.register_mapper(FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
                ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
            }));
            exec.register_updater(FnUpdater::new(
                "U1",
                |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
                    slate.incr_counter(1);
                },
            ));
            for (key, ts) in events {
                exec.push_external("S1", Event::new("S1", *ts, Key::from(key.as_str()), ""));
            }
            exec.run_to_completion().unwrap();
            exec.slates_of("U1")
                .into_iter()
                .map(|(k, s)| (k.as_str().unwrap().to_string(), s.counter()))
                .collect::<Vec<_>>()
        };
        let got = run(&events);
        let again = run(&events);
        prop_assert_eq!(&got, &again, "two runs must be identical");

        let mut model: std::collections::BTreeMap<String, u64> = Default::default();
        for (key, _) in &events {
            *model.entry(key.clone()).or_default() += 1;
        }
        let model: Vec<(String, u64)> = model.into_iter().collect();
        prop_assert_eq!(got, model);
    }
}
