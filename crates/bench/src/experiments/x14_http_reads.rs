//! X14 — §4.4: reading slates over HTTP while the application runs.
//!
//! "The fetch retrieves the slate from Muppet's slate cache ... rather
//! than from the durable key-value store to ensure an up-to-date reply."
//! Concurrent HTTP readers fetch live counters during a streaming run; we
//! measure read latency and freshness (HTTP value vs. the store's stale
//! copy under a lazy flush policy).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use muppet_apps::retailer::{self};
use muppet_runtime::cache::FlushPolicy;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind};
use muppet_runtime::http::{http_get, percent_encode, HttpSlateServer};
use muppet_runtime::metrics::Histogram;
use muppet_slatestore::cluster::{StoreCluster, StoreConfig};
use muppet_slatestore::types::CellKey;
use muppet_slatestore::util::TempDir;
use muppet_workloads::checkins::CheckinGenerator;

use crate::harness::{retailer_ops, retailer_workflow};
use crate::table::{us, Table};
use crate::Scale;

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner("X14", "live slate reads over HTTP", "§4.4 (reading slates)");
    let n = scale.events(30_000);

    let dir = TempDir::new("x14").unwrap();
    let store = Arc::new(
        StoreCluster::open(
            dir.path(),
            StoreConfig { nodes: 1, replication: 1, ..Default::default() },
        )
        .unwrap(),
    );
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 2,
        workers_per_machine: 2,
        // Slow flusher: the store lags the cache, so freshness is visible.
        flush: FlushPolicy::IntervalMs(5_000),
        queue_capacity: 1 << 16,
        ..EngineConfig::default()
    };
    let engine = Arc::new(
        Engine::start(retailer_workflow(), retailer_ops(), cfg, Some(Arc::clone(&store))).unwrap(),
    );
    let server = HttpSlateServer::serve(Arc::clone(&engine) as _).unwrap();

    // Concurrent readers polling the hot retailer during the stream.
    let stop = Arc::new(AtomicBool::new(false));
    let latencies = Arc::new(Histogram::new());
    let url =
        format!("{}/slate/{}/{}", server.base_url(), retailer::COUNTER, percent_encode(b"Walmart"));
    let mut readers = Vec::new();
    for _ in 0..3 {
        let stop = Arc::clone(&stop);
        let latencies = Arc::clone(&latencies);
        let url = url.clone();
        readers.push(std::thread::spawn(move || {
            let mut fetches = 0u64;
            while !stop.load(Ordering::Acquire) {
                let t0 = Instant::now();
                let _ = http_get(&url);
                latencies.record(t0.elapsed().as_micros() as u64);
                fetches += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            fetches
        }));
    }

    let mut gen = CheckinGenerator::new(3, 2_000, 5_000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, n);
    let truth = CheckinGenerator::expected_retailer_counts(&events);
    for ev in events {
        engine.submit(ev).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(120)));

    // Freshness probe before any flush catches up.
    let (code, live_body) = http_get(&url).unwrap();
    assert_eq!(code, 200);
    let live: u64 = String::from_utf8(live_body).unwrap().parse().unwrap();
    let store_copy = store
        .get(&CellKey::new("Walmart", retailer::COUNTER), engine.now_us())
        .ok()
        .flatten()
        .and_then(|b| String::from_utf8(b.to_vec()).ok())
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);

    stop.store(true, Ordering::Release);
    let total_fetches: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    let l = latencies.summary();
    drop(server);
    let engine = Arc::into_inner(engine).expect("server released engine");
    engine.shutdown();

    let mut table = Table::new(["metric", "value"]);
    table.row(["concurrent HTTP fetches during run".to_string(), total_fetches.to_string()]);
    table.row([
        "fetch latency p50 / p99".to_string(),
        format!("{} / {}", us(l.p50_us), us(l.p99_us)),
    ]);
    table.row(["live (cache) Walmart count".to_string(), live.to_string()]);
    table.row([
        "ground-truth Walmart count".to_string(),
        truth.get("Walmart").copied().unwrap_or(0).to_string(),
    ]);
    table.row(["stale store copy at same instant".to_string(), store_copy.to_string()]);
    table.print();
    println!(
        "\nshape check: HTTP reads serve the cache (live == ground truth after drain)\n\
         while the store's copy lags under the 5s flush interval (store ≤ live) — the\n\
         §4.4 rationale for reading the cache, not the store."
    );
    assert_eq!(live, truth.get("Walmart").copied().unwrap_or(0));
    assert!(store_copy <= live);
}
